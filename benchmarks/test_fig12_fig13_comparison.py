"""Experiment E2 — Figures 12 and 13: comparison with the CR algorithm.

Three threads enter a CA action and raise three different exceptions nearly
at the same time, so exception resolution is required.  The same application
and the same resolution graph run under the paper's algorithm and under the
Campbell–Randell algorithm, for the Figure 12 parameter grids.

Expected shape (asserted):

* both algorithms are (approximately) linear in ``Tmmax`` and in ``Tres``;
* the CR algorithm is slower everywhere, its ``Tres`` slope is markedly
  larger (its resolution procedure runs many times instead of once) and its
  ``Tmmax`` slope is at least as large (more message rounds);
* the CR algorithm sends more protocol messages and performs more resolution
  calls (Section 5.3: N(N−1)(N−2) vs one).
"""

import pytest

from repro.bench import (
    run_experiment2,
    sweep_figure12_tmmax,
    sweep_figure12_tres,
)
from repro.bench.reporting import (
    format_table,
    linear_fit,
    paper_reference_figure12,
    series,
)


@pytest.mark.benchmark(group="figure12")
def test_figure12_varying_tmmax(benchmark, report):
    rows = sweep_figure12_tmmax()
    reference = paper_reference_figure12()["varying_tmmax"]

    for row in rows:
        assert row["time_cr"] > row["time_ours"], \
            "the CR algorithm must be slower for every Tmmax"

    fit_ours = linear_fit(*series(rows, "t_msg", "time_ours"))
    fit_cr = linear_fit(*series(rows, "t_msg", "time_cr"))
    assert fit_ours["r_squared"] > 0.98 and fit_cr["r_squared"] > 0.98
    assert fit_cr["slope"] >= fit_ours["slope"], \
        "CR must depend at least as steeply on the message-passing time"

    body = format_table(
        [dict(row, paper_ours=ref["paper_time_ours"],
              paper_cr=ref["paper_time_cr"])
         for row, ref in zip(rows, reference)],
        columns=["t_msg", "time_ours", "time_cr", "paper_ours", "paper_cr"])
    report("Figure 12 / 13(a) — varying Tmmax at Tres = 0.3",
           body + f"\nslopes: ours {fit_ours['slope']:.2f}, "
                  f"CR {fit_cr['slope']:.2f}")

    benchmark.pedantic(run_experiment2, args=(1.0, 0.3),
                       kwargs={"algorithm": "ours"}, rounds=3, iterations=1)


@pytest.mark.benchmark(group="figure12")
def test_figure12_varying_tres(benchmark, report):
    rows = sweep_figure12_tres()
    reference = paper_reference_figure12()["varying_tres"]

    for row in rows:
        assert row["time_cr"] > row["time_ours"], \
            "the CR algorithm must be slower for every Tres"

    fit_ours = linear_fit(*series(rows, "t_res", "time_ours"))
    fit_cr = linear_fit(*series(rows, "t_res", "time_cr"))
    assert fit_ours["r_squared"] > 0.98 and fit_cr["r_squared"] > 0.98
    assert fit_cr["slope"] > 1.5 * fit_ours["slope"], \
        ("CR calls the resolution procedure many times, so its dependence on "
         "Tres must be markedly steeper than ours")

    body = format_table(
        [dict(row, paper_ours=ref["paper_time_ours"],
              paper_cr=ref["paper_time_cr"])
         for row, ref in zip(rows, reference)],
        columns=["t_res", "time_ours", "time_cr", "paper_ours", "paper_cr"])
    report("Figure 12 / 13(b) — varying Tres at Tmmax = 1.0",
           body + f"\nslopes: ours {fit_ours['slope']:.2f}, "
                  f"CR {fit_cr['slope']:.2f}")

    benchmark.pedantic(run_experiment2, args=(1.0, 0.3),
                       kwargs={"algorithm": "campbell-randell"},
                       rounds=3, iterations=1)


@pytest.mark.benchmark(group="figure13")
def test_figure13_message_and_resolution_counts(benchmark, report):
    """The structural reasons behind Figure 13: messages and resolution calls."""
    ours = run_experiment2(1.0, 0.3, algorithm="ours")
    cr = run_experiment2(1.0, 0.3, algorithm="campbell-randell")

    assert ours.resolution_calls == 1, \
        "the new algorithm resolves exactly once (one resolver)"
    assert cr.resolution_calls > ours.resolution_calls, \
        "CR resolves repeatedly on every thread"
    assert cr.protocol_messages > ours.protocol_messages, \
        "CR needs strictly more protocol messages"

    report("Figure 13 — why the curves differ (N = 3)",
           f"resolution calls : ours {ours.resolution_calls}, "
           f"CR {cr.resolution_calls} (paper: 1 vs N(N-1)(N-2) = 6)\n"
           f"protocol messages: ours {ours.protocol_messages}, "
           f"CR {cr.protocol_messages}")

    benchmark.pedantic(run_experiment2, args=(1.4, 0.3),
                       kwargs={"algorithm": "ours"}, rounds=3, iterations=1)
