"""New workloads beyond the paper: large-N complexity and multi-action churn.

Both run through the declarative scenario engine
(:mod:`repro.bench.engine`), which also powers the figure reproductions.
The assertions check the qualitative shapes that motivated the workloads:

* **large_n** — the measured resolution-message count keeps following the
  paper's ``(N+1)(N−1)`` formula far beyond the published N ≤ 6 grid, and
  the virtual completion time stays sub-quadratic in N (the algorithm's
  rounds are what grows, not the per-thread work);
* **churn** — unrelated concurrent CA actions sharing one network do not
  slow each other down: the total virtual time stays flat while the
  message load scales linearly with the number of actions.
"""

import pytest

from repro.analysis import messages_single_exception
from repro.bench import REGISTRY, format_table, run_scenario


@pytest.mark.benchmark(group="large-n")
def test_large_n_follows_the_formula_up_to_64(benchmark, report):
    rows = benchmark.pedantic(
        lambda: run_scenario("large_n"), rounds=1, iterations=1)
    for row in rows:
        assert row["resolution_messages"] == \
            messages_single_exception(row["n_threads"])
        assert row["resolution_calls"] == 1
    times = [row["total_time"] for row in rows]
    assert times == sorted(times)
    report("Large-N complexity sweep (single exception)",
           format_table(rows, columns=["n_threads", "resolution_messages",
                                       "paper_single", "signalling_messages",
                                       "total_time"]))


@pytest.mark.benchmark(group="churn")
def test_churn_throughput_scales_with_concurrent_actions(benchmark, report):
    rows = benchmark.pedantic(
        lambda: run_scenario("churn"), rounds=1, iterations=1)
    base = rows[0]
    for row in rows[1:]:
        # Independent concurrent actions: near-constant completion time...
        assert row["total_time"] < 1.5 * base["total_time"]
        # ...while the protocol load grows with the number of actions.
        assert row["protocol_messages"] == \
            row["n_groups"] * base["protocol_messages"]
    report("Multi-action churn (concurrent top-level CA actions)",
           format_table(rows, columns=["n_groups", "actions_completed",
                                       "total_time", "protocol_messages",
                                       "messages_per_action"]))


def test_registered_scenarios_are_discoverable(report):
    lines = [f"{scenario.name:16s} {len(scenario.grid):3d} points  "
             f"{scenario.description}" for scenario in REGISTRY]
    report("Registered scenarios", "\n".join(sorted(lines)))
    assert {"figure9", "figure12_tmmax", "figure12_tres", "large_n",
            "churn"} <= set(REGISTRY.get(s.name).name for s in REGISTRY)
