"""Experiment E6 — the production-cell case study under injected faults.

Section 4 of the paper is qualitative (it demonstrates that the model and
algorithms fit a realistic safety-related control program); these benches
turn that demonstration into measurable checks:

* a fault-free campaign forges every blank without raising any exception;
* campaigns with recoverable faults keep forging blanks, with every injected
  fault accounted for by a resolution and a handler run;
* interface exceptions propagate across the nesting levels exactly along the
  paths named in the paper (``NCS_FAIL`` → ``T_SENSOR``);
* the throughput degradation under faults stays bounded (the cell keeps
  producing).
"""

import pytest

from repro.bench.reporting import format_table
from repro.productioncell import FailureInjector, ProductionCell


def _run(injector, cycles, algorithm="ours"):
    cell = ProductionCell(injector=injector, algorithm=algorithm)
    return cell.run(cycles=cycles)


@pytest.mark.benchmark(group="production-cell")
def test_fault_free_campaign(benchmark, report):
    stats = _run(FailureInjector(), cycles=5)
    assert stats.cycles_succeeded == 5
    assert stats.blanks_forged == 5
    assert stats.exceptions_raised == 0
    assert stats.resolutions == 0

    report("Production cell — fault-free campaign (5 cycles)",
           f"forged {stats.blanks_forged}/5 blanks in "
           f"{stats.total_time:.2f}s of virtual time, "
           f"no exceptions raised")
    benchmark.pedantic(_run, args=(FailureInjector(), 2), rounds=3,
                       iterations=1)


@pytest.mark.benchmark(group="production-cell")
def test_recoverable_faults_keep_producing(benchmark, report):
    injector = FailureInjector()
    injector.schedule(2, "vm_stop")
    injector.schedule(3, "s_stuck")
    injector.schedule(5, "vm_stop")
    stats = _run(injector, cycles=6)

    assert stats.exceptions_raised >= 3, "every injected fault must surface"
    assert stats.resolutions >= 3, "every fault must be resolved"
    assert stats.cycles_failed == 0, "recoverable faults must not fail cycles"
    assert stats.blanks_forged >= 5, \
        "recovered cycles should still forge their blanks"

    report("Production cell — recoverable faults (6 cycles, 3 faults)",
           format_table([{
               "forged": stats.blanks_forged,
               "succeeded": stats.cycles_succeeded,
               "recovered": stats.cycles_recovered,
               "raised": stats.exceptions_raised,
               "resolved": stats.resolutions,
           }]) + f"\nhandler trace: {stats.handled_log}")
    benchmark.pedantic(_run, args=(FailureInjector().schedule(1, "vm_stop"), 2),
                       rounds=3, iterations=1)


@pytest.mark.benchmark(group="production-cell")
def test_interface_exceptions_cross_nesting_levels(benchmark, report):
    """A motor fault whose retry fails escalates NCS_FAIL → T_SENSOR upward."""
    injector = FailureInjector()
    injector.schedule(1, "vm_stop")
    injector.schedule(1, "vm_nmove", persistent=True)
    stats = _run(injector, cycles=2)

    assert stats.signalled.get("NCS_FAIL", 0) >= 1, \
        "Move_Loaded_Table must signal NCS_FAIL when the motor retry fails"
    assert stats.signalled.get("T_SENSOR", 0) >= 1, \
        "Unload_Table must escalate the failure as T_SENSOR"
    assert "cycle-degraded" in stats.handled_log, \
        "Table_Press_Robot must handle the escalated exception"
    assert stats.cycles_failed == 0

    report("Production cell — escalation across nesting levels",
           f"signalled: {stats.signalled}\n"
           f"handler trace: {stats.handled_log[:10]}")
    benchmark.pedantic(_run, args=(FailureInjector().schedule(1, "s_stuck"), 1),
                       rounds=3, iterations=1)


@pytest.mark.benchmark(group="production-cell")
def test_throughput_degradation_is_bounded(benchmark, report):
    """Cycle time under faults stays within a small factor of fault-free."""
    clean = _run(FailureInjector(), cycles=4)
    injector = FailureInjector()
    for cycle in (1, 2, 3, 4):
        injector.schedule(cycle, "s_stuck")
    faulty = _run(injector, cycles=4)

    clean_cycle_time = clean.total_time / 4
    faulty_cycle_time = faulty.total_time / 4
    assert faulty.blanks_forged >= 3
    assert faulty_cycle_time <= 3 * clean_cycle_time, (
        "coordinated exception handling should not blow up the cycle time "
        f"(clean {clean_cycle_time:.3f}s vs faulty {faulty_cycle_time:.3f}s)")

    rows = [
        {"campaign": "fault-free", "cycle_time": round(clean_cycle_time, 3),
         "forged": clean.blanks_forged, "resolutions": clean.resolutions},
        {"campaign": "sensor fault every cycle",
         "cycle_time": round(faulty_cycle_time, 3),
         "forged": faulty.blanks_forged, "resolutions": faulty.resolutions},
    ]
    report("Production cell — throughput under faults", format_table(rows))
    benchmark.pedantic(_run, args=(FailureInjector(), 2), rounds=3,
                       iterations=1)


@pytest.mark.benchmark(group="production-cell")
def test_case_study_runs_under_baseline_algorithms(benchmark, report):
    """The control program is algorithm-agnostic (same support, swapped resolver)."""
    injector_template = [(2, "vm_stop"), (3, "s_stuck")]
    results = {}
    for algorithm in ("ours", "campbell-randell", "romanovsky96"):
        injector = FailureInjector()
        injector.schedule_many(injector_template)
        stats = _run(injector, cycles=3, algorithm=algorithm)
        results[algorithm] = stats
        assert stats.cycles_failed == 0
        assert stats.blanks_forged >= 2

    rows = [{"algorithm": name, "forged": stats.blanks_forged,
             "resolutions": stats.resolutions,
             "virtual_time": round(stats.total_time, 3)}
            for name, stats in results.items()]
    report("Production cell — same campaign under the three algorithms",
           format_table(rows))
    benchmark.pedantic(_run, args=(FailureInjector(), 1),
                       kwargs={"algorithm": "romanovsky96"}, rounds=3,
                       iterations=1)
