"""Shared fixtures for the benchmark suite.

The benchmarks run entirely in virtual time, so wall-clock figures reported
by pytest-benchmark measure the *simulator's* cost, while the printed tables
report the *virtual* execution times that correspond to the paper's
measurements.  Each benchmark also asserts the qualitative shape of the
paper's result (who wins, monotonicity, rough factors), so a plain
``pytest benchmarks/ --benchmark-only`` run doubles as a reproduction check.
"""

import sys

import pytest


@pytest.fixture(scope="session")
def report():
    """Print a block of text so it is visible with ``-s`` and in CI logs."""
    def _report(title: str, body: str) -> None:
        sys.stdout.write(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n")
    return _report
