"""Experiment E1 — Figures 9 and 10: sensitivity of the total execution time.

Reproduces the paper's first experiment: three threads in a CA action, two
of them in a nested action, executed in a loop of 20 iterations; in every
iteration an exception in the containing action aborts the nested action,
the abortion handler raises a second exception and the resolving exception
is handled by all threads.  The three parameters ``Tmmax``, ``Tabo`` and
``Treso`` are swept over the same grids as Figure 9.

Expected shape (asserted below):

* the total execution time grows monotonically and roughly linearly in each
  parameter;
* the message-passing parameter has the steepest influence (the paper's
  conclusion that "the cost of message exchanges is still of the major
  concern, while concurrent exception handling does not introduce a high
  run-time overhead").
"""

import pytest

from repro.bench import (
    FIGURE9_TABO_VALUES,
    FIGURE9_TMMAX_VALUES,
    FIGURE9_TRESO_VALUES,
    run_experiment1,
    sweep_figure9,
)
from repro.bench.reporting import (
    format_table,
    linear_fit,
    paper_reference_figure9,
    series,
)


def _assert_monotone(values):
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:])), \
        f"series is not monotonically non-decreasing: {values}"


@pytest.mark.benchmark(group="figure9")
def test_figure9_varying_tmmax(benchmark, report):
    rows = sweep_figure9("t_msg")
    xs, ys = series(rows, "t_msg", "total_time")
    _assert_monotone(ys)
    fit = linear_fit(xs, ys)
    assert fit["slope"] > 0
    assert fit["r_squared"] > 0.98, "expected an (approximately) linear trend"

    reference = paper_reference_figure9()["varying_tmmax"]
    body = format_table(
        [dict(row, paper_total_time=ref["paper_total_time"])
         for row, ref in zip(rows, reference)],
        columns=["t_msg", "total_time", "paper_total_time"],
    )
    report("Figure 9 / 10 — varying Tmmax (Tabo=0.1, Treso=0.3, 20 iterations)",
           body + f"\nmeasured slope: {fit['slope']:.2f} s per second of Tmmax")

    benchmark.pedantic(run_experiment1, args=(0.2, 0.1, 0.3),
                       kwargs={"iterations": 1}, rounds=3, iterations=1)


@pytest.mark.benchmark(group="figure9")
def test_figure9_varying_tabo(benchmark, report):
    rows = sweep_figure9("t_abort")
    xs, ys = series(rows, "t_abort", "total_time")
    _assert_monotone(ys)
    fit = linear_fit(xs, ys)
    assert fit["slope"] > 0
    assert fit["r_squared"] > 0.98

    reference = paper_reference_figure9()["varying_tabo"]
    body = format_table(
        [dict(row, paper_total_time=ref["paper_total_time"])
         for row, ref in zip(rows, reference)],
        columns=["t_abort", "total_time", "paper_total_time"],
    )
    report("Figure 9 / 10 — varying Tabo (Tmmax=0.2, Treso=0.3, 20 iterations)",
           body + f"\nmeasured slope: {fit['slope']:.2f} s per second of Tabo")

    benchmark.pedantic(run_experiment1, args=(0.2, 1.1, 0.3),
                       kwargs={"iterations": 1}, rounds=3, iterations=1)


@pytest.mark.benchmark(group="figure9")
def test_figure9_varying_treso(benchmark, report):
    rows = sweep_figure9("t_resolution")
    xs, ys = series(rows, "t_resolution", "total_time")
    _assert_monotone(ys)
    fit = linear_fit(xs, ys)
    assert fit["slope"] > 0
    assert fit["r_squared"] > 0.98

    reference = paper_reference_figure9()["varying_treso"]
    body = format_table(
        [dict(row, paper_total_time=ref["paper_total_time"])
         for row, ref in zip(rows, reference)],
        columns=["t_resolution", "total_time", "paper_total_time"],
    )
    report("Figure 9 / 10 — varying Treso (Tmmax=0.2, Tabo=0.1, 20 iterations)",
           body + f"\nmeasured slope: {fit['slope']:.2f} s per second of Treso")

    benchmark.pedantic(run_experiment1, args=(0.2, 0.1, 1.1),
                       kwargs={"iterations": 1}, rounds=3, iterations=1)


@pytest.mark.benchmark(group="figure10")
def test_figure10_message_cost_dominates(benchmark, report):
    """The Figure 10 conclusion: Tmmax has the steepest slope of the three."""
    tmmax_rows = sweep_figure9("t_msg", values=FIGURE9_TMMAX_VALUES[:8])
    tabo_rows = sweep_figure9("t_abort", values=FIGURE9_TABO_VALUES[:8])
    treso_rows = sweep_figure9("t_resolution", values=FIGURE9_TRESO_VALUES[:8])

    slope_tmmax = linear_fit(*series(tmmax_rows, "t_msg", "total_time"))["slope"]
    slope_tabo = linear_fit(*series(tabo_rows, "t_abort", "total_time"))["slope"]
    slope_treso = linear_fit(*series(treso_rows, "t_resolution",
                                     "total_time"))["slope"]

    assert slope_tmmax > slope_tabo, \
        "message passing must dominate the abortion cost"
    assert slope_tmmax > slope_treso, \
        "message passing must dominate the resolution cost"

    report("Figure 10 — sensitivity (slopes of total time, s per s of parameter)",
           f"varying Tmmax : {slope_tmmax:8.2f}\n"
           f"varying Tabo  : {slope_tabo:8.2f}\n"
           f"varying Treso : {slope_treso:8.2f}")

    benchmark.pedantic(run_experiment1, args=(1.0, 0.1, 0.3),
                       kwargs={"iterations": 1}, rounds=3, iterations=1)
