"""Opt-in checks of the kernel microbenchmark suite (``--suite kernel``).

Runs tiny configurations so the assertions are about structure and sanity,
not speed; the real numbers land in the committed ``BENCH_kernel.json``.
"""

from __future__ import annotations

from repro.bench.kernelbench import (
    CAPACITY_CONFIGS,
    bench_capacity,
    bench_event_throughput,
    bench_message_delivery,
    collect_kernel_baseline,
)


class TestKernelBenchmarks:
    def test_event_throughput_shape(self):
        row = bench_event_throughput(n_events=2_000, repeats=1)
        assert row["events"] == 2_000
        assert row["wall_seconds"] > 0
        assert row["events_per_second"] > 0

    def test_message_delivery_shape(self):
        row = bench_message_delivery(n_messages=500, repeats=1)
        assert row["messages"] == 500
        assert row["messages_per_second"] > 0

    def test_capacity_rows(self):
        rows = bench_capacity(
            {"tiny": {"offered_load": 2.0, "n_instances": 20}}, repeats=1)
        (row,) = rows
        assert row["config"] == "tiny"
        assert row["jobs"] == 20
        assert 0 < row["completed"] <= 20
        assert row["instances_per_second"] > 0

    def test_default_configs_cover_three_scales(self):
        pools = {CAPACITY_CONFIGS[name].get("pool_size", 8)
                 for name in CAPACITY_CONFIGS}
        assert pools == {8, 32, 64}

    def test_collect_kernel_baseline_document(self):
        document = collect_kernel_baseline(
            n_events=2_000, n_messages=500,
            capacity_configs={"tiny": {"offered_load": 2.0,
                                       "n_instances": 20}},
            repeats=1)
        assert set(document) >= {"python", "repeats", "event_throughput",
                                 "message_delivery", "capacity"}
        assert len(document["capacity"]) == 1

    def test_capacity_bench_is_deterministic_in_virtual_time(self):
        """The measured workload itself must stay byte-identical per run."""
        one = bench_capacity(
            {"tiny": {"offered_load": 2.0, "n_instances": 20}}, repeats=1)
        two = bench_capacity(
            {"tiny": {"offered_load": 2.0, "n_instances": 20}}, repeats=1)
        for row_one, row_two in zip(one, two):
            assert row_one["completed"] == row_two["completed"]
            assert row_one["throughput_virtual"] == \
                row_two["throughput_virtual"]
