"""Experiment E5 — the Lemma 1 completion-time bound.

Lemma 1 bounds the time any thread needs to complete exception handling:

    T ≤ (2·n_max + 3)·Tmmax + n_max·Tabort + (n_max + 1)(Treso + Δmax)

The experiment-1 scenario (one nesting level, an abort, two exceptions and a
joint resolution) is run for one iteration across a grid of parameters; the
measured completion time — total virtual time minus the normal-computation
prefix — must stay below the bound in every configuration.
"""

import pytest

from repro.analysis import TimingParameters, lemma1_completion_bound
from repro.bench import run_experiment1
from repro.bench.reporting import format_table
from repro.bench.scenarios import HANDLER_TIME, NORMAL_COMPUTATION_TIME

#: Extra slack for the parts of the run the bound does not model: the entry
#: barrier of the outermost action and the signalling phase after handling.
_SETUP_AND_SIGNALLING_MARGIN = 3  # message rounds


def _grid():
    for t_msg in (0.1, 0.5, 1.0, 2.0):
        for t_abort in (0.1, 0.5, 1.5):
            for t_reso in (0.1, 0.5, 1.5):
                yield t_msg, t_abort, t_reso


@pytest.mark.benchmark(group="lemma1")
def test_lemma1_bound_holds(benchmark, report):
    rows = []
    for t_msg, t_abort, t_reso in _grid():
        result = run_experiment1(t_msg, t_abort, t_reso, iterations=1)
        params = TimingParameters(t_msg_max=t_msg, t_resolution=t_reso,
                                  t_abort=t_abort,
                                  t_handler_max=HANDLER_TIME,
                                  max_nesting=1)
        bound = lemma1_completion_bound(params)
        # Remove the parts Lemma 1 does not model: the normal computation
        # before the exception and the entry/signalling rounds.
        measured = (result.total_time - NORMAL_COMPUTATION_TIME
                    - _SETUP_AND_SIGNALLING_MARGIN * t_msg)
        rows.append({"t_msg": t_msg, "t_abort": t_abort, "t_reso": t_reso,
                     "exception_handling_time": round(measured, 3),
                     "lemma1_bound": round(bound, 3),
                     "within_bound": measured <= bound + 1e-9})
        assert measured <= bound + 1e-9, (
            f"Lemma 1 violated for Tmmax={t_msg}, Tabort={t_abort}, "
            f"Treso={t_reso}: measured {measured:.3f} > bound {bound:.3f}")

    report("Lemma 1 — measured exception-handling time vs analytic bound "
           "(n_max = 1)", format_table(rows))

    benchmark.pedantic(run_experiment1, args=(0.5, 0.5, 0.5),
                       kwargs={"iterations": 1}, rounds=3, iterations=1)


@pytest.mark.benchmark(group="lemma1")
def test_bound_is_not_vacuous(benchmark, report):
    """The bound should be of the same order as the measurement, not 100×."""
    t_msg, t_abort, t_reso = 1.0, 1.0, 1.0
    result = run_experiment1(t_msg, t_abort, t_reso, iterations=1)
    params = TimingParameters(t_msg_max=t_msg, t_resolution=t_reso,
                              t_abort=t_abort, t_handler_max=HANDLER_TIME,
                              max_nesting=1)
    bound = lemma1_completion_bound(params)
    measured = result.total_time - NORMAL_COMPUTATION_TIME
    ratio = bound / measured
    assert 0.3 <= ratio <= 10, \
        f"bound/measured ratio {ratio:.2f} suggests a mis-modelled scenario"

    report("Lemma 1 — tightness check (Tmmax = Tabort = Treso = 1.0)",
           f"measured: {measured:.3f} s, bound: {bound:.3f} s, "
           f"ratio {ratio:.2f}")
    benchmark.pedantic(run_experiment1, args=(1.0, 1.0, 1.0),
                       kwargs={"iterations": 1}, rounds=3, iterations=1)
