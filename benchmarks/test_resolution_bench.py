"""Resolution-focused benchmarks: wide-graph storms and the compiled index.

These back the ``BENCH_resolution.json`` perf baseline.  The assertions pin
the qualitative properties the compiled exception-graph index guarantees:

* ``graph_statistics`` plus a 100-call ``resolve()`` loop on the
  12-primitive, ``max_level=3`` graph (794 nodes) finishes in well under a
  second (the naive scan needed seconds);
* the compiled path returns the identical exception to the naive reference
  scan (spot-checked here; the property tests in ``tests/`` randomize);
* the wide-graph all-raise storms complete with every participation
  recovered, resolving through the truncation rule to the universal
  exception, and exactly one resolution call per action instance.
"""

import json

import pytest

from repro.bench import (
    format_table,
    graph_microbench_table,
    run_scenario,
    wide_graph_table,
    write_resolution_baseline,
)


@pytest.mark.benchmark(group="wide-graph")
def test_wide_graph_storms_resolve_and_recover(benchmark, report):
    rows = benchmark.pedantic(
        lambda: run_scenario("wide_graph"), rounds=1, iterations=1)
    for row in rows:
        # Every thread recovers in every iteration of the storm.
        assert row["recovered"] == row["n_threads"] * row["iterations"]
        # One resolution per action instance (the paper's algorithm), even
        # though every participant raised.
        assert row["resolution_calls"] == row["iterations"]
        # 794 generated nodes plus the abortion exception the action
        # definition always declares.
        assert row["graph_nodes"] == 795
    report("Wide-graph all-raise storms (12 primitives, max_level=3)",
           format_table(rows, columns=["n_threads", "graph_nodes",
                                       "resolution_calls",
                                       "protocol_messages", "total_time",
                                       "wall_seconds"]))


@pytest.mark.benchmark(group="graph-microbench")
def test_compiled_resolution_meets_the_latency_bar(benchmark, report):
    rows = benchmark.pedantic(graph_microbench_table, rounds=1, iterations=1)
    for row in rows:
        # Acceptance bar: stats + 100 resolves < 1s; with the compiled
        # index the whole loop is comfortably in the milliseconds.
        assert row["stats_seconds"] + row["resolve_seconds"] < 1.0
        # The naive reference (checked for equality inside the runner) is
        # orders of magnitude slower per call.
        assert row["speedup_vs_naive"] > 10
    report("Compiled exception-graph microbenchmark",
           format_table(rows, columns=["n_primitives", "nodes",
                                       "build_seconds", "stats_seconds",
                                       "resolve_us_per_call",
                                       "speedup_vs_naive"]))


def test_baseline_document_is_json_round_trippable(tmp_path):
    path = tmp_path / "BENCH_resolution.json"
    document = write_resolution_baseline(str(path))
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(json.dumps(document))
    assert loaded["schema"] == 1
    assert len(loaded["wide_graph"]) == 3
    assert len(loaded["graph_microbench"]) == 3
    # Wide-graph rows embed message statistics snapshots; the "src->dst"
    # link encoding is what makes them JSON-representable at all.
    sample = loaded["wide_graph"][0]["message_stats"]
    assert all("->" in key for key in sample["by_link"])


def test_wide_graph_rows_identical_in_parallel_mode(report):
    # The wide-graph scenario is simulated virtual time, so apart from the
    # wall-clock field the parallel rows must be byte-identical to the
    # sequential ones.
    def strip(rows):
        return [{k: v for k, v in row.items() if k != "wall_seconds"}
                for row in rows]
    sequential = wide_graph_table()
    parallel = wide_graph_table(parallel=True)
    assert strip(sequential) == strip(parallel)
