"""Experiment E3 — message-complexity counts (Section 3.2.3 and Theorem 2).

The paper enumerates the message cost of the new algorithm exactly:

* one exception, no nesting: ``(N+1)(N−1)`` messages
  (``N−1`` Exception, ``(N−1)²`` Suspended, ``N−1`` Commit);
* all N threads raise simultaneously: also ``(N+1)(N−1)``
  (``N(N−1)`` Exception, ``N−1`` Commit);
* the count is independent of the number of concurrent exceptions;
* Theorem 2: at most ``n_max (N²−1)`` messages with nesting.

For the baselines the paper gives ``O(n_max N³)`` (Campbell–Randell) and
``n_max · 3N(N−1)`` (Romanovsky-96).  These benches measure the counts on
the real runtime over the simulated network and compare them with the
formulas.
"""

import pytest

from repro.analysis import (
    campbell_randell_reference_messages,
    messages_all_exceptions,
    messages_single_exception,
    romanovsky96_messages,
    theorem2_worst_case_messages,
)
from repro.bench import (
    algorithm_comparison_table,
    message_complexity_table,
    run_complexity_scenario,
)
from repro.bench.reporting import format_table


@pytest.mark.benchmark(group="complexity")
def test_new_algorithm_matches_enumeration(benchmark, report):
    """Measured counts equal the paper's exact (N+1)(N−1) enumeration."""
    rows = message_complexity_table(thread_counts=(2, 3, 4, 5, 6))
    for row in rows:
        n = row["n_threads"]
        assert row["measured_single"] == messages_single_exception(n), \
            f"single-exception count mismatch for N={n}"
        assert row["measured_all"] == messages_all_exceptions(n), \
            f"all-exceptions count mismatch for N={n}"
        assert row["measured_single"] == row["measured_all"], \
            "the count must be independent of the number of concurrent exceptions"
        assert row["measured_all"] <= row["theorem2_bound"]

    report("Message complexity of the new algorithm (no nesting)",
           format_table(rows, columns=["n_threads", "measured_single",
                                       "measured_all", "paper_single",
                                       "theorem2_bound"]))

    benchmark.pedantic(run_complexity_scenario, args=(4, 4), rounds=3,
                       iterations=1)


@pytest.mark.benchmark(group="complexity")
def test_exception_count_independence(benchmark, report):
    """For fixed N the count does not change with the number of exceptions."""
    n = 5
    counts = [run_complexity_scenario(n, k)["resolution_messages"]
              for k in range(1, n + 1)]
    assert len(set(counts)) == 1, \
        f"message count should be independent of concurrency level: {counts}"
    assert counts[0] == messages_single_exception(n)

    report("Independence from the number of concurrent exceptions (N = 5)",
           "\n".join(f"  {k} concurrent exception(s): {count} messages"
                     for k, count in enumerate(counts, start=1)))

    benchmark.pedantic(run_complexity_scenario, args=(5, 3), rounds=3,
                       iterations=1)


@pytest.mark.benchmark(group="complexity")
def test_baseline_comparison(benchmark, report):
    """Ours ≤ Theorem 2 bound; R96 matches 3N(N−1); CR grows like N³."""
    rows = algorithm_comparison_table(thread_counts=(3, 4, 5))
    for row in rows:
        n = row["n_threads"]
        assert row["ours_messages"] <= theorem2_worst_case_messages(n, 1)
        assert row["r96_messages"] == romanovsky96_messages(n), \
            f"Romanovsky-96 count mismatch for N={n}"
        assert row["cr_messages"] > row["r96_messages"] > row["ours_messages"]
        # CR should be within a small constant factor of the cubic reference.
        cubic = campbell_randell_reference_messages(n)
        assert 0.5 * cubic <= row["cr_messages"] <= 2.0 * cubic
        # Resolution-procedure invocations: exactly one for ours, one per
        # thread for R96, super-linear for CR.
        assert row["ours_resolution_calls"] == 1
        assert row["r96_resolution_calls"] == n
        assert row["cr_resolution_calls"] > n

    report("Resolution-message counts per algorithm (all N threads raise)",
           format_table(rows, columns=["n_threads", "ours_messages",
                                       "r96_messages", "cr_messages",
                                       "ours_resolution_calls",
                                       "r96_resolution_calls",
                                       "cr_resolution_calls"]))

    benchmark.pedantic(run_complexity_scenario, args=(4, 4),
                       kwargs={"algorithm": "campbell-randell"},
                       rounds=3, iterations=1)


@pytest.mark.benchmark(group="complexity")
def test_cubic_growth_of_campbell_randell(benchmark, report):
    """CR message count grows strictly faster than quadratically."""
    counts = {n: run_complexity_scenario(n, n, algorithm="campbell-randell")
              ["resolution_messages"] for n in (3, 5, 7)}
    ours = {n: run_complexity_scenario(n, n)["resolution_messages"]
            for n in (3, 5, 7)}
    # Quadratic growth would multiply by (7/3)² ≈ 5.4 between N=3 and N=7;
    # cubic growth multiplies by ≈ 12.7.  Require clearly super-quadratic.
    growth_cr = counts[7] / counts[3]
    growth_ours = ours[7] / ours[3]
    assert growth_cr > 7.5, f"CR growth {growth_cr:.1f} is not cubic-like"
    assert growth_ours < 7.5, f"ours grew too fast: {growth_ours:.1f}"

    report("Growth of the message count between N=3 and N=7",
           f"ours: {ours[3]} -> {ours[7]} (x{growth_ours:.1f}, quadratic)\n"
           f"CR  : {counts[3]} -> {counts[7]} (x{growth_cr:.1f}, cubic-like)")

    benchmark.pedantic(run_complexity_scenario, args=(6, 6),
                       kwargs={"algorithm": "campbell-randell"},
                       rounds=1, iterations=1)
