"""Experiment E4 — signalling-algorithm message counts (Section 3.4).

The paper states that the exception-signalling algorithm needs ``N(N−1)``
``toBeSignalled`` messages when no undo exception is involved and
``2N(N−1)`` in the worst case (one extra round after the undo operations).
These benches drive the pure signalling state machines for several group
sizes and proposal mixes, count the messages, and compare with the formulas.
"""

import pytest

from repro.analysis import (
    signalling_messages_simple,
    signalling_messages_worst_case,
)
from repro.bench.reporting import format_table
from repro.core import ActionContext, ExceptionGraph, interface
from repro.core.effects import SendTo
from repro.core.exceptions import FAILURE, UNDO
from repro.core.signalling import PerformUndo, SignalCoordinator, SignalOutcome


def _run_signalling(n_threads, proposals, undo_results=None):
    """Drive N signalling coordinators to completion; return (messages, outcomes)."""
    threads = [f"T{i:02d}" for i in range(1, n_threads + 1)]
    context = ActionContext("A", tuple(threads), ExceptionGraph("A"))
    coordinators = {t: SignalCoordinator(t, context) for t in threads}
    undo_results = undo_results or {}
    inflight, outcomes, messages = [], {}, 0

    def execute(sender, effects):
        nonlocal messages
        for effect in effects:
            if isinstance(effect, SendTo):
                messages += len(effect.recipients)
                for recipient in effect.recipients:
                    inflight.append((recipient, effect.message))
            elif isinstance(effect, SignalOutcome):
                outcomes[sender] = effect.exception
            elif isinstance(effect, PerformUndo):
                execute(sender, coordinators[sender].undo_completed(
                    undo_results.get(sender, True)))

    for thread in threads:
        execute(thread, coordinators[thread].propose(proposals.get(thread)))
    while inflight:
        recipient, message = inflight.pop(0)
        execute(recipient, coordinators[recipient].receive(message))
    return messages, outcomes


@pytest.mark.benchmark(group="signalling")
def test_simple_case_message_count(benchmark, report):
    """No µ/ƒ involved: exactly N(N−1) messages, each thread signals its own ε."""
    rows = []
    for n in (2, 3, 4, 6, 8):
        proposals = {f"T{i:02d}": interface(f"eps_{i}") if i == 1 else None
                     for i in range(1, n + 1)}
        messages, outcomes = _run_signalling(n, proposals)
        assert messages == signalling_messages_simple(n)
        assert outcomes["T01"].name == "eps_1"
        assert all(outcomes[t].name == "phi" for t in outcomes if t != "T01")
        rows.append({"n_threads": n, "measured": messages,
                     "paper_N(N-1)": signalling_messages_simple(n)})

    report("Signalling algorithm, simple case (no undo round)",
           format_table(rows))
    benchmark.pedantic(_run_signalling, args=(6, {"T01": interface("eps")}),
                       rounds=3, iterations=1)


@pytest.mark.benchmark(group="signalling")
def test_undo_case_message_count(benchmark, report):
    """µ proposed: the undo round doubles the messages, all roles signal µ."""
    rows = []
    for n in (2, 3, 4, 6):
        proposals = {f"T{i:02d}": UNDO if i == 1 else None
                     for i in range(1, n + 1)}
        messages, outcomes = _run_signalling(n, proposals)
        assert messages == signalling_messages_worst_case(n)
        assert all(value == UNDO for value in outcomes.values())
        rows.append({"n_threads": n, "measured": messages,
                     "paper_2N(N-1)": signalling_messages_worst_case(n)})

    report("Signalling algorithm, undo (µ) case — worst-case message count",
           format_table(rows))
    benchmark.pedantic(_run_signalling, args=(6, {"T01": UNDO}),
                       rounds=3, iterations=1)


@pytest.mark.benchmark(group="signalling")
def test_failed_undo_degrades_to_failure(benchmark, report):
    """If any role's undo fails, every role signals ƒ (never a mixed outcome)."""
    n = 4
    proposals = {"T01": UNDO}
    undo_results = {"T03": False}         # T03's undo operations fail
    messages, outcomes = _run_signalling(n, proposals, undo_results)
    assert all(value == FAILURE for value in outcomes.values())
    assert messages == signalling_messages_worst_case(n)

    proposals_f = {"T02": FAILURE}
    messages_f, outcomes_f = _run_signalling(n, proposals_f)
    assert all(value == FAILURE for value in outcomes_f.values())
    assert messages_f == signalling_messages_simple(n), \
        "a directly-proposed ƒ needs no undo round"

    report("Signalling algorithm, ƒ coordination",
           f"undo round with one failed undo: {messages} messages, all ƒ\n"
           f"direct ƒ proposal:               {messages_f} messages, all ƒ")
    benchmark.pedantic(_run_signalling, args=(4, {"T01": UNDO}),
                       kwargs={"undo_results": {"T02": False}},
                       rounds=3, iterations=1)
