"""Admission control: bounding how much concurrent work the pool accepts.

The driver consults one :class:`AdmissionController` per run.  It enforces

* **max-in-flight** — at most ``max_in_flight`` instances dispatched and
  not yet concluded (``None`` means unlimited: the partition pool itself
  is then the only concurrency bound);
* **bounded queueing** — up to ``queue_capacity`` admitted jobs may wait
  (FIFO) for an in-flight slot and enough free workers;
* **backpressure policy** — what happens to a job that finds both the
  slots and the queue full: ``"drop"`` rejects it immediately, ``"retry"``
  re-offers it after ``retry_delay`` virtual time, up to ``max_retries``
  times, and drops it only when its retries are exhausted.

The controller is pure bookkeeping over virtual time (no wall clock, no
randomness), so admission decisions are deterministic and identical in
sequential and process-pool sweeps.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .driver import Job

#: Decisions returned by :meth:`AdmissionController.offer`.
DISPATCH = "dispatch"
QUEUE = "queue"
RETRY = "retry"
DROP = "drop"

POLICIES = ("drop", "retry")


class AdmissionStats:
    """Counters of one run's admission decisions (JSON-serializable)."""

    def __init__(self) -> None:
        self.arrived = 0
        self.dispatched = 0
        self.queued = 0
        self.retried = 0
        self.dropped = 0
        self.completed = 0
        self.max_queue_length = 0
        self.max_in_flight = 0

    #: The pure tallies (summed by :meth:`merge`); the remaining two
    #: snapshot fields are high-water marks (maxed by :meth:`merge`).
    TALLIES = ("arrived", "dispatched", "queued", "retried", "dropped",
               "completed")

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy of every counter."""
        return {
            "arrived": self.arrived,
            "dispatched": self.dispatched,
            "queued": self.queued,
            "retried": self.retried,
            "dropped": self.dropped,
            "completed": self.completed,
            "max_queue_length": self.max_queue_length,
            "max_in_flight": self.max_in_flight,
        }

    def merge(self, snapshot: Dict[str, int]) -> None:
        """Add the counters captured in ``snapshot`` onto this instance.

        Used to aggregate per-shard admission counters from a
        :class:`~repro.workload.sharding.ShardedPool` run into one
        deployment-wide view.  Tallies (arrivals, dispatches, queue
        entries, retries, drops, completions) sum exactly; the two
        high-water marks take the **max** — shards run on independent
        virtual clocks, so their peaks cannot soundly be added (the
        sharded pool reports the sum-of-peaks upper bound separately as
        the merged ``max_concurrency``).
        """
        for name in self.TALLIES:
            setattr(self, name, getattr(self, name) + snapshot.get(name, 0))
        for name in ("max_queue_length", "max_in_flight"):
            setattr(self, name, max(getattr(self, name),
                                    snapshot.get(name, 0)))

    def __repr__(self) -> str:
        return (f"<AdmissionStats arrived={self.arrived} "
                f"dispatched={self.dispatched} dropped={self.dropped}>")


class AdmissionController:
    """Max-in-flight + bounded-FIFO-queue admission with drop/retry."""

    def __init__(self, max_in_flight: Optional[int] = None,
                 queue_capacity: int = 0, policy: str = "drop",
                 retry_delay: float = 1.0, max_retries: int = 2) -> None:
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1 (or None)")
        if queue_capacity < 0:
            raise ValueError("queue_capacity must be non-negative")
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; "
                             f"choose from {POLICIES}")
        if retry_delay < 0:
            raise ValueError("retry_delay must be non-negative")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.max_in_flight = max_in_flight
        self.queue_capacity = queue_capacity
        self.policy = policy
        self.retry_delay = retry_delay
        self.max_retries = max_retries
        self.in_flight = 0
        self.queue: Deque["Job"] = deque()
        self.stats = AdmissionStats()

    # ------------------------------------------------------------------
    def has_slot(self) -> bool:
        """True while another instance may be in flight."""
        return self.max_in_flight is None or self.in_flight < self.max_in_flight

    def offer(self, job: "Job", placeable: bool) -> str:
        """Decide the fate of an offered job.

        ``placeable`` is the driver's report of whether enough pool workers
        are free right now.  First offers count as arrivals; re-offers (the
        retry policy's) do not.  A ``"queue"`` decision has already
        enqueued the job when this returns.
        """
        if job.attempts == 0:
            self.stats.arrived += 1
        job.attempts += 1
        if not self.queue and self.has_slot() and placeable:
            return DISPATCH
        if len(self.queue) < self.queue_capacity:
            self.queue.append(job)
            self.stats.queued += 1
            self.stats.max_queue_length = max(self.stats.max_queue_length,
                                              len(self.queue))
            return QUEUE
        if self.policy == "retry" and job.attempts <= self.max_retries:
            self.stats.retried += 1
            return RETRY
        self.stats.dropped += 1
        return DROP

    def pop_placeable(self, placeable: Callable[["Job"], bool]
                      ) -> Optional["Job"]:
        """Dequeue the next job that can start now, if any.

        FIFO with head-of-line blocking: a wide job at the head waits for
        enough workers even while a narrower job behind it could start —
        deliberate, so admission order is predictable and starvation-free.
        """
        if not self.queue or not self.has_slot():
            return None
        if not placeable(self.queue[0]):
            return None
        return self.queue.popleft()

    # ------------------------------------------------------------------
    def job_dispatched(self, job: "Job") -> None:
        """Record a dispatch (driver callback)."""
        self.in_flight += 1
        self.stats.dispatched += 1
        self.stats.max_in_flight = max(self.stats.max_in_flight,
                                       self.in_flight)

    def job_finished(self, job: "Job") -> None:
        """Record an instance conclusion (driver callback)."""
        self.in_flight -= 1
        self.stats.completed += 1

    def describe(self) -> Dict[str, Any]:
        """The controller's configuration (for reports)."""
        return {
            "max_in_flight": self.max_in_flight,
            "queue_capacity": self.queue_capacity,
            "policy": self.policy,
            "retry_delay": self.retry_delay,
            "max_retries": self.max_retries,
        }

    def __repr__(self) -> str:
        return (f"<AdmissionController in_flight={self.in_flight}"
                f"/{self.max_in_flight} queue={len(self.queue)}"
                f"/{self.queue_capacity} policy={self.policy}>")
