"""Registered traffic-action plugins: name → :class:`TrafficActionSpec`.

The workload layer's counterpart to the scenario registry of
:mod:`repro.bench.engine`, built on the same
:class:`~repro.core.registry.Registry` base.  A registered spec is a
*template*: :meth:`TrafficActionRegistry.resolve` looks it up by name and
applies field overrides (validated against the spec dataclass's declared
fields — unknown keys and wrong types are structured
:class:`~repro.core.registry.ParamError`\\ s, raised before any kernel
spins up).  :meth:`~repro.workload.driver.WorkloadDriver.add_action` and
:class:`~repro.workload.actions.ActionMix` accept either a spec or a
registered name, so scenarios and user code can say
``driver.add_action("Serve", width=3)``.

The stock actions (the capacity sweep's homogeneous ``Serve`` and the
mixed-traffic ``Ping``/``Crunch``/``Flaky`` trio) are registered here;
plugins register their own specs — including :class:`TrafficActionSpec`
subclasses with extra fields and a custom :meth:`~repro.workload.actions.
TrafficActionSpec.build`, such as the transactional ``Transfer`` action
of :mod:`repro.workload.transactional` — through :meth:`register`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from ..core.registry import (
    ParamError,
    ParamValidationError,
    Registry,
    format_params,
    params_from_dataclass,
    validate_params,
)
from .actions import TrafficActionSpec


class TrafficActionRegistry(Registry[TrafficActionSpec]):
    """Name → :class:`TrafficActionSpec` template mapping."""

    kind = "traffic action"

    def register(self, spec: TrafficActionSpec) -> TrafficActionSpec:
        """Register ``spec`` as a template (alias of :meth:`add`)."""
        return self.add(spec)

    def validate_overrides(self, name: str,
                           overrides) -> List[ParamError]:
        """Check field overrides for template ``name`` (partial contract).

        ``name`` itself cannot be overridden — a resolved spec keeps the
        registered identity — and unknown/mistyped fields are reported
        against the spec (sub)class's declared fields.
        """
        spec = self.get(name)
        params = params_from_dataclass(type(spec), skip=("name",))
        return validate_params(f"traffic action {name!r}", params,
                               accepts_extra=False, given=overrides,
                               require=False)

    def resolve(self, name: str, /, **overrides) -> TrafficActionSpec:
        """Look up template ``name`` and apply validated field overrides.

        ``name`` is positional-only so that a ``name=...`` override lands
        in ``overrides`` and gets the structured not-overridable error.
        """
        spec = self.get(name)
        if not overrides:
            return spec
        errors = self.validate_overrides(name, overrides)
        if errors:
            raise ParamValidationError(errors)
        return replace(spec, **overrides)

    def describe_params(self, name: str) -> str:
        """One-line rendering of ``name``'s overridable fields."""
        spec = self.get(name)
        params = params_from_dataclass(type(spec), skip=("name",))
        return format_params(params, accepts_extra=False)


#: The process-wide default registry (stock actions below; plugins add
#: their own templates).
ACTIONS = TrafficActionRegistry()

#: The stock templates: the capacity sweep's homogeneous server and the
#: mixed-traffic trio (a fast clean action, a wide faulty one and a
#: narrow always-raising one).
STOCK_ACTIONS = (
    TrafficActionSpec("Serve", width=2, mean_service=1.0,
                      raise_probability=0.1),
    TrafficActionSpec("Ping", width=2, mean_service=0.5,
                      raise_probability=0.0, weight=3.0),
    TrafficActionSpec("Crunch", width=3, mean_service=1.5,
                      raise_probability=0.4, weight=2.0),
    TrafficActionSpec("Flaky", width=2, mean_service=1.0,
                      raise_probability=1.0, weight=1.0),
)

for _spec in STOCK_ACTIONS:
    ACTIONS.register(_spec)
del _spec
