"""Stock CA-action definitions for traffic generation, and the action mix.

A load test needs action definitions whose behaviour is *parameterised per
instance* — service times and fault injection must differ from job to job,
yet be exactly reproducible.  :class:`TrafficActionSpec` describes one such
definition; :func:`build_traffic_action` turns it into a
:class:`~repro.core.action.CAActionDefinition` whose role bodies read their
per-instance profile (service times, which role raises) from the driver.

Profiles are drawn when a job is *submitted*, from a sub-stream derived
from ``(seed, action, job index)`` — pure in those three values, like the
explorer's plan generator — so the behaviour of job ``i`` does not depend
on scheduling order, pool placement or what other jobs did.

:class:`ActionMix` is a weighted set of specs; the driver samples it (from
the ``"mix"`` stream) for jobs submitted without an explicit action.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union, TYPE_CHECKING

from ..core.action import CAActionDefinition, RoleDefinition
from ..core.exception_graph import generate_full_graph
from ..core.exceptions import ExceptionDescriptor, internal
from ..core.handlers import HandlerMap, HandlerResult
from ..core.registry import ParamSpec, params_from_dataclass
from ..simkernel.rng import SeededStreams

if TYPE_CHECKING:  # pragma: no cover
    from .driver import WorkloadDriver


@dataclass(frozen=True, slots=True)
class JobProfile:
    """The pre-drawn per-instance behaviour of one job."""

    #: Virtual service time of each role's primary attempt, by role index.
    service_times: Tuple[float, ...]
    #: Index of the role that raises the action's fault (None: clean run).
    raiser: Optional[int] = None


@dataclass(frozen=True, slots=True)
class TrafficActionSpec:
    """Description of one load-generating CA-action definition.

    Attributes
    ----------
    name:
        Action (and registry) name.
    width:
        Number of cooperating roles — every instance occupies this many
        pool workers for its whole lifetime.
    mean_service:
        Mean of the exponential per-role service time.
    raise_probability:
        Probability that one instance raises the action's internal fault
        (role 0 raises, after half its service time), forcing resolution
        and coordinated handling on that instance.
    handler_time:
        Virtual time each role's resolving handler takes.
    weight:
        Relative frequency in an :class:`ActionMix`.
    """

    name: str
    width: int = 2
    mean_service: float = 1.0
    raise_probability: float = 0.0
    handler_time: float = 0.2
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("width must be at least 1")
        if self.mean_service <= 0:
            raise ValueError("mean_service must be positive")
        if not 0.0 <= self.raise_probability <= 1.0:
            raise ValueError("raise_probability must be in [0, 1]")
        if self.handler_time < 0:
            raise ValueError("handler_time must be non-negative")
        if self.weight <= 0:
            raise ValueError("weight must be positive")

    @property
    def role_names(self) -> Tuple[str, ...]:
        return tuple(f"r{i + 1}" for i in range(self.width))

    @property
    def fault(self) -> ExceptionDescriptor:
        return internal(f"{self.name}_fault")

    def draw_profile(self, streams: SeededStreams, index: int) -> JobProfile:
        """Draw job ``index``'s profile — pure in ``(seed, name, index)``."""
        stream = streams.fresh_stream(f"job:{self.name}:{index}")
        service = tuple(stream.expovariate(1.0 / self.mean_service)
                        for _ in range(self.width))
        raiser: Optional[int] = None
        if self.raise_probability and \
                stream.random() < self.raise_probability:
            raiser = 0
        return JobProfile(service_times=service, raiser=raiser)

    def build(self, driver: "WorkloadDriver") -> CAActionDefinition:
        """The CA-action definition this spec generates, wired to ``driver``.

        Subclasses override this (and usually :meth:`draw_profile`) to
        plug custom role bodies through the same registry path — see
        :class:`repro.workload.transactional.TransactionalActionSpec`.
        """
        return build_traffic_action(self, driver)

    @classmethod
    def declared_params(cls) -> Tuple[ParamSpec, ...]:
        """The overridable fields, as declared-parameter specs."""
        return params_from_dataclass(cls, skip=("name",))


def build_traffic_action(spec: TrafficActionSpec,
                         driver: "WorkloadDriver") -> CAActionDefinition:
    """Build the CA-action definition for ``spec``, wired to ``driver``.

    Each role body: wait half its drawn service time; if this instance's
    profile elected this role as the raiser, raise the action's fault
    (leaving the peers to be suspended and the resolver to resolve); wait
    the other half.  The resolving handler charges ``handler_time`` and
    completes, so faulty instances conclude as RECOVERED.
    """
    fault = spec.fault

    def resolving_handler(ctx):
        if spec.handler_time > 0:
            yield ctx.delay(spec.handler_time)
        return HandlerResult.success()

    def make_body(role_index: int):
        def body(ctx):
            profile = driver.profile_for(ctx.instance)
            half = profile.service_times[role_index] / 2.0
            if half > 0:
                yield ctx.delay(half)
            if profile.raiser == role_index:
                ctx.raise_exception(fault)
            if half > 0:
                yield ctx.delay(half)
        return body

    roles = [RoleDefinition(role, make_body(index),
                            HandlerMap(default_handler=resolving_handler))
             for index, role in enumerate(spec.role_names)]
    return CAActionDefinition(
        spec.name, roles, internal_exceptions=[fault],
        graph=generate_full_graph([fault], action_name=spec.name))


class ActionMix:
    """A weighted mix of :class:`TrafficActionSpec` definitions."""

    def __init__(self) -> None:
        self._specs: Dict[str, TrafficActionSpec] = {}
        self._order: List[str] = []

    def add(self, spec: Union[TrafficActionSpec, str],
            **overrides) -> TrafficActionSpec:
        """Add a spec — or resolve a registered template name first.

        Passing a string resolves it (with validated ``overrides``)
        through the default :data:`~repro.workload.registry.ACTIONS`
        registry, so mixes can be assembled entirely by name.
        """
        if isinstance(spec, str):
            from .registry import ACTIONS
            spec = ACTIONS.resolve(spec, **overrides)
        elif overrides:
            raise TypeError("overrides are only valid with a registered "
                            "action name, not a spec instance")
        if spec.name in self._specs:
            raise ValueError(f"action {spec.name!r} already in the mix")
        self._specs[spec.name] = spec
        self._order.append(spec.name)
        return spec

    def get(self, name: str) -> TrafficActionSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(f"unknown traffic action {name!r}; "
                           f"mix has {self._order}") from None

    def pick(self, streams: SeededStreams) -> TrafficActionSpec:
        """Sample one spec, weight-proportionally, from the ``"mix"`` stream."""
        if not self._order:
            raise ValueError("the action mix is empty")
        if len(self._order) == 1:
            return self._specs[self._order[0]]
        total = sum(self._specs[name].weight for name in self._order)
        point = streams.random("mix") * total
        cumulative = 0.0
        for name in self._order:
            cumulative += self._specs[name].weight
            if point < cumulative:
                return self._specs[name]
        return self._specs[self._order[-1]]

    def names(self) -> List[str]:
        return list(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self):
        return (self._specs[name] for name in self._order)
