"""Sharded partition pools: horizontal capacity scaling with merged telemetry.

One :class:`~repro.workload.driver.WorkloadDriver` tops out at a few
hundred instances per wall-clock second because the whole deployment —
kernel, network, pool — lives in a single Python process.  This module
scales the *capacity* workload horizontally instead:

* a :class:`ShardPlan` partitions one logical capacity workload across
  ``n_shards`` independent shards.  Per-shard seeds, arrival rates and
  job slices are derived **purely** from ``(seed, shard_id)``, so the
  plan — and therefore the merged result — is identical no matter how
  the shards are executed;
* each shard is one :func:`run_shard` call: a fresh
  :class:`~repro.simkernel.kernel.Kernel` +
  :class:`~repro.runtime.system.DistributedCASystem` +
  :class:`~repro.workload.driver.WorkloadDriver` serving that shard's
  slice of the traffic.  Shards ship to a
  :class:`~concurrent.futures.ProcessPoolExecutor` when ``workers > 1``
  and fall back to in-process sequential execution (logged, never
  silent) when no pool can be created — the same byte-identical-fallback
  idiom as :func:`repro.bench.engine.run_scenario`;
* a :class:`GlobalAdmissionController` keeps backpressure meaningful at
  scale: a **global** max-in-flight budget is split into per-shard
  leases up front (each shard's admission controller enforces its
  lease), and :meth:`GlobalAdmissionController.rebalance` re-divides the
  budget between sweep points in proportion to each shard's observed
  demand — pure integer arithmetic over merged counters, so rebalancing
  is as deterministic as the shards themselves;
* shard results come back as plain snapshots and merge through the
  already merge-safe telemetry types —
  :meth:`repro.analysis.histograms.LatencyHistogram.merge`,
  :meth:`repro.analysis.metrics.RunMetrics.merge`,
  :meth:`repro.net.network.MessageStatistics.merge` and
  :meth:`repro.workload.admission.AdmissionStats.merge` — into one
  report carrying both per-shard and merged views.

Determinism contract: for a fixed :class:`ShardPlan`, the merged
snapshot (everything except the wall-clock fields) is byte-identical for
``workers`` ∈ {sequential, 2, 4, ...}.  ``tests/workload/test_sharding.py``
pins this, and the ``scale_small`` conformance case pins the plan/merge
semantics across PRs.
"""

from __future__ import annotations

import json
import logging
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.histograms import LatencyHistogram
from ..analysis.metrics import RunMetrics
from ..explore.monitor import InvariantMonitor
from ..net.latency import ConstantLatency
from ..net.network import MessageStatistics
from ..runtime.config import RuntimeConfig
from ..runtime.system import DistributedCASystem
from ..simkernel.rng import SeededStreams
from .admission import AdmissionController, AdmissionStats
from .arrivals import OpenLoopPoisson
from .actions import TrafficActionSpec
from .driver import WorkloadDriver

logger = logging.getLogger(__name__)

#: Stream-name prefix the per-shard seeds are derived under.
SHARD_SEED_PREFIX = "shard"


# ----------------------------------------------------------------------
# The shard plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardSpec:
    """One shard's derived parameters (a pure function of the plan)."""

    shard_id: int
    seed: int
    n_instances: int
    offered_load: float
    #: Per-shard max-in-flight lease granted by the global controller
    #: (``None`` means the global budget is unlimited).
    lease: Optional[int]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard_id": self.shard_id,
            "seed": self.seed,
            "n_instances": self.n_instances,
            "offered_load": self.offered_load,
            "lease": self.lease,
        }


def shard_seed(seed: int, shard_id: int) -> int:
    """The derived seed of shard ``shard_id`` under master ``seed``.

    Uses the same stable, ``PYTHONHASHSEED``-independent derivation as
    :class:`~repro.simkernel.rng.SeededStreams`, so the mapping never
    depends on which process computes it.
    """
    return SeededStreams(seed).derived_seed(f"{SHARD_SEED_PREFIX}:{shard_id}")


class ShardPlan:
    """A deterministic partition of one capacity workload into shards.

    ``n_instances`` jobs are sliced as evenly as possible (earlier shards
    get the remainder), the aggregate ``offered_load`` is split in
    proportion to each shard's slice, and each shard gets an independent
    seed derived from ``(seed, shard_id)``.  Everything is pure
    arithmetic over the constructor arguments: two processes building the
    same plan always agree, which is what makes any executor — including
    in-process sequential — produce the identical merged result.
    """

    def __init__(self, seed: int, n_shards: int, n_instances: int,
                 offered_load: float,
                 leases: Optional[Sequence[Optional[int]]] = None) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if n_instances < 1:
            raise ValueError("need at least one instance")
        if offered_load <= 0:
            raise ValueError("offered_load must be positive")
        if leases is not None and len(leases) != n_shards:
            raise ValueError(f"need one lease per shard "
                             f"({len(leases)} != {n_shards})")
        self.seed = int(seed)
        self.n_shards = int(n_shards)
        self.n_instances = int(n_instances)
        self.offered_load = float(offered_load)

        base, remainder = divmod(self.n_instances, self.n_shards)
        specs: List[ShardSpec] = []
        for shard_id in range(self.n_shards):
            instances = base + (1 if shard_id < remainder else 0)
            specs.append(ShardSpec(
                shard_id=shard_id,
                seed=shard_seed(self.seed, shard_id),
                n_instances=instances,
                # Load splits in proportion to the slice, so every shard
                # runs for roughly the same virtual duration and the
                # aggregate offered rate is preserved.
                offered_load=self.offered_load * instances
                / self.n_instances,
                lease=None if leases is None else leases[shard_id],
            ))
        self.shards: Tuple[ShardSpec, ...] = tuple(specs)

    def describe(self) -> Dict[str, Any]:
        """The plan's defining parameters (for reports and fixtures)."""
        return {
            "seed": self.seed,
            "n_shards": self.n_shards,
            "n_instances": self.n_instances,
            "offered_load": self.offered_load,
            "leases": [spec.lease for spec in self.shards],
        }

    def __repr__(self) -> str:
        return (f"<ShardPlan seed={self.seed} shards={self.n_shards} "
                f"instances={self.n_instances} load={self.offered_load:g}>")


# ----------------------------------------------------------------------
# Global admission: one budget, per-shard leases
# ----------------------------------------------------------------------
class GlobalAdmissionController:
    """A cluster-wide max-in-flight budget granted to shards as leases.

    Shards run in independent processes with independent virtual clocks,
    so a live cross-shard token bus would make the result depend on the
    executor.  Instead the global budget is divided **up front**: shard
    ``i`` runs its local :class:`~repro.workload.admission.
    AdmissionController` with ``max_in_flight = lease_i`` and the leases
    always sum to the budget, so at no point can the deployment exceed
    it.  Between sweep points :meth:`rebalance` re-divides the budget in
    proportion to the demand each shard reported (peak in-flight plus
    peak queue length) — pure largest-remainder arithmetic, so a sweep
    rebalances identically no matter how its shards were executed.

    ``max_in_flight=None`` models an unlimited budget: every lease is
    ``None`` and rebalancing is a no-op.
    """

    def __init__(self, max_in_flight: Optional[int], n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if max_in_flight is not None and max_in_flight < n_shards:
            raise ValueError(
                f"global max_in_flight ({max_in_flight}) must grant every "
                f"shard at least one slot ({n_shards} shards)")
        self.max_in_flight = max_in_flight
        self.n_shards = int(n_shards)
        self.leases: Tuple[Optional[int], ...] = self._split(
            [1] * self.n_shards)

    def _split(self, weights: Sequence[int]) -> Tuple[Optional[int], ...]:
        """Divide the budget proportionally to ``weights`` (min 1 each)."""
        if self.max_in_flight is None:
            return tuple([None] * self.n_shards)
        budget = self.max_in_flight
        # Every shard keeps at least one slot so no shard is starved into
        # dropping its whole slice; the rest goes out by largest
        # remainder over the weights (ties to the lowest shard id).
        floor = [1] * self.n_shards
        spare = budget - self.n_shards
        total = sum(weights) or self.n_shards
        weights = list(weights) if sum(weights) else [1] * self.n_shards
        shares = [spare * weight / total for weight in weights]
        grants = [int(share) for share in shares]
        leftover = spare - sum(grants)
        order = sorted(range(self.n_shards),
                       key=lambda i: (-(shares[i] - grants[i]), i))
        for i in order[:leftover]:
            grants[i] += 1
        return tuple(floor[i] + grants[i] for i in range(self.n_shards))

    def rebalance(self, demands: Sequence[int]) -> Tuple[Optional[int], ...]:
        """Re-divide the budget in proportion to observed shard demand.

        ``demands`` is one non-negative integer per shard — the sharded
        pool feeds it ``peak in-flight + peak queue length`` from each
        shard's admission counters.  Returns (and records) the new
        leases; the sum always equals the budget and every shard keeps
        at least one slot.
        """
        if len(demands) != self.n_shards:
            raise ValueError(f"need one demand per shard "
                             f"({len(demands)} != {self.n_shards})")
        if any(demand < 0 for demand in demands):
            raise ValueError("demands must be non-negative")
        self.leases = self._split([int(demand) for demand in demands])
        return self.leases

    def __repr__(self) -> str:
        return (f"<GlobalAdmissionController budget={self.max_in_flight} "
                f"leases={list(self.leases)}>")


# ----------------------------------------------------------------------
# One shard = one kernel + system + driver (worker-side, picklable)
# ----------------------------------------------------------------------
def run_shard(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Run one shard of a sharded capacity workload and snapshot it.

    ``params`` is a plain dict (picklable both ways) built by
    :meth:`ShardedPool._shard_params`.  The returned snapshot carries
    only JSON-friendly mergeable telemetry: histogram/metrics/message
    snapshots plus scalar counters — never live objects — so shards
    merge identically whether they ran in this process or a worker.
    """
    spec = dict(params)
    monitor_oracles = spec.pop("check_oracles")
    lean = spec.pop("lean_telemetry")
    system = DistributedCASystem(
        RuntimeConfig(algorithm=spec["algorithm"],
                      resolution_time=spec["t_resolution"]),
        latency=ConstantLatency(spec["t_msg"]))
    system.add_threads([f"S{spec['shard_id']:03d}W{i:03d}"
                        for i in range(1, spec["pool_size"] + 1)])
    if lean:
        # A million-instance shard must not retain one event string and
        # two ActionOutcome records per instance; counters are enough
        # for capacity telemetry (and they merge identically).
        system.metrics.keep_details = False
    monitor = InvariantMonitor(system) if monitor_oracles else None
    driver = WorkloadDriver(
        system, seed=spec["seed"],
        admission=AdmissionController(max_in_flight=spec["lease"],
                                      queue_capacity=spec["queue_capacity"],
                                      policy=spec["policy"]))
    driver.add_action(TrafficActionSpec(
        "Serve", width=spec["width"], mean_service=spec["mean_service"],
        raise_probability=spec["raise_probability"]))
    driver.run(OpenLoopPoisson(rate=spec["offered_load"],
                               count=spec["n_instances"]))

    violations = [] if monitor is None else [
        str(v) for v in monitor.check(require_liveness=True)]
    snapshot = driver.telemetry_snapshot()
    snapshot.update({
        "shard_id": spec["shard_id"],
        "seed": spec["seed"],
        "offered_load": spec["offered_load"],
        "lease": spec["lease"],
        "protocol_messages": system.network.stats.protocol_messages(),
        "resolutions": system.metrics.resolutions,
        "message_stats": system.network.stats.snapshot(),
        "metrics": system.metrics.snapshot(),
        "oracle": "checked" if monitor is not None else "skipped",
        "violations": violations,
        "n_violations": len(violations),
    })
    return snapshot


# ----------------------------------------------------------------------
# Merging
# ----------------------------------------------------------------------
def merge_shard_snapshots(shards: Sequence[Mapping[str, Any]]
                          ) -> Dict[str, Any]:
    """Merge per-shard snapshots into one deployment-wide view.

    Histograms, run metrics, message statistics and admission counters
    merge through their own merge-safe types; scalars sum.  Shards run
    on independent virtual clocks, so the merged ``total_time`` is the
    slowest shard's clock, the merged virtual ``throughput`` is total
    completions over that horizon, ``mean_concurrency`` sums (aggregate
    concurrent work across the deployment) and ``max_concurrency`` sums
    the per-shard peaks (an upper bound on the aggregate peak, exact
    when shards peak together).
    """
    if not shards:
        raise ValueError("need at least one shard snapshot")
    latency = LatencyHistogram.from_snapshot(shards[0]["latency_histogram"])
    wait = LatencyHistogram.from_snapshot(shards[0]["wait_histogram"])
    metrics = RunMetrics()
    metrics.merge(shards[0]["metrics"])
    messages = MessageStatistics()
    messages.merge(shards[0]["message_stats"])
    admission = AdmissionStats()
    admission.merge(shards[0]["admission"])
    for shard in shards[1:]:
        latency.merge(shard["latency_histogram"])
        wait.merge(shard["wait_histogram"])
        metrics.merge(shard["metrics"])
        messages.merge(shard["message_stats"])
        admission.merge(shard["admission"])

    outcome_counts: Dict[str, int] = {}
    for shard in shards:
        for status, count in shard["outcome_counts"].items():
            outcome_counts[status] = outcome_counts.get(status, 0) + count

    total_time = max(shard["total_time"] for shard in shards)
    completed = sum(shard["completed"] for shard in shards)
    violations: List[str] = []
    for shard in shards:
        violations.extend(shard["violations"])
    return {
        "n_shards": len(shards),
        "jobs": sum(shard["jobs"] for shard in shards),
        "completed": completed,
        "dropped": sum(shard["dropped"] for shard in shards),
        "total_time": total_time,
        "throughput": completed / total_time if total_time > 0 else 0.0,
        "max_concurrency": sum(shard["max_concurrency"]
                               for shard in shards),
        "mean_concurrency": sum(shard["mean_concurrency"]
                                for shard in shards),
        "latency": latency.summary(),
        "wait": wait.summary(),
        "latency_histogram": latency.snapshot(),
        "admission": admission.snapshot(),
        "outcome_counts": dict(sorted(outcome_counts.items())),
        "protocol_messages": messages.protocol_messages(),
        "messages": {
            "sent": messages.sent,
            "delivered": messages.delivered,
            "dropped": messages.dropped,
        },
        "metrics": metrics.counters(),
        "violations": violations,
        "n_violations": len(violations),
    }


# ----------------------------------------------------------------------
# The sharded pool
# ----------------------------------------------------------------------
class ShardedPool:
    """Executes a :class:`ShardPlan` and merges the shard telemetry.

    Per-shard workload shape (pool size, action width, service time,
    fault rate, admission queue) is fixed at construction; the plan
    supplies the traffic split.  ``workers`` picks the executor:

    * ``0`` / ``1`` — in-process sequential (the reference execution);
    * ``N > 1`` — a :class:`~concurrent.futures.ProcessPoolExecutor`
      with ``N`` workers.  A pool that cannot be created or breaks at
      spawn falls back to sequential — logged, and recorded in the
      result's ``executor`` field, never silent — and the merged
      snapshot is byte-identical either way.
    """

    def __init__(self, pool_size: int = 8, width: int = 2,
                 mean_service: float = 1.0, raise_probability: float = 0.1,
                 t_msg: float = 0.02, t_resolution: float = 0.05,
                 queue_capacity: int = 32, policy: str = "drop",
                 algorithm: str = "ours", workers: int = 0,
                 check_oracles: bool = True,
                 lean_telemetry: bool = True) -> None:
        if pool_size < width:
            raise ValueError(f"each shard pool needs at least width={width} "
                             f"workers; got {pool_size}")
        if workers < 0:
            raise ValueError("workers must be non-negative")
        self.pool_size = int(pool_size)
        self.width = int(width)
        self.mean_service = float(mean_service)
        self.raise_probability = float(raise_probability)
        self.t_msg = float(t_msg)
        self.t_resolution = float(t_resolution)
        self.queue_capacity = int(queue_capacity)
        self.policy = policy
        self.algorithm = algorithm
        self.workers = int(workers)
        self.check_oracles = bool(check_oracles)
        self.lean_telemetry = bool(lean_telemetry)

    @property
    def capacity_per_shard(self) -> float:
        """Nominal service capacity of one shard, in instances per
        (virtual) second: ``pool_size / width / mean_service``."""
        return self.pool_size / self.width / self.mean_service

    # ------------------------------------------------------------------
    def _shard_params(self, spec: ShardSpec) -> Dict[str, Any]:
        return {
            "shard_id": spec.shard_id,
            "seed": spec.seed,
            "n_instances": spec.n_instances,
            "offered_load": spec.offered_load,
            "lease": spec.lease,
            "pool_size": self.pool_size,
            "width": self.width,
            "mean_service": self.mean_service,
            "raise_probability": self.raise_probability,
            "t_msg": self.t_msg,
            "t_resolution": self.t_resolution,
            "queue_capacity": self.queue_capacity,
            "policy": self.policy,
            "algorithm": self.algorithm,
            "check_oracles": self.check_oracles,
            "lean_telemetry": self.lean_telemetry,
        }

    def run(self, plan: ShardPlan) -> Dict[str, Any]:
        """Execute every (non-empty) shard of ``plan`` and merge.

        Returns ``{"plan", "per_shard", "merged", "executor", "workers",
        "wall_seconds", ...}``; everything except the wall-clock fields
        is a pure function of the plan.
        """
        specs = [spec for spec in plan.shards if spec.n_instances > 0]
        params = [self._shard_params(spec) for spec in specs]
        started = time.perf_counter()
        snapshots, executor = self._execute(params)
        wall_seconds = time.perf_counter() - started
        merged = merge_shard_snapshots(snapshots)
        completed = merged["completed"]
        return {
            "plan": plan.describe(),
            "per_shard": snapshots,
            "merged": merged,
            "executor": executor,
            "workers": self.workers,
            "wall_seconds": wall_seconds,
            "instances_per_second": (completed / wall_seconds
                                     if wall_seconds > 0 else 0.0),
            "submitted_per_second": (merged["jobs"] / wall_seconds
                                     if wall_seconds > 0 else 0.0),
        }

    def _execute(self, params: List[Dict[str, Any]]
                 ) -> Tuple[List[Dict[str, Any]], str]:
        """Run every shard, preferring the process pool; returns
        ``(snapshots in shard order, executor name)``."""
        if self.workers > 1 and len(params) > 1:
            snapshots = self._run_pool(params)
            if snapshots is not None:
                return snapshots, "process-pool"
        return [run_shard(p) for p in params], "sequential"

    def _run_pool(self, params: List[Dict[str, Any]]
                  ) -> Optional[List[Dict[str, Any]]]:
        """Shard fan-out on a process pool; ``None`` means "fall back"."""
        workers = min(self.workers, len(params))
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except OSError as error:
            logger.warning(
                "sharded pool: cannot create a %d-worker process pool (%s); "
                "falling back to sequential in-process shards", workers,
                error)
            return None
        try:
            with pool:
                futures = [pool.submit(run_shard, p) for p in params]
                # A shard's own exception propagates; only a broken pool
                # (workers killed at spawn) triggers the fallback.
                return [future.result() for future in futures]
        except BrokenProcessPool as error:
            logger.warning(
                "sharded pool: process pool broke (%s); falling back to "
                "sequential in-process shards", error)
            return None

    # ------------------------------------------------------------------
    def sweep(self, loads: Sequence[float], seed: int, n_instances: int,
              n_shards: int, global_max_in_flight: Optional[int] = None,
              rebalance: bool = True) -> Dict[str, Any]:
        """Sweep ``loads`` with one global admission budget.

        Runs one sharded capacity point per offered load, carrying the
        :class:`GlobalAdmissionController` across points: after each
        point the leases are rebalanced from the shards' observed demand
        (peak in-flight + peak queue length), so a shard that queued
        deeply gets a bigger slice of the budget at the next point.
        Returns the merged rows plus per-shard and merged saturation
        knees.
        """
        from .scenarios import saturation_knee

        controller = GlobalAdmissionController(global_max_in_flight,
                                               n_shards)
        rows: List[Dict[str, Any]] = []
        shard_curves: List[List[Dict[str, Any]]] = [
            [] for _ in range(n_shards)]
        lease_history: List[List[Optional[int]]] = []
        for load in loads:
            plan = ShardPlan(seed=seed, n_shards=n_shards,
                             n_instances=n_instances, offered_load=load,
                             leases=controller.leases)
            lease_history.append(list(controller.leases))
            result = self.run(plan)
            row = scale_row(result)
            rows.append(row)
            for spec, shard in zip(plan.shards, result["per_shard"]):
                shard_curves[spec.shard_id].append({
                    "offered_load": shard["offered_load"],
                    "throughput": shard["throughput"],
                    "latency_p99": shard["latency"]["p99"],
                })
            if rebalance and global_max_in_flight is not None:
                demands = [shard["admission"]["max_in_flight"]
                           + shard["admission"]["max_queue_length"]
                           for shard in result["per_shard"]]
                controller.rebalance(demands)
        merged_curve = [{"offered_load": row["offered_load"],
                         "throughput": row["throughput"],
                         "latency_p99": row["latency_p99"]}
                        for row in rows]
        return {
            "rows": rows,
            "lease_history": lease_history,
            "merged_knee": saturation_knee(merged_curve),
            "per_shard_knees": [saturation_knee(curve)
                                for curve in shard_curves],
        }

    def __repr__(self) -> str:
        return (f"<ShardedPool pool={self.pool_size} width={self.width} "
                f"workers={self.workers}>")


# ----------------------------------------------------------------------
# Engine-facing scenario runner
# ----------------------------------------------------------------------
def scale_row(result: Mapping[str, Any],
              per_shard_detail: bool = False) -> Dict[str, Any]:
    """Flatten a :meth:`ShardedPool.run` result into one benchmark row.

    Deterministic fields come first; the wall-clock fields
    (``wall_seconds``, ``instances_per_second``,
    ``submitted_per_second``) and the executor identity (``executor``,
    ``workers``) are volatile and stripped from conformance digests, so
    the same plan digests identically under any worker count.
    """
    merged = result["merged"]
    plan = result["plan"]
    row: Dict[str, Any] = {
        "seed": plan["seed"],
        "n_shards": plan["n_shards"],
        "n_instances": plan["n_instances"],
        "offered_load": plan["offered_load"],
        "leases": plan["leases"],
        "jobs": merged["jobs"],
        "completed": merged["completed"],
        "dropped": merged["dropped"],
        "total_time": merged["total_time"],
        "throughput": merged["throughput"],
        "max_concurrency": merged["max_concurrency"],
        "mean_concurrency": merged["mean_concurrency"],
        "latency_p50": merged["latency"]["p50"],
        "latency_p99": merged["latency"]["p99"],
        "wait_p99": merged["wait"]["p99"],
        "latency_histogram": merged["latency_histogram"],
        "admission": merged["admission"],
        "outcome_counts": merged["outcome_counts"],
        "protocol_messages": merged["protocol_messages"],
        "resolutions": merged["metrics"]["resolutions"],
        "oracle": ("ok" if merged["n_violations"] == 0
                   else "violations"),
        "n_violations": merged["n_violations"],
        "per_shard": [_compact_shard(shard)
                      for shard in result["per_shard"]],
        # Volatile (top-level so the conformance canonicaliser can strip
        # them): wall-clock rates and the executor identity.
        "executor": result["executor"],
        "workers": result["workers"],
        "wall_seconds": result["wall_seconds"],
        "instances_per_second": result["instances_per_second"],
        "submitted_per_second": result["submitted_per_second"],
    }
    if per_shard_detail:
        row["per_shard_detail"] = list(result["per_shard"])
    return row


def _compact_shard(shard: Mapping[str, Any]) -> Dict[str, Any]:
    """The per-shard summary embedded in a scale row (deterministic)."""
    return {
        "shard_id": shard["shard_id"],
        "seed": shard["seed"],
        "offered_load": shard["offered_load"],
        "lease": shard["lease"],
        "jobs": shard["jobs"],
        "completed": shard["completed"],
        "dropped": shard["dropped"],
        "total_time": shard["total_time"],
        "throughput": shard["throughput"],
        "latency_p50": shard["latency"]["p50"],
        "latency_p99": shard["latency"]["p99"],
        "admission": dict(shard["admission"]),
        "n_violations": shard["n_violations"],
    }


def run_scale_point(n_instances: int, n_shards: int, offered_load: float,
                    pool_size: int = 8, width: int = 2,
                    mean_service: float = 1.0,
                    raise_probability: float = 0.1,
                    seed: int = 2026, t_msg: float = 0.02,
                    t_resolution: float = 0.05,
                    global_max_in_flight: Optional[int] = None,
                    queue_capacity: int = 32, policy: str = "drop",
                    algorithm: str = "ours", workers: int = 0,
                    check_oracles: bool = True) -> Dict[str, Any]:
    """One sharded capacity point (the engine's ``scale`` scenario).

    ``pool_size`` is **per shard**, so aggregate service capacity scales
    with ``n_shards``; ``offered_load`` and ``n_instances`` are
    deployment totals that the :class:`ShardPlan` splits.  With
    ``global_max_in_flight`` set, the budget is divided into per-shard
    leases by a :class:`GlobalAdmissionController` — a budget below the
    aggregate capacity shows up as queueing/drops in the merged
    admission counters.  Everything except the wall-clock fields is a
    pure function of the keyword arguments (``workers`` only picks the
    executor), which is what the ``scale_small`` conformance case pins.
    """
    controller = GlobalAdmissionController(global_max_in_flight, n_shards)
    plan = ShardPlan(seed=seed, n_shards=n_shards, n_instances=n_instances,
                     offered_load=offered_load, leases=controller.leases)
    pool = ShardedPool(pool_size=pool_size, width=width,
                       mean_service=mean_service,
                       raise_probability=raise_probability, t_msg=t_msg,
                       t_resolution=t_resolution,
                       queue_capacity=queue_capacity, policy=policy,
                       algorithm=algorithm, workers=workers,
                       check_oracles=check_oracles)
    row = scale_row(pool.run(plan))
    row["pool_size"] = pool_size
    row["global_max_in_flight"] = global_max_in_flight
    row["capacity_nominal"] = n_shards * pool_size / width / mean_service
    return row


def merged_snapshot_digest(row: Mapping[str, Any]) -> str:
    """A stable hash over a scale row's deterministic content.

    Strips the same volatile fields as the conformance canonicaliser, so
    sequential and process-pool executions of one plan hash identically
    — the check ``tests/workload/test_sharding.py`` runs for workers
    ∈ {sequential, 2, 4}.
    """
    import hashlib

    from ..conformance import VOLATILE_KEYS

    deterministic = {key: value for key, value in row.items()
                     if key not in VOLATILE_KEYS}
    canonical = json.dumps(deterministic, sort_keys=True,
                           separators=(",", ":"), allow_nan=False)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
