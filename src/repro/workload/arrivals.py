"""Arrival processes: when (and what) traffic reaches the workload driver.

An arrival process turns a seed into a reproducible schedule of job
submissions.  Three shapes cover the classic load-testing spectrum:

* :class:`OpenLoopPoisson` — memoryless open-loop arrivals at a fixed
  offered rate; the canonical capacity-curve driver, because arrivals keep
  coming whether or not the system keeps up (so saturation shows up as
  queueing/drops rather than as a silently throttled source);
* :class:`TraceReplay` — deterministic replay of explicit arrival times
  (recorded traces, adversarial bursts, regression cases);
* :class:`ClosedLoopClients` — N clients that each wait for their previous
  job to finish, think for a while, and submit the next one; throughput is
  self-limiting, which is the right model for interactive users.

Every stochastic draw comes from a named
:class:`~repro.simkernel.rng.SeededStreams` sub-stream of the driver's
seed, so a given ``(seed, arrival process)`` pair produces the same
schedule in any process — the property the engine's byte-identical
parallel sweeps rely on.

An arrival process is consumed by
:meth:`~repro.workload.driver.WorkloadDriver.run`: it contributes one or
more kernel-process generators that call ``driver.submit(...)``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .driver import WorkloadDriver


class ArrivalProcess:
    """Base class: a named source of job submissions."""

    def processes(self, driver: "WorkloadDriver") -> List:
        """Kernel-process generators the driver spawns for this source."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable description (used in reports)."""
        return type(self).__name__


class OpenLoopPoisson(ArrivalProcess):
    """Open-loop Poisson arrivals: ``count`` jobs at offered rate ``rate``.

    Inter-arrival gaps are exponential with mean ``1 / rate``, drawn from
    the driver's ``"arrivals"`` stream.  ``action`` optionally pins every
    job to one action definition; by default the driver's mix picks.
    """

    def __init__(self, rate: float, count: int,
                 action: Optional[str] = None) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if count < 1:
            raise ValueError("count must be at least 1")
        self.rate = float(rate)
        self.count = int(count)
        self.action = action

    def processes(self, driver: "WorkloadDriver") -> List:
        def source():
            stream = driver.streams.stream("arrivals")
            for _ in range(self.count):
                yield driver.kernel.timeout(stream.expovariate(self.rate))
                driver.submit(self.action)
        return [source()]

    def describe(self) -> str:
        return f"poisson(rate={self.rate:g}, count={self.count})"


class TraceReplay(ArrivalProcess):
    """Deterministic replay of explicit arrival times.

    ``trace`` is a sequence of arrival times (non-negative, any order —
    they are sorted) or of ``(time, action)`` pairs pinning individual
    arrivals to action definitions.
    """

    def __init__(self, trace: Iterable) -> None:
        entries = []
        for entry in trace:
            if isinstance(entry, (tuple, list)):
                when, action = entry
            else:
                when, action = entry, None
            when = float(when)
            if when < 0:
                raise ValueError("arrival times must be non-negative")
            entries.append((when, action))
        if not entries:
            raise ValueError("trace must contain at least one arrival")
        self.trace: Sequence = sorted(entries, key=lambda e: e[0])

    def processes(self, driver: "WorkloadDriver") -> List:
        def source():
            for when, action in self.trace:
                gap = when - driver.kernel.now
                if gap > 0:
                    yield driver.kernel.timeout(gap)
                driver.submit(action)
        return [source()]

    def describe(self) -> str:
        return f"trace(n={len(self.trace)})"


class ClosedLoopClients(ArrivalProcess):
    """``n_clients`` closed-loop clients with exponential think times.

    Each client submits a job, waits until it completes (or is dropped),
    thinks for an exponential time with mean ``think_time`` (drawn from a
    per-client stream, so client schedules are independent), and repeats —
    ``jobs_per_client`` times.  The offered load adapts to the system's
    speed, so a closed-loop sweep varies ``n_clients`` instead of a rate.
    """

    def __init__(self, n_clients: int, think_time: float,
                 jobs_per_client: int, action: Optional[str] = None) -> None:
        if n_clients < 1:
            raise ValueError("need at least one client")
        if think_time < 0:
            raise ValueError("think_time must be non-negative")
        if jobs_per_client < 1:
            raise ValueError("jobs_per_client must be at least 1")
        self.n_clients = int(n_clients)
        self.think_time = float(think_time)
        self.jobs_per_client = int(jobs_per_client)
        self.action = action

    def processes(self, driver: "WorkloadDriver") -> List:
        def client(index: int):
            stream = driver.streams.stream(f"think:{index}")
            for _ in range(self.jobs_per_client):
                job = driver.submit(self.action)
                yield job.completion
                if self.think_time > 0:
                    yield driver.kernel.timeout(
                        stream.expovariate(1.0 / self.think_time))
        return [client(index) for index in range(self.n_clients)]

    def describe(self) -> str:
        return (f"closed(clients={self.n_clients}, "
                f"think={self.think_time:g}, "
                f"jobs={self.jobs_per_client})")
