"""The workload driver: many concurrent CA-action instances over one pool.

The paper's experiments execute one coordinated-recovery episode at a
time; a deployed system serves many overlapping action instances.  The
:class:`WorkloadDriver` turns a :class:`~repro.runtime.system.
DistributedCASystem` into exactly that:

* a **shared partition pool** — each pool partition runs a long-lived
  worker program that serves one role of one instance at a time;
* **per-instance placement** — each admitted job is placed on the first
  free workers (deterministic natural order) and given an
  *instance-scoped* role binding
  (:meth:`~repro.runtime.system.DistributedCASystem.bind_instance`), so
  instances of the *same* action definition overlap freely on disjoint
  worker subsets; every participant executes
  ``perform_action(..., instance=key)`` with the driver-allocated key, so
  entry barriers, LEi records, resolution and signalling all coordinate
  per ``(action, instance)``;
* an :class:`~repro.workload.admission.AdmissionController` bounding
  in-flight instances with a FIFO queue and drop/retry backpressure;
* **measurement** — per-instance latency (arrival → conclusion of the
  last participant) into mergeable
  :class:`~repro.analysis.histograms.LatencyHistogram` buckets, queueing
  delay, throughput, and observed concurrency (max and time-weighted
  mean).

Everything runs in deterministic virtual time; a ``(system build, seed,
arrival process)`` triple reproduces the run byte for byte.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.histograms import LatencyHistogram
from ..core.state import thread_order_key
from ..runtime.system import DistributedCASystem, SystemConfigurationError
from ..simkernel.channels import Mailbox
from ..simkernel.events import Event
from ..simkernel.rng import SeededStreams
from .actions import ActionMix, JobProfile, TrafficActionSpec
from .admission import DISPATCH, DROP, QUEUE, RETRY, AdmissionController
from .arrivals import ArrivalProcess

#: Sentinel delivered to a worker inbox to end its program.
_STOP = object()


@dataclass(slots=True)
class Job:
    """One submitted action instance, from arrival to conclusion."""

    index: int
    action: str
    width: int
    roles: Tuple[str, ...]
    instance: str
    arrived_at: float
    profile: JobProfile
    completion: Event
    #: Number of admission offers so far (first offer sets it to 1).
    attempts: int = 0
    dispatched_at: Optional[float] = None
    completed_at: Optional[float] = None
    outcome: str = "pending"          # "completed" | "dropped"
    #: Final per-role statuses (ActionStatus values), in conclusion order.
    statuses: List[str] = field(default_factory=list)
    workers: Tuple[str, ...] = ()
    pending_roles: int = 0

    @property
    def latency(self) -> Optional[float]:
        """Arrival → conclusion of the last participant (None if dropped)."""
        if self.outcome != "completed" or self.completed_at is None:
            return None
        return self.completed_at - self.arrived_at

    @property
    def wait(self) -> Optional[float]:
        """Arrival → dispatch (time spent in admission)."""
        if self.dispatched_at is None:
            return None
        return self.dispatched_at - self.arrived_at


@dataclass(slots=True)
class WorkloadReport:
    """Aggregated result of one driver run (all fields JSON-friendly)."""

    jobs: int
    completed: int
    dropped: int
    total_time: float
    throughput: float
    max_concurrency: int
    mean_concurrency: float
    latency: Dict[str, Any]
    wait: Dict[str, Any]
    latency_histogram: Dict[str, Any]
    latency_by_action: Dict[str, Dict[str, Any]]
    outcome_counts: Dict[str, int]
    admission: Dict[str, int]
    admission_config: Dict[str, Any]
    arrivals: str
    metrics: Dict[str, Any]

    def to_row(self) -> Dict[str, Any]:
        """Flatten the headline numbers into one benchmark row."""
        row: Dict[str, Any] = {
            "jobs": self.jobs,
            "completed": self.completed,
            "dropped": self.dropped,
            "total_time": self.total_time,
            "throughput": self.throughput,
            "max_concurrency": self.max_concurrency,
            "mean_concurrency": self.mean_concurrency,
        }
        for name, value in self.latency.items():
            row[f"latency_{name}"] = value
        for name, value in self.wait.items():
            row[f"wait_{name}"] = value
        row["outcomes"] = dict(self.outcome_counts)
        row["admission"] = dict(self.admission)
        return row


class WorkloadDriver:
    """Drives seeded traffic through a shared pool of partitions."""

    def __init__(self, system: DistributedCASystem,
                 pool: Optional[Sequence[str]] = None,
                 admission: Optional[AdmissionController] = None,
                 seed: int = 0,
                 release_instances: bool = True) -> None:
        self.system = system
        self.kernel = system.kernel
        self.admission = admission or AdmissionController()
        self.streams = SeededStreams(seed)
        self.seed = int(seed)
        self.release_instances = release_instances
        self.mix = ActionMix()
        #: The system's observation sink (``repro.obs``), or ``None`` when
        #: observability is off — every emission below is behind one check.
        self._obs = system.observation
        if self._obs is not None:
            self._obs.register_driver(self)

        pool_names = list(pool) if pool is not None \
            else sorted(system.partitions, key=thread_order_key)
        if not pool_names:
            raise SystemConfigurationError("the worker pool is empty")
        for name in pool_names:
            if name not in system.partitions:
                raise SystemConfigurationError(
                    f"pool names unknown thread {name!r}")
        self.pool: Tuple[str, ...] = tuple(
            sorted(pool_names, key=thread_order_key))
        self._free: List[str] = list(self.pool)
        self._inboxes: Dict[str, Mailbox] = {}
        for name in self.pool:
            self._inboxes[name] = Mailbox(self.kernel)
            system.spawn(name, self._make_worker(name))
        self._stopped = False

        self.jobs: List[Job] = []
        self._by_instance: Dict[str, Job] = {}
        self._outstanding = 0
        self._drained: Optional[Event] = None

        self.latency_histogram = LatencyHistogram()
        self.wait_histogram = LatencyHistogram()
        self.latency_by_action: Dict[str, LatencyHistogram] = {}
        self.outcome_counts: Dict[str, int] = {}
        self.max_concurrency = 0
        self._busy_integral = 0.0
        self._last_change = self.kernel.now
        self._arrivals_description = ""

    # ------------------------------------------------------------------
    # Workload definition
    # ------------------------------------------------------------------
    def add_action(self, spec: Union[TrafficActionSpec, str],
                   **overrides) -> TrafficActionSpec:
        """Register a spec in the system registry and the driver's mix.

        ``spec`` is either a :class:`TrafficActionSpec` instance or the
        name of a template registered with
        :data:`~repro.workload.registry.ACTIONS`; a name is resolved with
        the (validated) field ``overrides`` applied, so scenarios can say
        ``driver.add_action("Serve", width=3)``.  The action definition
        itself comes from :meth:`TrafficActionSpec.build`, which is how
        spec subclasses plug custom role bodies into the same path.
        """
        if isinstance(spec, str):
            from .registry import ACTIONS
            spec = ACTIONS.resolve(spec, **overrides)
        elif overrides:
            raise TypeError("overrides are only valid with a registered "
                            "action name, not a spec instance")
        if spec.width > len(self.pool):
            raise SystemConfigurationError(
                f"action {spec.name!r} needs {spec.width} workers but the "
                f"pool has {len(self.pool)}")
        self.system.define_action(spec.build(self))
        return self.mix.add(spec)

    def profile_for(self, instance: str) -> JobProfile:
        """The pre-drawn profile of the job running as ``instance``."""
        return self._by_instance[instance].profile

    # ------------------------------------------------------------------
    # Submission and placement
    # ------------------------------------------------------------------
    def submit(self, action: Optional[str] = None) -> Job:
        """Submit one job now; returns it (with its ``completion`` event)."""
        spec = self.mix.get(action) if action else self.mix.pick(self.streams)
        index = len(self.jobs)
        job = Job(
            index=index,
            action=spec.name,
            width=spec.width,
            roles=spec.role_names,
            instance=f"{spec.name}@{index:06d}",
            arrived_at=self.kernel.now,
            profile=spec.draw_profile(self.streams, index),
            completion=self.kernel.event(),
        )
        self.jobs.append(job)
        self._by_instance[job.instance] = job
        self._outstanding += 1
        if self._obs is not None:
            self._obs.job_submitted(job)
        self._offer(job)
        return job

    def _offer(self, job: Job) -> None:
        decision = self.admission.offer(
            job, placeable=len(self._free) >= job.width)
        obs = self._obs
        if decision == DISPATCH:
            self._dispatch(job)
        elif decision == RETRY:
            if obs is not None:
                obs.admission_retry(job)
            retry = self.kernel.timeout(self.admission.retry_delay)
            retry.callbacks.append(lambda _event, j=job: self._offer(j))
        elif decision == DROP:
            if obs is not None:
                obs.admission_dropped(job)
            self._finalize_drop(job)
        else:
            assert decision == QUEUE  # parked inside the controller
            if obs is not None:
                obs.admission_queued(job, len(self.admission.queue))

    def _dispatch(self, job: Job) -> None:
        workers = self._free[:job.width]
        del self._free[:job.width]
        binding = dict(zip(job.roles, workers))
        self.system.bind_instance(job.instance, job.action, binding)
        job.workers = tuple(workers)
        job.dispatched_at = self.kernel.now
        job.pending_roles = job.width
        self._note_concurrency(+1)
        self.admission.job_dispatched(job)
        if self._obs is not None:
            self._obs.job_dispatched(job, self.admission.in_flight)
        for role, worker in binding.items():
            self._inboxes[worker].deliver((job, role))

    def _pump(self) -> None:
        """Dispatch queued jobs while slots and workers allow."""
        while True:
            job = self.admission.pop_placeable(
                lambda j: len(self._free) >= j.width)
            if job is None:
                return
            self._dispatch(job)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _make_worker(self, name: str):
        def worker(ctx):
            inbox = self._inboxes[name]
            served = 0
            while True:
                item = yield inbox.get()
                if item is _STOP:
                    return served
                job, role = item
                report = yield from ctx.perform_action(
                    job.action, role, instance=job.instance)
                served += 1
                self._role_concluded(job, report)
        return worker

    def _role_concluded(self, job: Job, report) -> None:
        status = report.status.value
        job.statuses.append(status)
        self.outcome_counts[status] = self.outcome_counts.get(status, 0) + 1
        job.pending_roles -= 1
        if job.pending_roles > 0:
            return
        job.completed_at = self.kernel.now
        job.outcome = "completed"
        self._note_concurrency(-1)
        self.latency_histogram.record(job.latency or 0.0)
        self.wait_histogram.record(job.wait or 0.0)
        per_action = self.latency_by_action.setdefault(job.action,
                                                       LatencyHistogram())
        per_action.record(job.latency or 0.0)
        # The free list is kept sorted at all times (placement takes its
        # prefix), so returning workers is two ordered insertions, not a
        # rebuild-and-sort of the whole pool.  thread_order_key is a total
        # order, so the result is identical to re-sorting.
        for worker in job.workers:
            insort(self._free, worker, key=thread_order_key)
        self.admission.job_finished(job)
        if self._obs is not None:
            self._obs.job_completed(job, "completed", job.latency or 0.0)
        if self.release_instances:
            self.system.release_instance(job.instance)
        # The instance lookup is only needed between dispatch and the last
        # conclusion (profile_for from the role bodies); prune it so a
        # long soak does not grow by one entry per instance ever served.
        del self._by_instance[job.instance]
        job.completion.succeed(job)
        self._job_settled()
        self._pump()

    def _finalize_drop(self, job: Job) -> None:
        job.outcome = "dropped"
        job.completed_at = self.kernel.now
        if self._obs is not None:
            self._obs.job_dropped(job)
        del self._by_instance[job.instance]
        job.completion.succeed(job)
        self._job_settled()

    def _job_settled(self) -> None:
        self._outstanding -= 1
        if self._outstanding == 0 and self._drained is not None and \
                not self._drained.triggered:
            self._drained.succeed()

    def _note_concurrency(self, delta: int) -> None:
        self._flush_concurrency()
        if delta > 0:
            self.max_concurrency = max(self.max_concurrency,
                                       self.admission.in_flight + delta)

    def _flush_concurrency(self) -> None:
        """Accumulate the busy-time integral up to the current instant."""
        now = self.kernel.now
        self._busy_integral += self.admission.in_flight * \
            (now - self._last_change)
        self._last_change = now

    # ------------------------------------------------------------------
    # Orchestration
    # ------------------------------------------------------------------
    def run(self, arrivals: ArrivalProcess,
            stop_workers: bool = True) -> WorkloadReport:
        """Run ``arrivals`` to completion and return the aggregated report.

        Spawns the arrival processes, lets the simulation drain every
        submitted job (completed or dropped), then — unless
        ``stop_workers=False`` — retires the worker programs so
        ``system.run_to_completion`` semantics and the explorer's
        quiescence checks hold afterwards.
        """
        self._arrivals_description = arrivals.describe()
        sources = [self.kernel.process(generator, name=f"arrivals:{i}")
                   for i, generator in enumerate(arrivals.processes(self))]
        self.kernel.run(until=self.kernel.all_of(sources))
        while self._outstanding:
            self._drained = self.kernel.event()
            self.kernel.run(until=self._drained)
            self._drained = None
        if stop_workers:
            self.stop_workers()
            self.kernel.run()
        return self.report()

    def stop_workers(self) -> None:
        """Deliver the stop sentinel to every worker inbox (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        for name in self.pool:
            self._inboxes[name].deliver(_STOP)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> WorkloadReport:
        """Aggregate the run so far into a :class:`WorkloadReport`."""
        # Flush the busy integral so a mid-run report counts the interval
        # since the last dispatch/conclusion, not just completed intervals.
        self._flush_concurrency()
        completed = sum(1 for job in self.jobs if job.outcome == "completed")
        dropped = sum(1 for job in self.jobs if job.outcome == "dropped")
        total_time = self.kernel.now
        elapsed = total_time - (self.jobs[0].arrived_at if self.jobs else 0.0)
        return WorkloadReport(
            jobs=len(self.jobs),
            completed=completed,
            dropped=dropped,
            total_time=total_time,
            throughput=(completed / elapsed if elapsed > 0 else 0.0),
            max_concurrency=self.max_concurrency,
            mean_concurrency=(self._busy_integral / elapsed
                              if elapsed > 0 else 0.0),
            latency=self.latency_histogram.summary(),
            wait=self.wait_histogram.summary(),
            latency_histogram=self.latency_histogram.snapshot(),
            latency_by_action={name: histogram.summary()
                               for name, histogram
                               in sorted(self.latency_by_action.items())},
            outcome_counts=dict(sorted(self.outcome_counts.items())),
            admission=self.admission.stats.snapshot(),
            admission_config=self.admission.describe(),
            arrivals=self._arrivals_description,
            metrics=self.system.metrics.snapshot(),
        )

    def telemetry_snapshot(self) -> Dict[str, Any]:
        """The run's mergeable telemetry as one plain, picklable dict.

        Everything a shard of a :class:`~repro.workload.sharding.
        ShardedPool` ships back to the orchestrating process: scalar
        counters plus :meth:`~repro.analysis.histograms.LatencyHistogram.
        snapshot` payloads for the latency and wait histograms — no live
        objects, so the value crosses process boundaries and merges
        identically wherever the shard ran.
        """
        report = self.report()
        return {
            "jobs": report.jobs,
            "completed": report.completed,
            "dropped": report.dropped,
            "total_time": report.total_time,
            "throughput": report.throughput,
            "max_concurrency": report.max_concurrency,
            "mean_concurrency": report.mean_concurrency,
            "latency": report.latency,
            "wait": report.wait,
            "latency_histogram": report.latency_histogram,
            "wait_histogram": self.wait_histogram.snapshot(),
            "admission": report.admission,
            "outcome_counts": report.outcome_counts,
        }

    def __repr__(self) -> str:
        return (f"<WorkloadDriver pool={len(self.pool)} "
                f"jobs={len(self.jobs)} in_flight={self.admission.in_flight}>")
