"""Workload scenarios: the capacity curve and the mixed-traffic soak.

Two scenario runners (module-level and picklable, so the engine's
process-pool sweeps can ship them to workers):

* :func:`run_capacity_point` — one offered-load point of a capacity sweep:
  open-loop Poisson traffic through a fixed partition pool, reporting
  throughput, latency percentiles and observed concurrency.  Sweeping the
  load and feeding the rows to :func:`saturation_knee` locates the knee of
  the curve — the highest load the pool still serves at its offered rate.
* :func:`run_mixed_traffic` — a heterogeneous action mix (clean, faulty
  and always-raising definitions of different widths) under seeded
  protocol-message delay noise, with the fault-space explorer's
  :class:`~repro.explore.monitor.InvariantMonitor` attached; the row
  reports any oracle violations (agreement, exactly-one-outcome,
  no-stranded-thread, abortion-atomic) observed across the overlapping
  instances.

Both runners are pure functions of their parameters (all stochastic draws
come from the seed), so sequential and parallel sweeps are byte-identical.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence

from ..explore.monitor import InvariantMonitor
from ..net.faults import FaultPlan
from ..net.latency import ConstantLatency
from ..runtime.config import RuntimeConfig
from ..runtime.system import DistributedCASystem
from ..simkernel.rng import SeededStreams
from .admission import AdmissionController
from .arrivals import OpenLoopPoisson
from .driver import WorkloadDriver, WorkloadReport
from .registry import ACTIONS

#: Default instance count per sweep point (the acceptance floor is 200).
DEFAULT_INSTANCES = 200


def _build_pool_system(pool_size: int, t_msg: float, t_resolution: float,
                       algorithm: str,
                       faults: Optional[FaultPlan] = None
                       ) -> DistributedCASystem:
    system = DistributedCASystem(
        RuntimeConfig(algorithm=algorithm, resolution_time=t_resolution),
        latency=ConstantLatency(t_msg), faults=faults)
    system.add_threads([f"W{i:02d}" for i in range(1, pool_size + 1)])
    return system


def _row_from_report(report: WorkloadReport) -> Dict[str, Any]:
    row = report.to_row()
    # The full metrics/event log stays out of benchmark rows; keep the
    # mergeable histogram so sweep rows can be aggregated downstream.
    row["latency_histogram"] = report.latency_histogram
    row["latency_by_action"] = report.latency_by_action
    return row


# ----------------------------------------------------------------------
# Capacity: offered-load sweep over one homogeneous action
# ----------------------------------------------------------------------
def run_capacity_point(offered_load: float,
                       n_instances: int = DEFAULT_INSTANCES,
                       pool_size: int = 8, width: int = 2,
                       mean_service: float = 1.0,
                       raise_probability: float = 0.1,
                       seed: int = 2026,
                       t_msg: float = 0.02, t_resolution: float = 0.05,
                       max_in_flight: Optional[int] = None,
                       queue_capacity: int = 32, policy: str = "drop",
                       algorithm: str = "ours") -> Dict[str, Any]:
    """One capacity-curve point: Poisson arrivals at ``offered_load``.

    ``pool_size`` workers serve ``n_instances`` instances of one
    ``width``-role action; a fraction ``raise_probability`` of instances
    raises and recovers, so the curve includes coordinated-recovery cost.
    The nominal service capacity is ``pool_size / width / mean_service``
    instances per time unit; loads beyond it saturate the pool and the
    admission queue, which shows up as rising percentiles and (past the
    queue) drops.
    """
    system = _build_pool_system(pool_size, t_msg, t_resolution, algorithm)
    driver = WorkloadDriver(
        system, seed=seed,
        admission=AdmissionController(max_in_flight=max_in_flight,
                                      queue_capacity=queue_capacity,
                                      policy=policy))
    driver.add_action("Serve", width=width, mean_service=mean_service,
                      raise_probability=raise_probability)
    report = driver.run(OpenLoopPoisson(rate=offered_load, count=n_instances))

    row: Dict[str, Any] = {"offered_load": offered_load,
                           "pool_size": pool_size, "width": width,
                           "capacity_nominal": pool_size / width / mean_service}
    row.update(_row_from_report(report))
    row["protocol_messages"] = system.network.stats.protocol_messages()
    row["resolutions"] = system.metrics.resolutions
    return row


def saturation_knee(rows: Sequence[Mapping[str, Any]],
                    tolerance: float = 0.9) -> Dict[str, Any]:
    """Locate the saturation knee of a capacity sweep.

    A point *keeps up* when its measured throughput is at least
    ``tolerance`` × its offered load (completed instances per time unit;
    drops and queueing both erode it).  The knee is the last keeping-up
    load *before the first saturated one*, so every load beyond the knee
    is saturated even on a noisy, non-monotone curve (a point that
    happens to keep up again beyond the first failure does not move the
    knee outward).

    The ``verdict`` field says how to read the result:

    * ``"knee"`` — the sweep bracketed the capacity: at least one load
      keeps up and at least one later load saturates.
      ``knee_offered_load`` is the measured knee.
    * ``"never_saturated"`` — every load keeps up (including a
      single-row sweep whose one point keeps up).
      ``knee_offered_load`` is the highest load tried: a **lower
      bound** on capacity, not a measured knee; sweep higher loads to
      find it.
    * ``"all_saturated"`` — no load keeps up (including a single-row
      sweep whose one point is saturated).  ``knee_offered_load`` is
      ``None``: capacity lies below the lowest load tried; sweep lower
      loads to find it.
    """
    if not rows:
        raise ValueError("need at least one capacity row")
    ordered = sorted(rows, key=lambda r: r["offered_load"])
    knee = None
    for row in ordered:
        if row["throughput"] < tolerance * row["offered_load"]:
            break
        knee = row
    saturated = [row["offered_load"] for row in ordered
                 if knee is None or row["offered_load"] > knee["offered_load"]]
    if knee is None:
        verdict = "all_saturated"
    elif saturated:
        verdict = "knee"
    else:
        verdict = "never_saturated"
    return {
        "tolerance": tolerance,
        "verdict": verdict,
        "knee_offered_load": None if knee is None else knee["offered_load"],
        "knee_throughput": None if knee is None else knee["throughput"],
        "knee_latency_p99": None if knee is None else knee["latency_p99"],
        "saturated_loads": saturated,
    }


# ----------------------------------------------------------------------
# Mixed traffic: heterogeneous mix + fault noise + invariant oracles
# ----------------------------------------------------------------------
#: The default heterogeneous mix: a fast clean action, a wide faulty one
#: and a narrow always-raising one, so resolution and signalling overlap
#: with clean exits on the shared pool.  The specs themselves are the
#: registered stock templates of :mod:`repro.workload.registry`; the mix
#: order (Ping, Crunch, Flaky) feeds the weighted ``"mix"`` sampling and
#: must stay stable.
DEFAULT_MIX = tuple(ACTIONS.get(name)
                    for name in ("Ping", "Crunch", "Flaky"))


def _noise_plan(seed: int, pool_size: int, n_directives: int,
                max_extra: float) -> FaultPlan:
    """A delivery-preserving fault plan: seeded protocol-message delays.

    Only ``delay_type`` directives are drawn, so Assumptions 1 and 2 hold
    and the oracles may demand full liveness.
    """
    plan = FaultPlan(streams=SeededStreams(seed))
    stream = SeededStreams(seed).stream("noise")
    workers = [f"W{i:02d}" for i in range(1, pool_size + 1)]
    types = ("ExceptionMessage", "SuspendedMessage", "CommitMessage",
             "ToBeSignalledMessage")
    for _ in range(n_directives):
        source = stream.choice(workers)
        destination = stream.choice([w for w in workers if w != source])
        plan.delay_message_type(source, destination, stream.choice(types),
                                round(stream.uniform(0.05, max_extra), 3))
    return plan


def run_mixed_traffic(seed: int = 2026,
                      n_instances: int = DEFAULT_INSTANCES,
                      pool_size: int = 8, offered_load: float = 2.0,
                      noise_directives: int = 6, noise_max_extra: float = 0.4,
                      t_msg: float = 0.02, t_resolution: float = 0.05,
                      max_in_flight: Optional[int] = None,
                      queue_capacity: int = 64, policy: str = "retry",
                      algorithm: str = "ours") -> Dict[str, Any]:
    """One mixed-traffic soak run, checked against the invariant oracles.

    Heterogeneous actions overlap on one pool while seeded
    (delivery-preserving) delay noise perturbs the protocol messages; the
    explorer's monitor collects every resolution delivery and conclusion
    and the row carries the oracle verdict — ``violations`` must be empty.
    """
    faults = _noise_plan(seed, pool_size, noise_directives, noise_max_extra)
    system = _build_pool_system(pool_size, t_msg, t_resolution, algorithm,
                                faults=faults)
    monitor = InvariantMonitor(system)
    driver = WorkloadDriver(
        system, seed=seed,
        admission=AdmissionController(max_in_flight=max_in_flight,
                                      queue_capacity=queue_capacity,
                                      policy=policy))
    for spec in DEFAULT_MIX:
        driver.add_action(spec.name)
    report = driver.run(OpenLoopPoisson(rate=offered_load,
                                        count=n_instances))
    violations = monitor.check(
        require_liveness=faults.preserves_delivery())

    row: Dict[str, Any] = {
        "seed": seed,
        "pool_size": pool_size,
        "offered_load": offered_load,
        "noise_directives": [d.to_dict() for d in faults.directives],
        "violations": [str(v) for v in violations],
        "n_violations": len(violations),
    }
    row.update(_row_from_report(report))
    row["protocol_messages"] = system.network.stats.protocol_messages()
    row["resolutions"] = system.metrics.resolutions
    row["faults_delayed"] = faults.stats.delayed
    return row
