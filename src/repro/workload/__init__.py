"""repro.workload — traffic generation and capacity measurement.

The paper measures one coordinated-recovery episode at a time; this
subsystem drives *many overlapping CA-action instances* through one
simulated system, the way a deployed service would see them:

* :mod:`~repro.workload.arrivals` — seeded arrival processes (open-loop
  Poisson, deterministic trace replay, closed-loop clients);
* :mod:`~repro.workload.admission` — admission control (max-in-flight,
  bounded FIFO queue, drop/retry backpressure);
* :mod:`~repro.workload.actions` — parameterised traffic action
  definitions and the weighted action mix;
* :mod:`~repro.workload.registry` — the registered-template registry
  (:data:`ACTIONS`): actions resolved by name with validated field
  overrides, the plugin seam custom specs register through;
* :mod:`~repro.workload.transactional` — the transactional workload:
  instances locking and incrementing shared atomic counters under
  strict 2PL, with abort/deadlock recovery and the no-lost-update /
  locks-released oracles;
* :mod:`~repro.workload.driver` — the :class:`WorkloadDriver`, which
  places each admitted instance on free workers of a shared partition
  pool under an instance-scoped role binding and measures per-instance
  latency into mergeable log-bucket histograms;
* :mod:`~repro.workload.scenarios` — the ``capacity`` (offered-load sweep
  → throughput/latency curve and saturation knee) and ``mixed_traffic``
  (heterogeneous mix + fault noise, checked against the invariant
  oracles) engine scenarios;
* :mod:`~repro.workload.sharding` — the :class:`ShardedPool`, which
  partitions a capacity workload across N independent shards (each its
  own kernel + system + driver, optionally in worker processes) under
  deterministic :class:`ShardPlan` seeds and per-shard admission leases
  from a :class:`GlobalAdmissionController`, and merges the per-shard
  telemetry exactly.
"""

from .actions import ActionMix, JobProfile, TrafficActionSpec, \
    build_traffic_action
from .admission import AdmissionController, AdmissionStats
from .registry import ACTIONS, STOCK_ACTIONS, TrafficActionRegistry
from .arrivals import (
    ArrivalProcess,
    ClosedLoopClients,
    OpenLoopPoisson,
    TraceReplay,
)
from .driver import Job, WorkloadDriver, WorkloadReport
from .sharding import (
    GlobalAdmissionController,
    ShardPlan,
    ShardSpec,
    ShardedPool,
    merge_shard_snapshots,
    merged_snapshot_digest,
    run_scale_point,
    shard_seed,
)

__all__ = [
    "ACTIONS",
    "ActionMix",
    "AdmissionController",
    "AdmissionStats",
    "STOCK_ACTIONS",
    "TrafficActionRegistry",
    "ArrivalProcess",
    "ClosedLoopClients",
    "GlobalAdmissionController",
    "Job",
    "JobProfile",
    "OpenLoopPoisson",
    "ShardPlan",
    "ShardSpec",
    "ShardedPool",
    "TraceReplay",
    "TrafficActionSpec",
    "WorkloadDriver",
    "WorkloadReport",
    "build_traffic_action",
    "merge_shard_snapshots",
    "merged_snapshot_digest",
    "run_scale_point",
    "shard_seed",
]
