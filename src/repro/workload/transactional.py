"""Transactional traffic: CA-action instances over shared atomic objects.

The paper's CA actions access *external atomic objects* under a
transaction that commits on success and rolls back on abort (Figure 1);
until now the workload layer never exercised that machinery under
concurrency.  This module registers a :class:`TrafficActionSpec`
subclass — the first spec plugged through the registry's custom
:meth:`~repro.workload.actions.TrafficActionSpec.build` seam — whose
role bodies drive :mod:`repro.objects` for real:

* every instance draws ``width`` *distinct* accounts from a shared set
  of ``n_accounts`` atomic counters; each role exclusively locks its
  account (strict 2PL through the instance's transaction), reads the
  counter, works, and writes back ``value + 1``;
* a ``raise_probability`` fraction of instances raises the action's
  fault mid-flight; the resolving handler then either completes
  (``HandlerResult.success`` → the transaction commits the increments
  made so far) or — with ``abort_probability``, or always after a
  deadlock — aborts (``HandlerResult.abort`` → the transaction rolls
  every write back and the action signals µ);
* conflicting lock orders across overlapping instances can close a
  wait-for cycle; the lock manager refuses the closing request with
  :class:`~repro.objects.locks.DeadlockError`, which the role converts
  into the dedicated deadlock fault so coordinated recovery (not a
  crash) unwinds the victim.

The oracle contract: each *committed* transaction that wrote an account
incremented it by exactly one, so at quiescence every tracked counter
must equal its initial value plus the number of committed writers
(:func:`~repro.core.oracles.check_no_lost_updates`), and no finished
transaction may still hold or await a lock
(:func:`~repro.core.oracles.check_locks_released`).
:func:`run_transactional_point` wires both into the
:class:`~repro.explore.monitor.InvariantMonitor` and reports the
verdict per row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..core.action import CAActionDefinition, RoleDefinition
from ..core.exception_graph import generate_full_graph
from ..core.exceptions import ExceptionDescriptor, internal
from ..core.handlers import HandlerMap, HandlerResult
from ..explore.monitor import InvariantMonitor
from ..objects.locks import DeadlockError, LockMode
from ..simkernel.rng import SeededStreams
from .admission import AdmissionController
from .arrivals import OpenLoopPoisson
from .actions import JobProfile, TrafficActionSpec
from .driver import WorkloadDriver
from .registry import ACTIONS
from .scenarios import DEFAULT_INSTANCES, _build_pool_system, _row_from_report


def account_name(index: int) -> str:
    """The canonical name of shared account ``index``."""
    return f"acct{index:03d}"


@dataclass(frozen=True, slots=True)
class TransactionalProfile(JobProfile):
    """Per-instance behaviour of one transactional job."""

    #: Account index each role operates on (distinct within the instance).
    accounts: Tuple[int, ...] = ()
    #: Whether the resolving handler aborts instead of completing.
    abort: bool = False


@dataclass(frozen=True, slots=True)
class TransactionalActionSpec(TrafficActionSpec):
    """A traffic action whose roles increment shared atomic counters.

    Extends :class:`TrafficActionSpec` with the shared-state knobs and
    plugs transactional role bodies in through :meth:`build` — the
    registry, driver and mix treat it exactly like any other spec.
    """

    #: Size of the shared account set instances draw from.
    n_accounts: int = 8
    #: Probability that a *raising* instance's handler aborts (backward
    #: recovery; otherwise the handler completes and the transaction
    #: commits the increments made before the fault).
    abort_probability: float = 0.5

    def __post_init__(self) -> None:
        # Explicit base call: dataclass(slots=True) recreates the class,
        # which breaks zero-argument super() in methods defined here.
        TrafficActionSpec.__post_init__(self)
        if self.n_accounts < self.width:
            raise ValueError("n_accounts must be at least width "
                             "(each role locks a distinct account)")
        if not 0.0 <= self.abort_probability <= 1.0:
            raise ValueError("abort_probability must be in [0, 1]")

    @property
    def deadlock(self) -> ExceptionDescriptor:
        """The fault a role raises when its lock request would deadlock."""
        return internal(f"{self.name}_deadlock")

    def draw_profile(self, streams: SeededStreams,
                     index: int) -> TransactionalProfile:
        """Draw job ``index``'s profile — pure in ``(seed, name, index)``."""
        stream = streams.fresh_stream(f"job:{self.name}:{index}")
        service = tuple(stream.expovariate(1.0 / self.mean_service)
                        for _ in range(self.width))
        raiser = None
        if self.raise_probability and \
                stream.random() < self.raise_probability:
            raiser = 0
        abort = raiser is not None and \
            stream.random() < self.abort_probability
        accounts = tuple(stream.sample(range(self.n_accounts), self.width))
        return TransactionalProfile(service_times=service, raiser=raiser,
                                    accounts=accounts, abort=abort)

    def build(self, driver: "WorkloadDriver") -> CAActionDefinition:
        """Role bodies locking/reading/incrementing shared accounts."""
        fault = self.fault
        deadlock_fault = self.deadlock

        def resolving_handler(ctx):
            profile = driver.profile_for(ctx.instance)
            if self.handler_time > 0:
                yield ctx.delay(self.handler_time)
            resolved = ctx.resolved_exception
            deadlocked = resolved is not None and \
                resolved.name != fault.name
            if deadlocked or profile.abort:
                return HandlerResult.abort()
            return HandlerResult.success()

        def make_body(role_index: int):
            def body(ctx):
                profile = driver.profile_for(ctx.instance)
                account = account_name(profile.accounts[role_index])
                half = profile.service_times[role_index] / 2.0
                # Pre-lock work first: roles of overlapping instances
                # then reach their lock requests at staggered times, so
                # conflicting acquisition orders genuinely interleave
                # (locking at the entry barrier would serialise whole
                # instances and no wait-for cycle could ever close).
                if half > 0:
                    yield ctx.delay(half)
                # Shared read first, then upgrade for the write: readers of
                # the same account overlap instead of serialising, and the
                # upgrade is still strict 2PL (the shared lock is never
                # released before the exclusive one is granted), so no
                # committed write can slip between the read and the write.
                # Two overlapping upgraders form a genuine deadlock — the
                # lock manager refuses the closing request and the victim
                # recovers — while reader/reader queues are granted
                # together (the mode-aware wait-for check; the old
                # mode-blind one refused them as phantom deadlocks).
                try:
                    yield ctx.transaction.lock(account, LockMode.SHARED)
                except DeadlockError:
                    ctx.raise_exception(deadlock_fault)
                value = ctx.read(account, "value")
                try:
                    yield ctx.transaction.lock(account, LockMode.EXCLUSIVE)
                except DeadlockError:
                    ctx.raise_exception(deadlock_fault)
                ctx.write(account, "value", value + 1)
                if profile.raiser == role_index:
                    ctx.raise_exception(fault)
                if half > 0:
                    yield ctx.delay(half)
            return body

        roles = [RoleDefinition(role, make_body(index),
                                HandlerMap(default_handler=resolving_handler))
                 for index, role in enumerate(self.role_names)]
        return CAActionDefinition(
            self.name, roles, internal_exceptions=[fault, deadlock_fault],
            graph=generate_full_graph([fault, deadlock_fault],
                                      action_name=self.name))


#: The stock transactional template (registered like any other action).
TRANSFER = ACTIONS.register(TransactionalActionSpec(
    "Transfer", width=2, mean_service=1.0, raise_probability=0.3,
    abort_probability=0.5, n_accounts=8))


def run_transactional_point(offered_load: float,
                            n_instances: int = DEFAULT_INSTANCES,
                            pool_size: int = 8, width: int = 2,
                            n_accounts: int = 8,
                            mean_service: float = 1.0,
                            raise_probability: float = 0.3,
                            abort_probability: float = 0.5,
                            seed: int = 2026,
                            t_msg: float = 0.02, t_resolution: float = 0.05,
                            max_in_flight: Optional[int] = None,
                            queue_capacity: int = 32, policy: str = "drop",
                            algorithm: str = "ours") -> Dict[str, Any]:
    """One transactional-workload point, checked by the full oracle set.

    Poisson arrivals at ``offered_load`` drive ``n_instances`` instances
    of the registered ``Transfer`` template (resolved by name with the
    point's overrides) over a ``pool_size`` pool and ``n_accounts``
    shared atomic counters.  The row carries throughput/latency like the
    capacity sweep plus the transactional outcome: per-status transaction
    counts, committed increments vs. the account totals, observed
    deadlock recoveries and the oracle verdict (``violations`` must be
    empty — including the no-lost-update and locks-released predicates).
    """
    system = _build_pool_system(pool_size, t_msg, t_resolution, algorithm)
    for index in range(n_accounts):
        system.create_object(account_name(index), {"value": 0})
    monitor = InvariantMonitor(system)
    for index in range(n_accounts):
        monitor.track_counter(account_name(index))
    driver = WorkloadDriver(
        system, seed=seed,
        admission=AdmissionController(max_in_flight=max_in_flight,
                                      queue_capacity=queue_capacity,
                                      policy=policy))
    spec = driver.add_action("Transfer", width=width,
                             mean_service=mean_service,
                             raise_probability=raise_probability,
                             abort_probability=abort_probability,
                             n_accounts=n_accounts)
    report = driver.run(OpenLoopPoisson(rate=offered_load,
                                        count=n_instances))
    violations = monitor.check(require_liveness=True)

    manager = system.transactions
    statuses: Dict[str, int] = {}
    for transaction in manager.finished:
        statuses[transaction.status.value] = \
            statuses.get(transaction.status.value, 0) + 1
    deadlock_name = spec.deadlock.name
    deadlocks = sum(
        1 for seen in monitor.resolutions.values()
        if any(name == deadlock_name for _, name in seen))

    row: Dict[str, Any] = {
        "offered_load": offered_load,
        "pool_size": pool_size,
        "width": width,
        "n_accounts": n_accounts,
        "account_total": sum(
            manager.object(account_name(i)).committed_value("value")
            for i in range(n_accounts)),
        "committed_increments": sum(
            record["committed_writers"]
            for record in monitor.counter_records()),
        "transactions": dict(sorted(statuses.items())),
        "active_transactions": len(manager.active),
        "deadlock_recoveries": deadlocks,
        "violations": [str(v) for v in violations],
        "n_violations": len(violations),
    }
    row.update(_row_from_report(report))
    row["protocol_messages"] = system.network.stats.protocol_messages()
    row["resolutions"] = system.metrics.resolutions
    return row
