"""repro — coordinated exception handling in distributed object systems.

A from-scratch Python reproduction of

    J. Xu, A. Romanovsky and B. Randell,
    "Coordinated Exception Handling in Distributed Object Systems:
     from Model to System Implementation", ICDCS 1998.

The package provides:

* :mod:`repro.core` — the CA-action exception model, exception graphs, the
  coordinated resolution algorithm, the exception-signalling algorithm and
  the baseline algorithms it is compared against;
* :mod:`repro.simkernel` — a deterministic discrete-event simulation kernel;
* :mod:`repro.net` — the message-passing substrate (nodes, FIFO links,
  latency models, fault injection);
* :mod:`repro.objects` — external atomic objects with transactions;
* :mod:`repro.runtime` — the distributed CA-action run-time system;
* :mod:`repro.productioncell` — the production-cell case study;
* :mod:`repro.analysis` — analytic bounds, run metrics and latency
  histograms;
* :mod:`repro.explore` — the systematic fault-space explorer;
* :mod:`repro.workload` — traffic generation, admission control and
  capacity measurement over a shared partition pool;
* :mod:`repro.bench` — experiment harness reproducing the paper's figures.
"""

from . import analysis, core, explore, net, objects, runtime, simkernel, \
    workload

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "explore",
    "net",
    "objects",
    "runtime",
    "simkernel",
    "workload",
    "__version__",
]
