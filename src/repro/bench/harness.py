"""Parameter-sweep harness reproducing the paper's tables and figures.

Each function returns a list of row dictionaries matching the columns of the
corresponding table in the paper, so that the benchmark suite (and the
EXPERIMENTS.md report) can print them side by side with the published
numbers.

The sweeps themselves are thin façades over the declarative scenario engine
(:mod:`repro.bench.engine`): each figure is a registered scenario, and the
functions here only assemble the figure's grid and hand it to
:func:`~repro.bench.engine.run_scenario`.  Pass ``parallel=True`` to fan a
sweep out over a process pool; the rows are identical either way.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..analysis.bounds import (
    TimingParameters,
    lemma1_completion_bound,
    messages_all_exceptions,
    messages_single_exception,
    romanovsky96_messages,
    signalling_messages_simple,
    signalling_messages_worst_case,
    theorem2_worst_case_messages,
)
from ..workload.scenarios import saturation_knee
from .engine import (
    CAPACITY_GRID,
    CHURN_GRID,
    EXPLORE_CHUNK_SIZE,
    EXPLORE_SEED,
    MIXED_TRAFFIC_GRID,
    FIGURE9_BASELINE,
    FIGURE9_GRIDS,
    GRAPH_MICROBENCH_GRID,
    LARGE_N_GRID,
    FIGURE12_FIXED_TMMAX,
    FIGURE12_FIXED_TRES,
    FIGURE12_TMMAX_GRID,
    FIGURE12_TRES_GRID,
    WIDE_GRAPH_GRID,
    figure9_grid,
    run_scenario,
)
from .scenarios import (
    EXPERIMENT1_ITERATIONS,
    run_complexity_scenario,
    run_experiment1,
)

#: Parameter grids published in Figure 9 of the paper (legacy aliases of
#: the engine's grids, kept because the benchmark suite imports them).
FIGURE9_TMMAX_VALUES = list(FIGURE9_GRIDS["t_msg"])
FIGURE9_TABO_VALUES = list(FIGURE9_GRIDS["t_abort"])
FIGURE9_TRESO_VALUES = list(FIGURE9_GRIDS["t_resolution"])

#: Parameter grids published in Figure 12.
FIGURE12_TMMAX_VALUES = list(FIGURE12_TMMAX_GRID)
FIGURE12_TRES_VALUES = list(FIGURE12_TRES_GRID)


# ----------------------------------------------------------------------
# Figures 9 and 10: sensitivity of the total execution time
# ----------------------------------------------------------------------
def sweep_figure9(varying: str,
                  values: Optional[Sequence[float]] = None,
                  iterations: int = EXPERIMENT1_ITERATIONS,
                  algorithm: str = "ours",
                  parallel: bool = False) -> List[Dict[str, float]]:
    """Sweep one of the three parameters of the Figure 9 experiment.

    ``varying`` is ``"t_msg"`` (message passing), ``"t_abort"`` (abortion)
    or ``"t_resolution"`` (resolution).  The other two parameters stay at
    the baseline values.  Returns rows with the swept value and the total
    execution time, mirroring the two columns of the corresponding Figure 9
    sub-table.
    """
    points = figure9_grid(varying, values, iterations, algorithm)
    return run_scenario("figure9", points=points, parallel=parallel)


def figure10_series(iterations: int = EXPERIMENT1_ITERATIONS,
                    algorithm: str = "ours",
                    parallel: bool = False) -> Dict[str, List[Dict[str, float]]]:
    """All three Figure 10 series (total time vs each swept parameter)."""
    return {
        "varying_tmmax": sweep_figure9("t_msg", iterations=iterations,
                                       algorithm=algorithm, parallel=parallel),
        "varying_tabo": sweep_figure9("t_abort", iterations=iterations,
                                      algorithm=algorithm, parallel=parallel),
        "varying_treso": sweep_figure9("t_resolution", iterations=iterations,
                                       algorithm=algorithm, parallel=parallel),
    }


# ----------------------------------------------------------------------
# Figures 12 and 13: comparison with the Campbell–Randell algorithm
# ----------------------------------------------------------------------
def sweep_figure12_tmmax(values: Optional[Sequence[float]] = None,
                         t_resolution: float = FIGURE12_FIXED_TRES,
                         iterations: int = 1,
                         parallel: bool = False) -> List[Dict[str, float]]:
    """Figure 12 left half: vary ``Tmmax`` at fixed ``Tres``."""
    grid = list(values) if values is not None else FIGURE12_TMMAX_VALUES
    points = [{"t_msg": t_msg, "t_resolution": t_resolution,
               "iterations": iterations} for t_msg in grid]
    return run_scenario("figure12_tmmax", points=points, parallel=parallel)


def sweep_figure12_tres(values: Optional[Sequence[float]] = None,
                        t_msg: float = FIGURE12_FIXED_TMMAX,
                        iterations: int = 1,
                        parallel: bool = False) -> List[Dict[str, float]]:
    """Figure 12 right half: vary ``Tres`` at fixed ``Tmmax``."""
    grid = list(values) if values is not None else FIGURE12_TRES_VALUES
    points = [{"t_res": t_res, "t_msg": t_msg, "iterations": iterations}
              for t_res in grid]
    return run_scenario("figure12_tres", points=points, parallel=parallel)


def figure13_series(iterations: int = 1,
                    parallel: bool = False) -> Dict[str, List[Dict[str, float]]]:
    """Both Figure 13 plots: (a) varying Tmmax, (b) varying Tres."""
    return {
        "varying_tmmax": sweep_figure12_tmmax(iterations=iterations,
                                              parallel=parallel),
        "varying_tres": sweep_figure12_tres(iterations=iterations,
                                            parallel=parallel),
    }


# ----------------------------------------------------------------------
# New workloads: large-N complexity sweep and multi-action churn
# ----------------------------------------------------------------------
def large_n_table(thread_counts: Optional[Iterable[int]] = None,
                  algorithm: str = "ours",
                  parallel: bool = False) -> List[Dict[str, float]]:
    """Message-complexity sweep far beyond the paper's N ≤ 6 (up to 64)."""
    if thread_counts is None:
        thread_counts = [point["n_threads"] for point in LARGE_N_GRID]
    points = [{"n_threads": n, "algorithm": algorithm} for n in thread_counts]
    return run_scenario("large_n", points=points, parallel=parallel)


def explore_table(budget: int = 200, seed: int = EXPLORE_SEED,
                  target: str = "nested_abort",
                  chunk_size: int = EXPLORE_CHUNK_SIZE,
                  parallel: bool = False) -> List[Dict[str, object]]:
    """Fault-space exploration sweep: one row per chunk of seeded plans.

    Every row reports the chunk's case count, failure count, violations
    and a digest over its canonical traces; a clean sweep has
    ``failures == 0`` everywhere.  The sweep is a pure function of
    ``(target, seed, budget)``, so the parallel and sequential paths
    return byte-identical rows.
    """
    points = [{"target": target, "seed": seed, "start": start,
               "stop": min(start + chunk_size, budget)}
              for start in range(0, budget, chunk_size)]
    return run_scenario("explore", points=points, parallel=parallel)


def churn_table(group_counts: Optional[Iterable[int]] = None,
                iterations: int = 2,
                parallel: bool = False) -> List[Dict[str, float]]:
    """Throughput of many unrelated concurrent actions on one network."""
    if group_counts is None:
        group_counts = [point["n_groups"] for point in CHURN_GRID]
    points = [{"n_groups": n, "iterations": iterations}
              for n in group_counts]
    return run_scenario("churn", points=points, parallel=parallel)


def capacity_table(offered_loads: Optional[Iterable[float]] = None,
                   n_instances: int = 200,
                   parallel: bool = False,
                   **options) -> List[Dict[str, object]]:
    """Capacity curve: one row per offered load over the shared pool.

    Feed the rows to :func:`repro.workload.scenarios.saturation_knee` to
    locate the saturation knee (the baseline writer does, committing the
    verdict next to the curve in ``BENCH_workload.json``).
    """
    if offered_loads is None:
        offered_loads = [point["offered_load"] for point in CAPACITY_GRID]
    points = [{"offered_load": load, "n_instances": n_instances, **options}
              for load in offered_loads]
    return run_scenario("capacity", points=points, parallel=parallel)


def mixed_traffic_table(seeds: Optional[Iterable[int]] = None,
                        n_instances: int = 200,
                        parallel: bool = False,
                        **options) -> List[Dict[str, object]]:
    """Mixed-traffic soak rows: heterogeneous mix + noise, oracle-checked.

    Every row's ``violations`` list must be empty; a non-empty list is a
    protocol bug surfaced by concurrent-instance traffic.
    """
    if seeds is None:
        seeds = [point["seed"] for point in MIXED_TRAFFIC_GRID]
    points = [{"seed": seed, "n_instances": n_instances, **options}
              for seed in seeds]
    return run_scenario("mixed_traffic", points=points, parallel=parallel)


def wide_graph_table(thread_counts: Optional[Iterable[int]] = None,
                     n_primitives: int = 12, max_level: int = 3,
                     iterations: int = 2,
                     parallel: bool = False) -> List[Dict[str, object]]:
    """Resolution-heavy all-raise storms over a wide truncated graph."""
    if thread_counts is None:
        thread_counts = [point["n_threads"] for point in WIDE_GRAPH_GRID]
    points = [{"n_threads": n, "n_primitives": n_primitives,
               "max_level": max_level, "iterations": iterations}
              for n in thread_counts]
    return run_scenario("wide_graph", points=points, parallel=parallel)


def graph_microbench_table(points: Optional[Iterable[Dict[str, int]]] = None,
                           parallel: bool = False) -> List[Dict[str, object]]:
    """Compiled-graph resolution microbenchmark rows (wall-clock timings)."""
    if points is None:
        points = [dict(point) for point in GRAPH_MICROBENCH_GRID]
    return run_scenario("graph_microbench", points=list(points),
                        parallel=parallel)


# ----------------------------------------------------------------------
# Message-complexity tables (Section 3.2.3 / Theorem 2 / Section 3.4)
# ----------------------------------------------------------------------
def message_complexity_table(thread_counts: Iterable[int] = (2, 3, 4, 5, 6),
                             algorithm: str = "ours") -> List[Dict[str, float]]:
    """Measured vs analytic resolution-message counts.

    For each N: one-exception and all-N-exception runs, compared with the
    paper's ``(N+1)(N−1)`` enumeration and Theorem 2's ``n_max(N²−1)``
    worst case.
    """
    rows = []
    for n in thread_counts:
        single = run_complexity_scenario(n, 1, algorithm=algorithm)
        all_exc = run_complexity_scenario(n, n, algorithm=algorithm)
        rows.append({
            "n_threads": n,
            "measured_single": single["resolution_messages"],
            "measured_all": all_exc["resolution_messages"],
            "paper_single": messages_single_exception(n),
            "paper_all": messages_all_exceptions(n),
            "theorem2_bound": theorem2_worst_case_messages(n, 1),
            "signalling_single": single["signalling_messages"],
            "signalling_paper": signalling_messages_simple(n),
            "resolution_calls": all_exc["resolution_calls"],
        })
    return rows


def algorithm_comparison_table(thread_counts: Iterable[int] = (3, 4, 5)) \
        -> List[Dict[str, float]]:
    """All-raise message counts for the three algorithms, per N."""
    rows = []
    for n in thread_counts:
        ours = run_complexity_scenario(n, n, algorithm="ours")
        cr = run_complexity_scenario(n, n, algorithm="campbell-randell")
        r96 = run_complexity_scenario(n, n, algorithm="romanovsky96")
        rows.append({
            "n_threads": n,
            "ours_messages": ours["resolution_messages"],
            "cr_messages": cr["resolution_messages"],
            "r96_messages": r96["resolution_messages"],
            "ours_resolution_calls": ours["resolution_calls"],
            "cr_resolution_calls": cr["resolution_calls"],
            "r96_resolution_calls": r96["resolution_calls"],
            "theorem2_bound": theorem2_worst_case_messages(n, 1),
            "r96_paper": romanovsky96_messages(n),
        })
    return rows


# ----------------------------------------------------------------------
# Lemma 1 time bound
# ----------------------------------------------------------------------
def lemma1_check(t_msg: float = 0.2, t_abort: float = 0.1,
                 t_resolution: float = 0.3,
                 handler_time: float = 0.5) -> Dict[str, float]:
    """Compare a measured single-iteration completion time with Lemma 1.

    The experiment-1 scenario has one nesting level (``n_max`` = 1); the
    measured per-iteration time (minus the normal-computation prefix) must
    stay below the analytic bound.
    """
    result = run_experiment1(t_msg, t_abort, t_resolution, iterations=1)
    params = TimingParameters(t_msg_max=t_msg, t_resolution=t_resolution,
                              t_abort=t_abort, t_handler_max=handler_time,
                              max_nesting=1)
    return {
        "measured_total": result.total_time,
        "bound": lemma1_completion_bound(params),
        "protocol_messages": result.protocol_messages,
    }
