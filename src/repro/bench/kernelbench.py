"""Kernel/runtime microbenchmarks: the ``--suite kernel`` baseline.

Three wall-clock measurements bracket the layers the hot-path optimisation
pass touched (all simulated *behaviour* is pinned separately by the
golden-trace conformance suite — these benchmarks only measure speed):

* **event throughput** — a bare :class:`~repro.simkernel.kernel.Kernel`
  driving a timeout-yielding process: pure schedule/step/resume cost, no
  network or runtime;
* **message delivery rate** — two nodes on a zero-fault network, one
  sender, one draining receiver: the per-message envelope/statistics/
  FIFO-clamp/delivery path on top of the kernel;
* **capacity instances/sec** — the end-to-end ``capacity`` workload
  scenario at three pool scales (the default 8-worker pool of the
  committed capacity curve, and wider 32-/64-worker pools where the
  per-instance bookkeeping dominates), reported as completed action
  instances per wall-clock second.

Each measurement is the best of ``repeats`` runs, which is the standard
way to suppress scheduler/allocator noise in short benchmarks.  The
committed ``BENCH_kernel.json`` gives later PRs the same perf trajectory
for the kernel that ``BENCH_resolution.json`` gives for graph resolution.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..simkernel.kernel import Kernel
from .engine import GridPoint, run_scenario

#: Default sizes: large enough for stable timings, small enough that the
#: whole suite (with repeats) stays in CI-smoke territory.
EVENT_COUNT = 100_000
MESSAGE_COUNT = 20_000
REPEATS = 3

#: The capacity configurations measured by the kernel suite.  ``default8``
#: is the committed capacity curve's saturated point; the wider pools are
#: where the pre-optimisation per-instance bookkeeping (instance release
#: sweeps, binding resolution, barrier registries) grew with pool size.
CAPACITY_CONFIGS: Dict[str, Dict[str, Any]] = {
    "default8": {"offered_load": 4.0},
    "pool32": {"offered_load": 16.0, "pool_size": 32, "n_instances": 400},
    "pool64": {"offered_load": 32.0, "pool_size": 64, "n_instances": 600,
               "queue_capacity": 128},
}


def _best_of(repeats: int, run: Callable[[], Any]) -> float:
    """Best wall-clock of ``repeats`` runs of ``run`` (seconds)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# Event throughput (bare kernel)
# ----------------------------------------------------------------------
def _timeout_loop(kernel: Kernel, count: int):
    for _ in range(count):
        yield kernel.timeout(1.0)


def bench_event_throughput(n_events: int = EVENT_COUNT,
                           repeats: int = REPEATS) -> Dict[str, Any]:
    """Schedule/step/resume cost of the bare kernel, in events/sec.

    One loop iteration is two kernel events (the timeout firing and the
    process rescheduling), so the reported rate counts ``2 ×`` iterations.
    """
    iterations = max(1, n_events // 2)

    def run() -> None:
        kernel = Kernel()
        kernel.process(_timeout_loop(kernel, iterations))
        kernel.run()

    seconds = _best_of(repeats, run)
    events = 2 * iterations
    return {
        "events": events,
        "wall_seconds": seconds,
        "events_per_second": events / seconds if seconds > 0 else 0.0,
    }


# ----------------------------------------------------------------------
# Message delivery rate (network on top of the kernel)
# ----------------------------------------------------------------------
def _sender(network, count: int):
    kernel = network.kernel
    for i in range(count):
        network.send("src", "dst", i)
        yield kernel.timeout(0.001)


def _receiver(network, count: int):
    inbox = network.node("dst").inbox
    for _ in range(count):
        yield inbox.get()


def bench_message_delivery(n_messages: int = MESSAGE_COUNT,
                           repeats: int = REPEATS) -> Dict[str, Any]:
    """Per-message cost of the network delivery path, in messages/sec."""
    from ..net.latency import ConstantLatency
    from ..net.network import Network

    def run() -> None:
        kernel = Kernel()
        network = Network(kernel, latency=ConstantLatency(0.01))
        network.add_node("src")
        network.add_node("dst")
        kernel.process(_sender(network, n_messages))
        kernel.process(_receiver(network, n_messages))
        kernel.run()

    seconds = _best_of(repeats, run)
    return {
        "messages": n_messages,
        "wall_seconds": seconds,
        "messages_per_second": n_messages / seconds if seconds > 0 else 0.0,
    }


# ----------------------------------------------------------------------
# End-to-end capacity wall-clock
# ----------------------------------------------------------------------
def bench_capacity(configs: Optional[Dict[str, Dict[str, Any]]] = None,
                   repeats: int = REPEATS) -> List[Dict[str, Any]]:
    """End-to-end ``capacity`` scenario wall-clock at several pool scales.

    Every run goes through :func:`~repro.bench.engine.run_scenario`, i.e.
    the exact code path the conformance suite pins, so the measured wall
    clock belongs to behaviour that is provably unchanged.
    """
    rows: List[Dict[str, Any]] = []
    for name, parameters in (configs or CAPACITY_CONFIGS).items():
        point: GridPoint = dict(parameters)
        captured: List[Dict[str, Any]] = []

        def run() -> None:
            captured[:] = run_scenario("capacity", points=[point])

        seconds = _best_of(repeats, run)
        result = captured[0]
        completed = int(result["completed"])
        rows.append({
            "config": name,
            "offered_load": point.get("offered_load"),
            "pool_size": result["pool_size"],
            "jobs": result["jobs"],
            "completed": completed,
            "throughput_virtual": result["throughput"],
            "wall_seconds": seconds,
            "instances_per_second": (completed / seconds
                                     if seconds > 0 else 0.0),
        })
    return rows


# ----------------------------------------------------------------------
# Observability overhead (the "never perturbs, barely costs" claim)
# ----------------------------------------------------------------------
#: Rounds for the overhead comparison: many more than the throughput
#: benches because the measured quantity is a *ratio* of two short
#: timings — the median over this many paired rounds is what stabilises
#: it on noisy (shared/throttled) CI hosts.
OBS_ROUNDS = 45


def _timed_once(run: Callable[[], None]) -> float:
    """One GC-controlled wall-clock sample of ``run`` (seconds).

    The cyclic collector is the dominant run-to-run drift in short kernel
    benchmarks: every run leaves its whole system as cyclic garbage, and
    letting generational GC fire mid-measurement makes the Nth run look
    arbitrarily slower than the first.  Collect *before* the sample and
    keep GC off *during* it, so every sample starts from the same heap.
    """
    import gc

    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        run()
        return time.perf_counter() - start
    finally:
        if was_enabled:
            gc.enable()


def _paired_overhead(run_a: Callable[[], None], run_b: Callable[[], None],
                     rounds: int) -> Dict[str, float]:
    """Median relative cost of ``run_b`` over ``run_a`` (ABBA pairing).

    Each round times A-B-B-A (alternating with B-A-A-B) back to back and
    takes the within-round ratio, so both variants see near-identical
    host conditions (CPU-quota throttling on CI runners drifts over
    seconds, which makes any "time all of A, then all of B" comparison
    systematically unfair).  The palindromic order cancels linear drift
    inside a round; alternating which variant takes the outer slots
    cancels the residual position bias; the median over rounds rejects
    the occasional contended round entirely.
    """
    ratios: List[float] = []
    a_samples: List[float] = []
    b_samples: List[float] = []
    for round_index in range(max(1, rounds)):
        if round_index % 2 == 0:
            a1 = _timed_once(run_a)
            b1 = _timed_once(run_b)
            b2 = _timed_once(run_b)
            a2 = _timed_once(run_a)
        else:
            b1 = _timed_once(run_b)
            a1 = _timed_once(run_a)
            a2 = _timed_once(run_a)
            b2 = _timed_once(run_b)
        a_samples.extend((a1, a2))
        b_samples.extend((b1, b2))
        ratios.append((b1 + b2) / (a1 + a2))
    ratios.sort()
    a_samples.sort()
    b_samples.sort()
    return {
        "overhead": ratios[len(ratios) // 2] - 1.0,
        "a_seconds": a_samples[len(a_samples) // 2],
        "b_seconds": b_samples[len(b_samples) // 2],
    }


def bench_obs_overhead(n_events: int = EVENT_COUNT,
                       rounds: int = OBS_ROUNDS) -> Dict[str, Any]:
    """Kernel event-loop cost with observability off vs traced.

    ``disabled`` runs the identical bare-kernel loop as the baseline —
    with ``repro.obs`` inactive the kernel's hot loop is structurally
    unchanged (one attribute read and a ``None`` check per step), so the
    measured ``disabled_overhead`` is noise around zero; CI asserts it
    stays within a small band, which catches any future change that puts
    real work on the disabled path.  ``enabled`` attaches a
    flight-recorder step tracer through ``Kernel.add_tracer`` and reports
    the honest cost of always-on kernel-step tracing.
    """
    from ..obs import FlightRecorder

    iterations = max(1, n_events // 2)

    def run_plain() -> None:
        kernel = Kernel()
        kernel.process(_timeout_loop(kernel, iterations))
        kernel.run()

    def run_traced() -> None:
        kernel = Kernel()
        ring = FlightRecorder()
        kernel.add_tracer(lambda when, priority, eid, event:
                          ring.append({"t": when, "kind": "kernel.step",
                                       "eid": eid}))
        kernel.process(_timeout_loop(kernel, iterations))
        kernel.run()

    run_plain()
    run_traced()
    disabled = _paired_overhead(run_plain, run_plain, rounds)
    enabled = _paired_overhead(run_plain, run_traced, rounds)
    return {
        "events": 2 * iterations,
        "rounds": rounds,
        "baseline_seconds": disabled["a_seconds"],
        "disabled_seconds": disabled["b_seconds"],
        "enabled_seconds": enabled["b_seconds"],
        "disabled_overhead": disabled["overhead"],
        "enabled_overhead": enabled["overhead"],
    }


def collect_kernel_baseline(
        n_events: int = EVENT_COUNT,
        n_messages: int = MESSAGE_COUNT,
        capacity_configs: Optional[Dict[str, Dict[str, Any]]] = None,
        repeats: int = REPEATS) -> Dict[str, object]:
    """Run the three kernel benchmarks and return the baseline document."""
    import platform

    return {
        "python": platform.python_version(),
        "repeats": repeats,
        "event_throughput": bench_event_throughput(n_events, repeats),
        "message_delivery": bench_message_delivery(n_messages, repeats),
        "capacity": bench_capacity(capacity_configs, repeats),
        "obs_overhead": bench_obs_overhead(n_events),
    }
