"""Plain-text reporting of experiment results.

The benchmark suite prints the regenerated tables in a layout close to the
paper's Figures 9 and 12, so that a reader can compare shapes directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: str = "", precision: int = 3) -> str:
    """Render ``rows`` (list of dicts) as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    rendered = [[fmt(row.get(column, "")) for column in columns]
                for row in rows]
    widths = [max(len(column), *(len(line[i]) for line in rendered))
              for i, column in enumerate(columns)]
    header = "  ".join(column.ljust(widths[i])
                       for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join("  ".join(line[i].ljust(widths[i])
                               for i in range(len(columns)))
                     for line in rendered)
    parts = [title, header, separator, body] if title else [header, separator,
                                                            body]
    return "\n".join(parts)


def paper_reference_figure9() -> Dict[str, List[Dict[str, float]]]:
    """The published Figure 9 numbers (total execution time in seconds)."""
    tmmax = [(0.2, 94.361391), (0.4, 98.586050), (0.6, 102.150904),
             (0.8, 106.774196), (1.0, 110.984972), (1.2, 125.078084),
             (1.4, 140.826807), (1.6, 161.766956), (1.8, 188.284787),
             (2.0, 214.519403), (2.2, 226.543372), (2.4, 237.934833),
             (2.6, 249.744183), (2.8, 261.768559)]
    tabo = [(0.1, 94.361391), (0.3, 98.991825), (0.5, 101.939318),
            (0.7, 106.150075), (0.9, 110.154827), (1.1, 113.937682),
            (1.3, 118.147893), (1.5, 122.573297), (1.7, 128.461646),
            (1.9, 130.362452), (2.1, 134.165025)]
    treso = [(0.3, 94.361391), (0.5, 98.352511), (0.7, 102.547776),
             (0.9, 107.164660), (1.1, 110.338507), (1.3, 114.729476),
             (1.5, 118.928022), (1.7, 122.483917), (1.9, 127.117187),
             (2.1, 131.816326), (2.3, 135.123453)]
    return {
        "varying_tmmax": [{"t_msg": v, "paper_total_time": t} for v, t in tmmax],
        "varying_tabo": [{"t_abort": v, "paper_total_time": t} for v, t in tabo],
        "varying_treso": [{"t_resolution": v, "paper_total_time": t}
                          for v, t in treso],
    }


def paper_reference_figure12() -> Dict[str, List[Dict[str, float]]]:
    """The published Figure 12 numbers (total execution time in seconds)."""
    tmmax = [(1.0, 9.153302, 11.770973), (1.2, 9.938735, 12.978797),
             (1.4, 10.758318, 14.168119), (1.6, 11.548076, 15.397075),
             (1.8, 12.356180, 16.558536), (2.0, 13.164378, 17.757369),
             (2.2, 13.931107, 18.967081), (2.4, 14.720373, 20.188518)]
    tres = [(0.3, 9.153302, 11.770973), (0.5, 9.348575, 12.358930),
            (0.7, 9.581770, 12.984660), (0.9, 9.762674, 13.604786),
            (1.1, 9.981335, 14.212014), (1.3, 10.177758, 14.817670),
            (1.5, 10.414642, 15.288979)]
    return {
        "varying_tmmax": [{"t_msg": v, "paper_time_ours": a, "paper_time_cr": b}
                          for v, a, b in tmmax],
        "varying_tres": [{"t_res": v, "paper_time_ours": a, "paper_time_cr": b}
                         for v, a, b in tres],
    }


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> Dict[str, float]:
    """Least-squares slope/intercept/R², for checking linear trends."""
    n = len(xs)
    if n < 2 or len(ys) != n:
        raise ValueError("need at least two matching points")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    syy = sum((y - mean_y) ** 2 for y in ys)
    if sxx == 0:
        raise ValueError("degenerate x values")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    r_squared = (sxy * sxy) / (sxx * syy) if syy > 0 else 1.0
    return {"slope": slope, "intercept": intercept, "r_squared": r_squared}


def series(rows: Sequence[Mapping[str, float]], x_key: str,
           y_key: str) -> tuple:
    """Extract an (xs, ys) pair of lists from table rows."""
    xs = [float(row[x_key]) for row in rows]
    ys = [float(row[y_key]) for row in rows]
    return xs, ys
