"""Reusable builders for the paper's experimental applications.

Two application systems are described in Section 5:

* **Experiment 1** (Figures 9 and 10): three threads take part in a CA
  action, two of them enter a further nested action, and the whole system is
  executed in a loop (20 times).  In the measured scenario one thread of the
  containing action raises an exception, the nested action has to be
  aborted, the abortion handler raises a second exception, and the resolving
  exception covering both is handled by all threads.  The three parameters
  ``Tmmax`` (message passing), ``Tabo`` (abortion) and ``Treso`` (resolution)
  are varied.

* **Experiment 2** (Figures 12 and 13): three threads enter a CA action and,
  after some computation, all of them raise *different* exceptions nearly at
  the same time, so resolution is always required.  The same application and
  the same resolution graph are run under the paper's algorithm and under
  the Campbell–Randell algorithm.

The builders below construct fully configured
:class:`~repro.runtime.system.DistributedCASystem` instances for those
scenarios (plus a generic N-thread scenario used by the message-complexity
benchmarks) and small runner functions returning the measured quantities.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.action import CAActionDefinition, RoleDefinition
from ..core.exception_graph import (
    ExceptionGraph,
    generate_full_graph,
    graph_statistics,
)
from ..core.exceptions import internal
from ..core.handlers import HandlerMap, HandlerResult
from ..net.latency import ConstantLatency
from ..runtime.config import RuntimeConfig
from ..runtime.report import ActionStatus
from ..runtime.system import DistributedCASystem

#: Default loop count of experiment 1 ("executed in a loop (20 times)").
EXPERIMENT1_ITERATIONS = 20

#: Amount of "normal computation" virtual time each role performs before the
#: exception scenario unfolds; a fixed constant shared by both experiments so
#: the measured totals are dominated by the swept parameters, as in the paper.
NORMAL_COMPUTATION_TIME = 1.0

#: Duration of the resolving-exception handlers (the paper's Δ).
HANDLER_TIME = 0.2


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    total_time: float
    iterations: int
    protocol_messages: int
    resolution_calls: int
    reports: List = None

    @property
    def time_per_iteration(self) -> float:
        return self.total_time / max(1, self.iterations)


# ----------------------------------------------------------------------
# Experiment 1: nested action aborted by an enclosing exception
# ----------------------------------------------------------------------
def build_experiment1(t_msg: float, t_abort: float, t_resolution: float,
                      iterations: int = EXPERIMENT1_ITERATIONS,
                      algorithm: str = "ours",
                      spawn_threads: Optional[List[str]] = None,
                      network_factory=None) -> DistributedCASystem:
    """Build the Figure 9/10 application system.

    Threads ``T1``–``T3`` participate in the containing action ``Outer``;
    ``T2`` and ``T3`` additionally enter the nested action ``Inner``.  Each
    iteration: T1 raises ``outer_fault`` in ``Outer`` while T2/T3 are inside
    ``Inner``; the nested action is aborted; the abortion handlers signal
    ``abort_residue``; both exceptions are resolved into their covering
    exception, which every thread handles.

    ``spawn_threads`` restricts which threads' programs are spawned (all
    three by default): a transport backend that runs one OS process per
    partition builds the full system everywhere but spawns only the
    local thread's program.  ``network_factory(kernel, latency)`` lets
    such a backend substitute its transport for the sim network.
    """
    config = RuntimeConfig(algorithm=algorithm, resolution_time=t_resolution,
                           abort_time=t_abort)
    latency = ConstantLatency(t_msg)
    if network_factory is not None:
        from ..simkernel.kernel import Kernel
        kernel = Kernel()
        system = DistributedCASystem(config, kernel=kernel,
                                     network=network_factory(kernel, latency))
    else:
        system = DistributedCASystem(config, latency=latency)
    system.add_threads(["T1", "T2", "T3"])
    system.create_object("plant", {"state": "idle", "processed": 0})

    outer_fault = internal("outer_fault")
    abort_residue = internal("abort_residue")
    outer_graph = generate_full_graph([outer_fault, abort_residue],
                                      action_name="Outer")

    def resolving_handler(ctx):
        yield ctx.delay(HANDLER_TIME)
        ctx.write("plant", "state", "repaired")
        return HandlerResult.success()

    def abortion_handler(ctx):
        return HandlerResult.signal(abort_residue)

    def inner_role(ctx):
        # Long-running cooperative work, interrupted by the outer exception.
        yield ctx.delay(50.0 * NORMAL_COMPUTATION_TIME)
        return "inner-done"

    inner = CAActionDefinition(
        "Inner",
        [RoleDefinition("b1", inner_role,
                        HandlerMap(abortion_handler=abortion_handler,
                                   default_handler=resolving_handler)),
         RoleDefinition("b2", inner_role,
                        HandlerMap(abortion_handler=abortion_handler,
                                   default_handler=resolving_handler))],
        graph=ExceptionGraph("Inner"), parent="Outer")

    def raising_role(ctx):
        yield ctx.delay(NORMAL_COMPUTATION_TIME)
        ctx.raise_exception(outer_fault)

    def nesting_role(role_name):
        def body(ctx):
            yield ctx.delay(0.1)
            report = yield from ctx.perform_nested("Inner", role_name)
            return report
        return body

    outer_handlers = HandlerMap(default_handler=resolving_handler)
    outer = CAActionDefinition(
        "Outer",
        [RoleDefinition("a1", raising_role,
                        HandlerMap(default_handler=resolving_handler)),
         RoleDefinition("a2", nesting_role("b1"), outer_handlers),
         RoleDefinition("a3", nesting_role("b2"),
                        HandlerMap(default_handler=resolving_handler))],
        internal_exceptions=[outer_fault, abort_residue], graph=outer_graph,
        external_objects=["plant"])

    system.define_action(outer)
    system.define_action(inner)
    system.bind("Outer", {"a1": "T1", "a2": "T2", "a3": "T3"})
    system.bind("Inner", {"b1": "T2", "b2": "T3"})

    def make_program(role):
        def program(ctx):
            reports = []
            for _ in range(iterations):
                report = yield from ctx.perform_action("Outer", role)
                reports.append(report)
            return reports
        return program

    roles = {"T1": "a1", "T2": "a2", "T3": "a3"}
    for thread in (spawn_threads if spawn_threads is not None
                   else sorted(roles)):
        system.spawn(thread, make_program(roles[thread]))
    return system


def run_experiment1(t_msg: float, t_abort: float, t_resolution: float,
                    iterations: int = EXPERIMENT1_ITERATIONS,
                    algorithm: str = "ours") -> ExperimentResult:
    """Run the Figure 9/10 scenario and return the measured totals."""
    system = build_experiment1(t_msg, t_abort, t_resolution, iterations,
                               algorithm)
    reports = system.run_to_completion()
    return ExperimentResult(
        total_time=system.now,
        iterations=iterations,
        protocol_messages=system.network.stats.protocol_messages(),
        resolution_calls=sum(p.coordinator.resolution_calls
                             for p in system.partitions.values()),
        reports=reports,
    )


# ----------------------------------------------------------------------
# Experiment 2: three concurrent exceptions, algorithm comparison
# ----------------------------------------------------------------------
def build_experiment2(t_msg: float, t_resolution: float,
                      algorithm: str = "ours",
                      iterations: int = 1,
                      n_threads: int = 3) -> DistributedCASystem:
    """Build the Figure 12/13 application system.

    ``n_threads`` threads enter one CA action, perform some computation and
    then all raise *different* exceptions nearly at the same time, forcing
    exception resolution on every iteration.
    """
    config = RuntimeConfig(algorithm=algorithm, resolution_time=t_resolution)
    system = DistributedCASystem(config, latency=ConstantLatency(t_msg))
    threads = [f"T{i}" for i in range(1, n_threads + 1)]
    system.add_threads(threads)

    primitives = [internal(f"fault_{i}") for i in range(1, n_threads + 1)]
    graph = generate_full_graph(primitives, action_name="Compare")

    def resolving_handler(ctx):
        yield ctx.delay(HANDLER_TIME)
        return HandlerResult.success()

    def make_raising_role(index):
        def body(ctx):
            yield ctx.delay(NORMAL_COMPUTATION_TIME + 0.001 * index)
            ctx.raise_exception(primitives[index])
        return body

    roles = [
        RoleDefinition(f"r{i + 1}", make_raising_role(i),
                       HandlerMap(default_handler=resolving_handler))
        for i in range(n_threads)
    ]
    action = CAActionDefinition("Compare", roles,
                                internal_exceptions=primitives, graph=graph)
    system.define_action(action)
    system.bind("Compare", {f"r{i + 1}": threads[i] for i in range(n_threads)})

    def make_program(role):
        def program(ctx):
            reports = []
            for _ in range(iterations):
                report = yield from ctx.perform_action("Compare", role)
                reports.append(report)
            return reports
        return program

    for i, thread in enumerate(threads):
        system.spawn(thread, make_program(f"r{i + 1}"))
    return system


def run_experiment2(t_msg: float, t_resolution: float,
                    algorithm: str = "ours",
                    iterations: int = 1,
                    n_threads: int = 3) -> ExperimentResult:
    """Run the Figure 12/13 scenario for one algorithm."""
    system = build_experiment2(t_msg, t_resolution, algorithm, iterations,
                               n_threads)
    reports = system.run_to_completion()
    return ExperimentResult(
        total_time=system.now,
        iterations=iterations,
        protocol_messages=system.network.stats.protocol_messages(),
        resolution_calls=sum(p.coordinator.resolution_calls
                             for p in system.partitions.values()),
        reports=reports,
    )


# ----------------------------------------------------------------------
# Generic message-complexity scenario (Theorem 2 / Section 3.2.3)
# ----------------------------------------------------------------------
def run_complexity_scenario(n_threads: int, n_exceptions: int,
                            algorithm: str = "ours") -> Dict[str, int]:
    """Run an N-thread action where ``n_exceptions`` threads raise concurrently.

    Returns the per-type protocol-message counts and the total, which the
    complexity benchmarks compare against the analytic formulas.
    """
    if not 1 <= n_exceptions <= n_threads:
        raise ValueError("need 1 <= n_exceptions <= n_threads")
    config = RuntimeConfig(algorithm=algorithm)
    system = DistributedCASystem(config, latency=ConstantLatency(0.01))
    threads = [f"T{i:02d}" for i in range(1, n_threads + 1)]
    system.add_threads(threads)

    primitives = [internal(f"fault_{i}") for i in range(1, n_exceptions + 1)]
    graph = generate_full_graph(primitives, max_level=1,
                                action_name="Complexity") \
        if n_exceptions > 1 else generate_full_graph(primitives,
                                                     action_name="Complexity")

    def handler(ctx):
        return HandlerResult.success()

    def make_role(index):
        if index < n_exceptions:
            def body(ctx):
                yield ctx.delay(0.5)
                ctx.raise_exception(primitives[index])
        else:
            def body(ctx):
                yield ctx.delay(5.0)
        return body

    roles = [RoleDefinition(f"r{i}", make_role(i),
                            HandlerMap(default_handler=handler))
             for i in range(n_threads)]
    action = CAActionDefinition("Complexity", roles,
                                internal_exceptions=primitives, graph=graph)
    system.define_action(action)
    system.bind("Complexity", {f"r{i}": threads[i] for i in range(n_threads)})

    def make_program(role):
        def program(ctx):
            report = yield from ctx.perform_action("Complexity", role)
            return report
        return program

    for i, thread in enumerate(threads):
        system.spawn(thread, make_program(f"r{i}"))
    system.run_to_completion()

    by_type = dict(system.network.stats.by_type)
    resolution_types = ("ExceptionMessage", "SuspendedMessage", "CommitMessage",
                        "CRForwardMessage", "CRResolvedMessage",
                        "CRConfirmMessage", "AgreementMessage",
                        "ConfirmMessage")
    total = sum(by_type.get(name, 0) for name in resolution_types)
    signalling = by_type.get("ToBeSignalledMessage", 0)
    return {
        "by_type": by_type,
        "resolution_messages": total,
        "signalling_messages": signalling,
        "resolution_calls": sum(p.coordinator.resolution_calls
                                for p in system.partitions.values()),
        "total_time": system.now,
    }


# ----------------------------------------------------------------------
# Multi-action churn: many concurrent top-level actions share the network
# ----------------------------------------------------------------------
def build_churn(n_groups: int, iterations: int = 1, group_size: int = 3,
                t_msg: float = 0.05, t_resolution: float = 0.1,
                algorithm: str = "ours") -> DistributedCASystem:
    """Build a system with ``n_groups`` independent concurrent CA actions.

    Each group has ``group_size`` dedicated threads running its own
    top-level action in a loop; in every iteration one thread of the group
    raises an exception that all group members recover from.  All groups
    share one simulated network, so the scenario measures how the runtime
    behaves when many unrelated actions generate protocol traffic at the
    same time (a workload the paper's three-thread experiments never
    exercise).
    """
    if n_groups < 1:
        raise ValueError("need at least one group")
    if group_size < 2:
        raise ValueError("churn groups need at least two threads")
    if iterations < 1:
        raise ValueError("need at least one iteration")
    config = RuntimeConfig(algorithm=algorithm, resolution_time=t_resolution)
    system = DistributedCASystem(config, latency=ConstantLatency(t_msg))

    def resolving_handler(ctx):
        yield ctx.delay(HANDLER_TIME)
        return HandlerResult.success()

    for group in range(n_groups):
        threads = [f"G{group:02d}T{i}" for i in range(1, group_size + 1)]
        system.add_threads(threads)
        action_name = f"Churn{group:02d}"
        fault = internal(f"churn_fault_{group:02d}")
        graph = generate_full_graph([fault], action_name=action_name)

        def make_raising_role(exception, offset):
            def body(ctx):
                yield ctx.delay(NORMAL_COMPUTATION_TIME + offset)
                ctx.raise_exception(exception)
            return body

        def worker_role(ctx):
            yield ctx.delay(10.0 * NORMAL_COMPUTATION_TIME)

        roles = [RoleDefinition("w1",
                                make_raising_role(fault, 0.001 * group),
                                HandlerMap(default_handler=resolving_handler))]
        roles += [RoleDefinition(f"w{i}", worker_role,
                                 HandlerMap(default_handler=resolving_handler))
                  for i in range(2, group_size + 1)]
        action = CAActionDefinition(action_name, roles,
                                    internal_exceptions=[fault], graph=graph)
        system.define_action(action)
        system.bind(action_name,
                    {f"w{i}": threads[i - 1] for i in range(1, group_size + 1)})

        def make_program(action_name, role):
            def program(ctx):
                reports = []
                for _ in range(iterations):
                    report = yield from ctx.perform_action(action_name, role)
                    reports.append(report)
                return reports
            return program

        for i, thread in enumerate(threads, start=1):
            system.spawn(thread, make_program(action_name, f"w{i}"))
    return system


def build_wide_graph(n_threads: int = 8, n_primitives: int = 12,
                     max_level: int = 3, iterations: int = 2,
                     t_msg: float = 0.05, t_resolution: float = 0.05,
                     algorithm: str = "ours") -> DistributedCASystem:
    """Build the resolution-heavy wide-graph scenario.

    ``n_threads`` threads enter one CA action whose exception graph has
    ``n_primitives`` primitive exceptions and is truncated at ``max_level``
    (the paper's third simplification rule) — with the defaults that is a
    794-node graph.  Every iteration is an *all-raise storm*: each thread
    raises its own primitive nearly simultaneously, so the resolver performs
    a full set-cover resolution over the wide graph on every pass.  With
    more raised primitives than ``max_level + 1`` the storm resolves to the
    universal exception, exactly as the truncation rule prescribes.

    The scenario exists to exercise resolution itself (the compiled graph
    index) rather than the messaging pattern, which the ``large_n`` sweep
    already covers.
    """
    if n_threads < 2:
        raise ValueError("need at least two threads for a storm")
    if n_primitives < n_threads:
        raise ValueError("need at least one primitive per thread")
    config = RuntimeConfig(algorithm=algorithm, resolution_time=t_resolution)
    system = DistributedCASystem(config, latency=ConstantLatency(t_msg))
    threads = [f"T{i}" for i in range(1, n_threads + 1)]
    system.add_threads(threads)

    primitives = [internal(f"storm_{i:02d}") for i in range(n_primitives)]
    graph = generate_full_graph(primitives, max_level=max_level,
                                action_name="WideGraph")

    def resolving_handler(ctx):
        yield ctx.delay(HANDLER_TIME)
        return HandlerResult.success()

    def make_raising_role(index):
        def body(ctx):
            yield ctx.delay(NORMAL_COMPUTATION_TIME + 0.001 * index)
            ctx.raise_exception(primitives[index])
        return body

    roles = [
        RoleDefinition(f"r{i + 1}", make_raising_role(i),
                       HandlerMap(default_handler=resolving_handler))
        for i in range(n_threads)
    ]
    action = CAActionDefinition("WideGraph", roles,
                                internal_exceptions=primitives, graph=graph)
    system.define_action(action)
    system.bind("WideGraph",
                {f"r{i + 1}": threads[i] for i in range(n_threads)})

    def make_program(role):
        def program(ctx):
            reports = []
            for _ in range(iterations):
                report = yield from ctx.perform_action("WideGraph", role)
                reports.append(report)
            return reports
        return program

    for i, thread in enumerate(threads):
        system.spawn(thread, make_program(f"r{i + 1}"))
    return system


def run_wide_graph(n_threads: int = 8, n_primitives: int = 12,
                   max_level: int = 3, iterations: int = 2,
                   t_msg: float = 0.05, t_resolution: float = 0.05,
                   algorithm: str = "ours") -> Dict[str, object]:
    """Run the wide-graph storm and return one (JSON-serializable) row."""
    system = build_wide_graph(n_threads, n_primitives, max_level, iterations,
                              t_msg, t_resolution, algorithm)
    graph = system.registry.get("WideGraph").graph
    stats = graph_statistics(graph)
    wall_start = time.perf_counter()
    reports = system.run_to_completion()
    wall_seconds = time.perf_counter() - wall_start
    recovered = sum(1 for per_thread in reports for report in per_thread
                    if report.status is ActionStatus.RECOVERED)
    return {
        "n_threads": n_threads,
        "n_primitives": n_primitives,
        "max_level": max_level,
        "iterations": iterations,
        "graph_nodes": stats["nodes"],
        "recovered": recovered,
        "total_time": system.now,
        "wall_seconds": wall_seconds,
        "protocol_messages": system.network.stats.protocol_messages(),
        "resolution_calls": sum(p.coordinator.resolution_calls
                                for p in system.partitions.values()),
        "message_stats": system.network.stats.snapshot(),
    }


# ----------------------------------------------------------------------
# Graph microbenchmark: compiled resolution without any runtime
# ----------------------------------------------------------------------
def run_graph_microbench(n_primitives: int = 12, max_level: int = 3,
                         resolve_calls: int = 100, sample_size: int = 6,
                         naive_calls: int = 3, seed: int = 7
                         ) -> Dict[str, object]:
    """Time graph generation, statistics and a ``resolve()`` loop.

    Measures the compiled hot path (and, for perspective, a few calls of the
    naive reference scan) on a ``generate_full_graph`` instance.  Wall-clock
    fields vary run to run, of course; the row exists to track the
    *trajectory* of resolution performance across PRs via
    ``BENCH_resolution.json``.
    """
    rng = random.Random(seed)
    primitives = [internal(f"mb_{i:02d}") for i in range(n_primitives)]

    start = time.perf_counter()
    graph = generate_full_graph(primitives, max_level=max_level,
                                action_name="microbench")
    build_seconds = time.perf_counter() - start

    start = time.perf_counter()
    stats = graph_statistics(graph)
    stats_seconds = time.perf_counter() - start

    draws = [rng.sample(primitives, rng.randint(1, min(sample_size,
                                                       n_primitives)))
             for _ in range(resolve_calls)]
    start = time.perf_counter()
    for raised in draws:
        graph.resolve(raised)
    resolve_seconds = time.perf_counter() - start

    naive_seconds_per_call = None
    if naive_calls > 0:
        start = time.perf_counter()
        naive_results = [graph.resolve_naive(raised)
                         for raised in draws[:naive_calls]]
        naive_seconds_per_call = (time.perf_counter() - start) / naive_calls
        compiled_results = [graph.resolve(raised)
                            for raised in draws[:naive_calls]]
        if naive_results != compiled_results:
            raise RuntimeError(
                "compiled resolve() diverged from the naive reference: "
                f"{naive_results} != {compiled_results}")

    per_call = resolve_seconds / max(1, resolve_calls)
    return {
        "n_primitives": n_primitives,
        "max_level": max_level,
        "nodes": stats["nodes"],
        "build_seconds": build_seconds,
        "stats_seconds": stats_seconds,
        "resolve_calls": resolve_calls,
        "resolve_seconds": resolve_seconds,
        "resolve_us_per_call": per_call * 1e6,
        "naive_seconds_per_call": naive_seconds_per_call,
        "speedup_vs_naive": (naive_seconds_per_call / per_call
                             if naive_seconds_per_call is not None else None),
    }


def run_churn(n_groups: int, iterations: int = 1, group_size: int = 3,
              t_msg: float = 0.05, t_resolution: float = 0.1,
              algorithm: str = "ours") -> Dict[str, float]:
    """Run the churn scenario and return aggregate throughput figures."""
    system = build_churn(n_groups, iterations, group_size, t_msg,
                         t_resolution, algorithm)
    reports = system.run_to_completion()
    recovered = sum(1 for per_thread in reports for report in per_thread
                    if report.status is ActionStatus.RECOVERED)
    # Measured: an action instance counts as completed only when every one
    # of its participants recovered.  Programs are spawned group by group,
    # so reports[g*group_size:(g+1)*group_size] are one group's threads.
    completed = 0
    for group in range(n_groups):
        members = reports[group * group_size:(group + 1) * group_size]
        for iteration in range(iterations):
            if all(member[iteration].status is ActionStatus.RECOVERED
                   for member in members):
                completed += 1
    attempted = n_groups * iterations
    protocol_messages = system.network.stats.protocol_messages()
    return {
        "n_groups": n_groups,
        "actions_attempted": attempted,
        "actions_completed": completed,
        "participations_recovered": recovered,
        "total_time": system.now,
        "protocol_messages": protocol_messages,
        "messages_per_action": protocol_messages / attempted,
        "resolutions": system.metrics.resolutions,
    }
