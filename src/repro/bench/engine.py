"""Declarative scenario engine for parameter-sweep experiments.

The paper's experiments (Figures 9–13) are sweeps over many *independent*
simulated runs.  Instead of hand-rolled loops per figure, this module keeps
a registry mapping a scenario name to

* a **runner** — a function taking one grid point's parameters (as keyword
  arguments) and returning one row dictionary, and
* a default **parameter grid** — the list of points the paper (or the new
  workload) sweeps.

:func:`run_scenario` executes a grid either sequentially or in parallel on
a :class:`concurrent.futures.ProcessPoolExecutor`.  Every run builds a
fresh :class:`~repro.runtime.system.DistributedCASystem` with its own
network and :class:`~repro.net.network.MessageStatistics`, and the
simulation itself is deterministic virtual time, so the two execution modes
produce byte-identical rows; results are always returned in grid order.
(The perf scenarios are the documented exception: ``graph_microbench``
rows are wall-clock throughout, and ``wide_graph`` rows carry one
wall-clock field, ``wall_seconds``.)

Registering a new workload::

    @REGISTRY.register("my-workload", grid=[{"n": 2}, {"n": 4}])
    def my_workload(n):
        system = build_something(n)
        system.run_to_completion()
        return {"n": n, "total_time": system.now}

Runners must be module-level functions (picklable) for the process-pool
path; anything else silently degrades to the sequential fallback.
"""

from __future__ import annotations

import gc
import json
import logging
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .. import obs

from ..analysis.bounds import (
    messages_all_exceptions,
    messages_single_exception,
    theorem2_worst_case_messages,
)
from ..core.registry import (
    ParamError,
    ParamSpec,
    ParamValidationError,
    Registry,
    format_params,
    params_from_callable,
    validate_params,
)
from ..explore.corpus import run_plans_chunk
from ..explore.explorer import explore_chunk
from ..explore.generator import STORM_KINDS, FaultPlanGenerator
from ..explore.targets import get_target
from ..productioncell.workload import run_production_cell_point
from ..workload.scenarios import run_capacity_point, run_mixed_traffic
from ..workload.sharding import run_scale_point
from ..workload.transactional import run_transactional_point
from .scenarios import (
    EXPERIMENT1_ITERATIONS,
    run_churn,
    run_complexity_scenario,
    run_experiment1,
    run_experiment2,
    run_graph_microbench,
    run_wide_graph,
)

logger = logging.getLogger(__name__)

#: One grid point: keyword arguments for a scenario runner.
GridPoint = Mapping[str, object]
#: One result row, as the harness tables expect them.
Row = Dict[str, object]


@dataclass(frozen=True)
class ScenarioConfig:
    """Cross-cutting run configuration for :func:`run_scenario`.

    ``obs`` switches the whole sweep to traced execution: every system the
    grid builds is adopted by one ambient :class:`repro.obs.Capture`, and
    the merged spans / metrics / flight dumps become available to the
    caller.  Tracing forces the sequential path (an ambient capture is
    process-local, and rows are byte-identical either way).  With
    ``export_dir`` set, the capture is exported after the sweep as
    ``<scenario>.trace.json`` (Chrome/Perfetto), ``<scenario>.events.jsonl``,
    ``<scenario>.metrics.json`` and ``<scenario>.prom``.
    """

    obs: Optional[obs.ObsConfig] = None
    export_dir: Optional[str] = None
    #: Execution backend: ``"sim"`` runs grid points on the deterministic
    #: sim kernel (the default, byte-identical path); ``"real"`` boots one
    #: OS process per scenario node and runs the same protocol code over
    #: localhost sockets with wall-clock pacing (see
    #: :mod:`repro.net.real`).  Real rows are oracle-gated, not
    #: digest-gated — they carry wall-clock fields and are not
    #: byte-identical between runs.
    backend: str = "sim"
    #: Keyword options for the real backend runner (``time_scale``,
    #: ``wall_timeout``, ``settle``); ignored on the sim backend.
    backend_options: Optional[Mapping[str, object]] = None


@dataclass(frozen=True)
class Scenario:
    """A named, sweepable workload.

    ``params`` holds the runner's declared parameters (derived from its
    signature when the scenario is added to a registry); ``accepts_extra``
    is true for runners taking ``**options``, whose unknown keys forward
    to a lower-level function and therefore pass validation.
    """

    name: str
    runner: Callable[..., Row]
    grid: Tuple[GridPoint, ...]
    description: str = ""
    params: Optional[Tuple[ParamSpec, ...]] = None
    accepts_extra: bool = False

    def run_point(self, point: GridPoint) -> Row:
        """Execute one grid point in-process."""
        return self.runner(**point)

    def validate_point(self, point: GridPoint) -> List[ParamError]:
        """Check one grid point against the runner's declared params."""
        if self.params is None:
            return []
        return validate_params(f"scenario {self.name!r}", self.params,
                               self.accepts_extra, point)

    def validate_grid(self, grid: Sequence[GridPoint]) -> List[ParamError]:
        """Check every point of ``grid``; empty list means all valid."""
        errors: List[ParamError] = []
        for point in grid:
            errors.extend(self.validate_point(point))
        return errors

    def describe_params(self) -> str:
        """One-line rendering of the declared params (``--list`` output)."""
        return format_params(self.params or (), self.accepts_extra)


class ScenarioRegistry(Registry[Scenario]):
    """Name → :class:`Scenario` mapping with a decorator-based API."""

    kind = "scenario"

    def register(self, name: str, grid: Sequence[GridPoint] = (),
                 description: str = ""):
        """Decorator: register the decorated runner under ``name``."""
        def decorate(runner: Callable[..., Row]) -> Callable[..., Row]:
            self.add(Scenario(
                name=name, runner=runner,
                grid=tuple(dict(point) for point in grid),
                description=description or (runner.__doc__ or "").strip()
                .split("\n")[0]))
            return runner
        return decorate

    def add(self, scenario: Scenario) -> Scenario:
        """Register ``scenario``, deriving and checking its declared params.

        The runner's signature becomes the scenario's parameter
        declaration (unless the caller supplied one), and the default
        grid is validated against it immediately — a plugin with a
        mistyped grid fails at registration, not mid-sweep.
        """
        if scenario.params is None:
            params, accepts_extra = params_from_callable(scenario.runner)
            scenario = replace(scenario, params=params,
                               accepts_extra=accepts_extra)
        errors = scenario.validate_grid(scenario.grid)
        if errors:
            raise ParamValidationError(errors)
        return super().add(scenario)


#: The process-wide default registry (the paper's figures plus the new
#: workloads register themselves below).
REGISTRY = ScenarioRegistry()


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_scenario(name: str, points: Optional[Sequence[GridPoint]] = None,
                 parallel: bool = False, max_workers: Optional[int] = None,
                 registry: Optional[ScenarioRegistry] = None,
                 config: Optional[ScenarioConfig] = None) -> List[Row]:
    """Run ``name`` over ``points`` (its default grid when omitted).

    With ``parallel=True`` the grid points are distributed over a
    :class:`~concurrent.futures.ProcessPoolExecutor`; each point still runs
    a fresh, fully isolated system, so the rows are identical to the
    sequential path (which is also the automatic fallback when the runner
    cannot be shipped to worker processes or no pool can be created).
    Rows are always returned in grid order.

    ``config`` carries cross-cutting options; when ``config.obs`` is set
    the sweep runs traced (see :class:`ScenarioConfig`).
    """
    if config is not None and config.backend != "sim":
        if config.backend != "real":
            raise ValueError(f"unknown backend {config.backend!r}; "
                             f"expected 'sim' or 'real'")
        return _run_real_backend(name, points, config)
    scenario = (registry or REGISTRY).get(name)
    grid: List[GridPoint] = [dict(point) for point in
                             (points if points is not None else scenario.grid)]
    if not grid:
        return []
    errors = scenario.validate_grid(grid)
    if errors:
        raise ParamValidationError(errors)
    if config is not None and config.obs is not None:
        if parallel and len(grid) > 1:
            logger.warning(
                "scenario %r: tracing is process-local; running the "
                "%d-point grid sequentially under one capture",
                name, len(grid))
        return _run_traced(scenario, grid, config)
    if parallel and len(grid) > 1:
        if not _shippable(scenario.runner):
            logger.warning(
                "scenario %r: runner is not picklable; running the %d-point "
                "grid sequentially instead of on a process pool",
                name, len(grid))
        else:
            rows = _run_pool(scenario, grid, max_workers)
            if rows is not None:
                return rows
            logger.warning(
                "scenario %r: process pool unavailable or broken; falling "
                "back to the sequential (byte-identical) path for the "
                "%d-point grid", name, len(grid))
    return _run_sequential(scenario, grid)


def _run_real_backend(name: str, points: Optional[Sequence[GridPoint]],
                      config: ScenarioConfig) -> List[Row]:
    """Run grid points of a *real-capable* scenario across OS processes.

    Only scenarios with an entry in
    :data:`repro.net.real.scenarios.REAL_SCENARIOS` can run here; their
    grid points are the real spec's parameters (``t_msg``, ``iterations``,
    ``algorithm``, ...), defaulting to one point from the spec's
    defaults.  Each row reports the merged oracle verdict, the
    ``(action, status)`` conclusion counts, and wall-clock cost.
    """
    from ..net.real.backend import RealBackend
    from ..net.real.scenarios import REAL_SCENARIOS

    if name not in REAL_SCENARIOS:
        raise KeyError(
            f"scenario {name!r} has no real-backend spec; available: "
            f"{sorted(REAL_SCENARIOS)}")
    spec = REAL_SCENARIOS[name]
    grid = [dict(point) for point in
            (points if points is not None else (dict(spec.defaults),))]
    backend = RealBackend(**dict(config.backend_options or {}))
    rows: List[Row] = []
    for index, point in enumerate(grid):
        result = backend.run(name, **point)
        if config.export_dir is not None:
            # Bridged obs events, one JSONL per run — CI uploads these as
            # the post-mortem artifact when a real run fails its oracles.
            os.makedirs(config.export_dir, exist_ok=True)
            path = os.path.join(config.export_dir,
                                f"{name}-{index}.events.jsonl")
            with open(path, "w", encoding="utf-8") as handle:
                for node, record in sorted(result.records.items()):
                    for event in record.get("obs_events", ()):
                        handle.write(json.dumps(
                            {"node": node, **event}, sort_keys=True,
                            default=str) + "\n")
        rows.append({
            **point,
            "backend": "real",
            "n_violations": len(result.violations),
            "violations": [str(violation)
                           for violation in result.violations],
            "outcomes": {f"{action}/{status}": count
                         for (action, status), count
                         in sorted(result.outcomes.items())},
            "crashed": list(result.crashed),
            "wall_seconds": result.wall_time,
        })
    return rows


def _run_sequential(scenario: Scenario, grid: Sequence[GridPoint]) -> List[Row]:
    """The in-process sweep (the byte-identical reference path)."""
    # Pause the cyclic collector for the sweep: every grid point builds a
    # short-lived system whose processes/events form reference cycles, and
    # letting generational GC trigger mid-run costs measurably more than
    # deferring the cleanup.  Collection resumes (and catches up on its
    # own schedule) as soon as the sweep returns; GC state never affects
    # simulated behaviour, so rows are identical either way.
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        return [scenario.run_point(point) for point in grid]
    finally:
        if was_enabled:
            gc.enable()


def _run_traced(scenario: Scenario, grid: Sequence[GridPoint],
                config: ScenarioConfig) -> List[Row]:
    """Sequential sweep under one ambient capture, with optional export.

    The observation layer never schedules kernel events or draws from the
    simulation's RNG streams, so traced rows are identical to untraced
    ones — the conformance suite pins this.
    """
    with obs.capture(config.obs) as cap:
        rows = _run_sequential(scenario, grid)
    if config.export_dir is not None:
        export_capture(cap, scenario.name, config.export_dir)
    return rows


def export_capture(cap: "obs.Capture", name: str, directory: str) -> List[str]:
    """Write a capture's trace/metrics artefacts; returns the paths."""
    os.makedirs(directory, exist_ok=True)
    base = os.path.join(directory, name)
    paths = [base + ".trace.json", base + ".events.jsonl",
             base + ".metrics.json", base + ".prom"]
    with open(paths[0], "w", encoding="utf-8") as handle:
        json.dump(cap.chrome_trace(), handle, indent=1, sort_keys=True)
    cap.write_jsonl(paths[1])
    with open(paths[2], "w", encoding="utf-8") as handle:
        json.dump(cap.metrics_snapshot(), handle, indent=1, sort_keys=True)
    with open(paths[3], "w", encoding="utf-8") as handle:
        handle.write(cap.prometheus_text())
    logger.info("scenario %r: wrote trace artefacts to %s", name, directory)
    return paths


def _shippable(runner: Callable[..., Row]) -> bool:
    """True if ``runner`` can be pickled into a worker process."""
    try:
        pickle.dumps(runner)
        return True
    except Exception:
        return False


def _run_pool(scenario: Scenario, grid: Sequence[GridPoint],
              max_workers: Optional[int]) -> Optional[List[Row]]:
    """Run the grid on a process pool; ``None`` means "fall back"."""
    workers = max_workers or min(len(grid), 8)
    try:
        pool = ProcessPoolExecutor(max_workers=workers)
    except OSError as error:
        # Restricted environments (no fork/semaphores): sequential fallback.
        logger.warning("scenario %r: cannot create a %d-worker process pool "
                       "(%s)", scenario.name, workers, error)
        return None
    try:
        with pool:
            futures = [pool.submit(_call_runner, scenario.runner, dict(point))
                       for point in grid]
            # A runner's own exception propagates to the caller here — only
            # a broken pool (workers killed at spawn) triggers the fallback.
            return [future.result() for future in futures]
    except BrokenProcessPool as error:
        logger.warning("scenario %r: process pool broke mid-sweep (%s)",
                       scenario.name, error)
        return None


def _call_runner(runner: Callable[..., Row], point: Dict[str, object]) -> Row:
    """Worker-side trampoline (module-level, hence picklable)."""
    return runner(**point)


# ----------------------------------------------------------------------
# The paper's figures as registered scenarios
# ----------------------------------------------------------------------
#: Baseline parameter values (the first row of each Figure 9 column).
FIGURE9_BASELINE = {"t_msg": 0.2, "t_abort": 0.1, "t_resolution": 0.3}

#: Parameter grids published in Figure 9 of the paper.
FIGURE9_GRIDS = {
    "t_msg": (0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4,
              2.6, 2.8),
    "t_abort": (0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.3, 1.5, 1.7, 1.9, 2.1),
    "t_resolution": (0.3, 0.5, 0.7, 0.9, 1.1, 1.3, 1.5, 1.7, 1.9, 2.1, 2.3),
}


def figure9_grid(varying: str,
                 values: Optional[Sequence[float]] = None,
                 iterations: int = EXPERIMENT1_ITERATIONS,
                 algorithm: str = "ours") -> List[GridPoint]:
    """The Figure 9 grid varying one parameter at baseline for the others."""
    if varying not in FIGURE9_GRIDS:
        raise ValueError(f"unknown parameter {varying!r}")
    grid = list(values) if values is not None else list(FIGURE9_GRIDS[varying])
    return [{"varying": varying, "value": value, "iterations": iterations,
             "algorithm": algorithm} for value in grid]


_DEFAULT_FIGURE9_GRID = tuple(point for parameter in FIGURE9_GRIDS
                              for point in figure9_grid(parameter))


@REGISTRY.register("figure9", grid=_DEFAULT_FIGURE9_GRID,
                   description="Figure 9/10 sensitivity sweep "
                               "(three threads, nested abort, 20 iterations)")
def figure9_point(varying: str, value: float,
                  iterations: int = EXPERIMENT1_ITERATIONS,
                  algorithm: str = "ours") -> Row:
    """One Figure 9 grid point: sweep ``varying``, others at baseline."""
    parameters = dict(FIGURE9_BASELINE)
    if varying not in parameters:
        raise ValueError(f"unknown parameter {varying!r}")
    parameters[varying] = value
    result = run_experiment1(iterations=iterations, algorithm=algorithm,
                             **parameters)
    return {
        varying: value,
        "total_time": result.total_time,
        "time_per_iteration": result.time_per_iteration,
        "protocol_messages": result.protocol_messages,
    }


#: Parameter grids published in Figure 12.
FIGURE12_TMMAX_GRID = (1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4)
FIGURE12_TRES_GRID = (0.3, 0.5, 0.7, 0.9, 1.1, 1.3, 1.5)
FIGURE12_FIXED_TRES = 0.3
FIGURE12_FIXED_TMMAX = 1.0


def _figure12_comparison(t_msg: float, t_resolution: float,
                         iterations: int) -> Dict[str, float]:
    """Both algorithms on one Figure 12 grid point (shared row columns)."""
    ours = run_experiment2(t_msg, t_resolution, algorithm="ours",
                           iterations=iterations)
    cr = run_experiment2(t_msg, t_resolution, algorithm="campbell-randell",
                         iterations=iterations)
    return {
        "time_ours": ours.total_time,
        "time_cr": cr.total_time,
        "messages_ours": ours.protocol_messages,
        "messages_cr": cr.protocol_messages,
        "resolution_calls_ours": ours.resolution_calls,
        "resolution_calls_cr": cr.resolution_calls,
    }


@REGISTRY.register("figure12_tmmax",
                   grid=tuple({"t_msg": value} for value in FIGURE12_TMMAX_GRID),
                   description="Figure 12 left half: ours vs Campbell-Randell,"
                               " varying Tmmax")
def figure12_tmmax_point(t_msg: float,
                         t_resolution: float = FIGURE12_FIXED_TRES,
                         iterations: int = 1) -> Row:
    """One Figure 12 point varying ``Tmmax`` at fixed ``Tres``."""
    row: Row = {"t_msg": t_msg}
    row.update(_figure12_comparison(t_msg, t_resolution, iterations))
    return row


@REGISTRY.register("figure12_tres",
                   grid=tuple({"t_res": value} for value in FIGURE12_TRES_GRID),
                   description="Figure 12 right half: ours vs Campbell-Randell,"
                               " varying Tres")
def figure12_tres_point(t_res: float, t_msg: float = FIGURE12_FIXED_TMMAX,
                        iterations: int = 1) -> Row:
    """One Figure 12 point varying ``Tres`` at fixed ``Tmmax``."""
    row: Row = {"t_res": t_res}
    row.update(_figure12_comparison(t_msg, t_res, iterations))
    return row


# ----------------------------------------------------------------------
# New workloads beyond the paper
# ----------------------------------------------------------------------
#: The large-N grid: the paper stops at N = 6; this sweep extends the
#: message-complexity measurement up to 64 participants.
LARGE_N_GRID = tuple({"n_threads": n} for n in (4, 8, 16, 32, 64))


@REGISTRY.register("large_n", grid=LARGE_N_GRID,
                   description="Message-complexity sweep up to N=64 "
                               "participants (single concurrent exception)")
def large_n_point(n_threads: int, n_exceptions: int = 1,
                  algorithm: str = "ours") -> Row:
    """One large-N point: measured counts against the analytic formulas."""
    outcome = run_complexity_scenario(n_threads, n_exceptions,
                                      algorithm=algorithm)
    return {
        "n_threads": n_threads,
        "n_exceptions": n_exceptions,
        "resolution_messages": outcome["resolution_messages"],
        "signalling_messages": outcome["signalling_messages"],
        "resolution_calls": outcome["resolution_calls"],
        "total_time": outcome["total_time"],
        "paper_single": messages_single_exception(n_threads),
        "paper_all": messages_all_exceptions(n_threads),
        "theorem2_bound": theorem2_worst_case_messages(n_threads, 1),
    }


#: The wide-graph grid: all-raise storms over a truncated 12-primitive
#: graph (794 nodes) with a growing number of raising threads.
WIDE_GRAPH_GRID = tuple({"n_threads": n} for n in (4, 8, 12))


@REGISTRY.register("wide_graph", grid=WIDE_GRAPH_GRID,
                   description="Resolution-heavy all-raise storms over a "
                               "wide truncated exception graph")
def wide_graph_point(n_threads: int, n_primitives: int = 12,
                     max_level: int = 3, iterations: int = 2,
                     algorithm: str = "ours") -> Row:
    """One wide-graph storm point (see scenarios.run_wide_graph)."""
    return run_wide_graph(n_threads=n_threads, n_primitives=n_primitives,
                          max_level=max_level, iterations=iterations,
                          algorithm=algorithm)


#: The graph-microbenchmark grid: growing graphs, fixed resolve loop.
#: (Rows carry wall-clock timings, so unlike the simulated-time scenarios
#: they are not byte-identical between runs or execution modes.)
GRAPH_MICROBENCH_GRID = (
    {"n_primitives": 8, "max_level": 3},
    {"n_primitives": 12, "max_level": 3},
    {"n_primitives": 16, "max_level": 3},
)


@REGISTRY.register("graph_microbench", grid=GRAPH_MICROBENCH_GRID,
                   description="Compiled exception-graph resolution "
                               "microbenchmark (no runtime)")
def graph_microbench_point(n_primitives: int, max_level: int = 3,
                           resolve_calls: int = 100,
                           naive_calls: int = 3) -> Row:
    """One microbenchmark point (see scenarios.run_graph_microbench)."""
    return run_graph_microbench(n_primitives=n_primitives,
                                max_level=max_level,
                                resolve_calls=resolve_calls,
                                naive_calls=naive_calls)


#: The explorer grid: a fixed-seed 200-plan budget over the nested-abort
#: target, split into chunks of 25 so the process-pool path has real
#: parallelism.  Every chunk is pure in ``(seed, start, stop)`` — the
#: generator samples plan ``i`` identically in any process — so parallel
#: and sequential sweeps return byte-identical rows (each row carries a
#: digest over the canonical traces of its cases).
EXPLORE_SEED = 2026
EXPLORE_CHUNK_SIZE = 25
EXPLORE_BUDGET = 200
EXPLORE_GRID = tuple(
    {"target": "nested_abort", "seed": EXPLORE_SEED,
     "start": start, "stop": start + EXPLORE_CHUNK_SIZE}
    for start in range(0, EXPLORE_BUDGET, EXPLORE_CHUNK_SIZE))


@REGISTRY.register("explore", grid=EXPLORE_GRID,
                   description="Fault-space exploration sweep: seeded fault "
                               "plans + schedule perturbation, checked "
                               "against the invariant oracles")
def explore_point(target: str, seed: int, start: int, stop: int,
                  **options) -> Row:
    """One chunk of an explorer sweep (see repro.explore.explorer)."""
    return explore_chunk(target=target, seed=seed, start=start, stop=stop,
                         **options)


#: The corpus-search chunk grid: explicit storm-vocabulary plans (crash /
#: restore waves, drop and corrupt classes included), sampled at a fixed
#: seed.  Corpus search derives candidates centrally and only fans the
#: *execution* out, so its scenario takes the plans themselves; the
#: default grid pins the widened vocabulary's behaviour — including the
#: liveness-oracle waiver for non-delivery-preserving plans — under the
#: golden-trace conformance gate.
EXPLORE_CORPUS_CHUNK = 10


def _explore_corpus_grid() -> Tuple[Dict[str, object], ...]:
    generator = FaultPlanGenerator(
        EXPLORE_SEED, get_target("nested_abort").threads, kinds=STORM_KINDS)
    return tuple(
        {"target": "nested_abort", "start": start,
         "plans": [generator.sample(start + offset).to_dict()
                   for offset in range(EXPLORE_CORPUS_CHUNK)]}
        for start in range(0, 2 * EXPLORE_CORPUS_CHUNK,
                           EXPLORE_CORPUS_CHUNK))


@REGISTRY.register("explore_corpus", grid=_explore_corpus_grid(),
                   description="Corpus-search execution chunks: explicit "
                               "fault plans (full storm vocabulary), "
                               "canonical trace digests per plan")
def explore_corpus_point(target: str, plans: Sequence[Dict[str, object]],
                         start: int = 0, algorithm: str = "ours",
                         baselines: Sequence[str] = ()) -> Row:
    """One corpus-search chunk (see repro.explore.corpus)."""
    return run_plans_chunk(target=target, plans=plans, start=start,
                           algorithm=algorithm, baselines=baselines)


#: The churn grid: an increasing number of unrelated concurrent actions
#: sharing one network.
CHURN_GRID = tuple({"n_groups": n} for n in (1, 2, 4, 8, 16))


@REGISTRY.register("churn", grid=CHURN_GRID,
                   description="Multi-action churn: many concurrent top-level"
                               " CA actions sharing the network")
def churn_point(n_groups: int, iterations: int = 2, group_size: int = 3,
                t_msg: float = 0.05, t_resolution: float = 0.1,
                algorithm: str = "ours") -> Row:
    """One churn point: aggregate throughput of ``n_groups`` parallel actions."""
    return run_churn(n_groups, iterations=iterations, group_size=group_size,
                     t_msg=t_msg, t_resolution=t_resolution,
                     algorithm=algorithm)


#: The capacity grid: offered loads bracketing the default pool's nominal
#: service capacity (8 workers / width 2 / mean service 1.0 → 4 inst/s;
#: protocol and recovery overhead put the measured knee between 2 and 3).
CAPACITY_GRID = tuple({"offered_load": load}
                      for load in (0.5, 1.0, 2.0, 3.0, 4.0, 8.0))


@REGISTRY.register("capacity", grid=CAPACITY_GRID,
                   description="Offered-load sweep over a shared partition "
                               "pool: throughput/latency capacity curve")
def capacity_point(offered_load: float, **options) -> Row:
    """One capacity-curve point (see repro.workload.scenarios)."""
    return run_capacity_point(offered_load=offered_load, **options)


#: The mixed-traffic grid: three seeds of the heterogeneous soak, each a
#: fresh arrival schedule, job profile set and delay-noise plan.
MIXED_TRAFFIC_GRID = tuple({"seed": seed} for seed in (2026, 2027, 2028))


@REGISTRY.register("mixed_traffic", grid=MIXED_TRAFFIC_GRID,
                   description="Heterogeneous action mix + fault-plan noise "
                               "over one pool, checked by invariant oracles")
def mixed_traffic_point(seed: int, **options) -> Row:
    """One mixed-traffic soak run (see repro.workload.scenarios)."""
    return run_mixed_traffic(seed=seed, **options)


#: The transactional grid: offered loads over the default pool and the
#: default shared-account set (strict 2PL serialises conflicting
#: instances, so the measured knee sits below the capacity sweep's).
TRANSACTIONAL_GRID = tuple({"offered_load": load}
                           for load in (1.0, 2.0, 4.0))


@REGISTRY.register("transactional",
                   grid=TRANSACTIONAL_GRID,
                   description="Transactional CA workload: atomic objects, "
                               "strict 2PL locks and recovery under "
                               "concurrent instances, with the "
                               "no-lost-update / locks-released oracles")
def transactional_point(offered_load: float, **options) -> Row:
    """One transactional workload point (see repro.workload.transactional)."""
    return run_transactional_point(offered_load=offered_load, **options)


#: The production-cell grid: three seeds of the open-loop case study,
#: each a fresh fault schedule and blank-arrival trace.
PRODUCTION_CELL_GRID = tuple({"seed": seed} for seed in (2026, 2027, 2028))


@REGISTRY.register("production_cell",
                   grid=PRODUCTION_CELL_GRID,
                   description="Production-cell case study under open-loop "
                               "traffic with seeded device faults, checked "
                               "by the invariant oracles")
def production_cell_point(seed: int, **options) -> Row:
    """One open-loop production-cell run (see repro.productioncell.workload)."""
    return run_production_cell_point(seed=seed, **options)


#: The scale grid: a small sharded-capacity sweep (cheap enough for tests
#: and conformance; the committed ``BENCH_scale.json`` sweeps 10^4 → 10^6
#: through ``repro.bench.baseline --suite scale``).  ``pool_size`` is per
#: shard, so aggregate capacity scales with ``n_shards`` while the
#: offered load and instance count stay deployment totals.
SCALE_SEED = 2026
SCALE_GRID = (
    {"n_instances": 1000, "n_shards": 1, "offered_load": 6.0,
     "pool_size": 8, "seed": SCALE_SEED},
    {"n_instances": 1000, "n_shards": 2, "offered_load": 6.0,
     "pool_size": 8, "seed": SCALE_SEED},
    {"n_instances": 1000, "n_shards": 2, "offered_load": 6.0,
     "pool_size": 8, "seed": SCALE_SEED, "global_max_in_flight": 8},
)


@REGISTRY.register("scale", grid=SCALE_GRID,
                   description="Sharded partition pools: capacity workload "
                               "split across per-shard kernels with merged "
                               "telemetry and global admission leases")
def scale_point(n_instances: int, n_shards: int, offered_load: float,
                **options) -> Row:
    """One sharded capacity point (see repro.workload.sharding)."""
    return run_scale_point(n_instances=n_instances, n_shards=n_shards,
                           offered_load=offered_load, **options)
