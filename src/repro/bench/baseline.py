"""Benchmark baselines: ``BENCH_resolution.json`` / ``BENCH_workload.json`` /
``BENCH_kernel.json``.

Three baseline documents give later PRs a perf trajectory:

* **resolution** — the graph microbenchmark (compiled index build /
  statistics / ``resolve()`` loop, with a naive-scan reference) and the
  wide-graph all-raise storm scenario (simulated totals plus the real
  wall-clock of the run);
* **workload** — the capacity curve (offered-load sweep over the shared
  partition pool, with the saturation-knee verdict) and the mixed-traffic
  soak (heterogeneous mix + fault noise, with the invariant-oracle
  verdict).  All workload rows are deterministic virtual-time quantities,
  so the file diffs meaningfully between PRs.
* **kernel** — the kernel/runtime microbenchmarks (bare-kernel event
  throughput, network message delivery rate, end-to-end capacity
  instances per wall-clock second at three pool scales; see
  :mod:`repro.bench.kernelbench`).  These rows are wall-clock, so they
  vary by machine — compare runs from the same host (CI uploads one per
  push).
* **scale** — the sharded partition-pool capacity sweep
  (:mod:`repro.workload.sharding`): saturation-knee sweeps per shard
  count at 10^4 instances, a global-admission backpressure sweep, the
  10^5-instance scale-out comparison (single shard vs a 4+-shard
  deployment, sequential vs process-pool workers), and a 10^6-instance
  point.  Every row's simulated quantities are deterministic; only the
  ``wall_seconds`` / ``instances_per_second`` fields vary by host.

Usage::

    PYTHONPATH=src python -m repro.bench.baseline [--output PATH] [--parallel]
    PYTHONPATH=src python -m repro.bench.baseline --suite workload \
        --output BENCH_workload.json
    PYTHONPATH=src python -m repro.bench.baseline --suite kernel \
        --output BENCH_kernel.json
    PYTHONPATH=src python -m repro.bench.baseline --suite scale --small \
        --workers 2       # CI smoke: 10^4 instances, 2 shards

CI runs the sequential forms on every push and uploads the JSONs as
artifacts, so perf and capacity regressions are visible per PR.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from typing import Dict, List, Optional, Sequence

from ..cli import add_logging_arguments, configure_logging
from ..workload.scenarios import saturation_knee
from .engine import GridPoint, ScenarioConfig, run_scenario
from .kernelbench import collect_kernel_baseline

#: Bump when the row layout changes incompatibly.
SCHEMA_VERSION = 1

#: The scale suite's fixed parameters: one seed for every sweep, and one
#: per-shard pool size (capacity ``pool/width/service`` = 8 inst/s per
#: shard), so shard count is the only capacity axis in the document.
SCALE_SEED = 2026
SCALE_POOL_SIZE = 16


def registry_listing() -> List[str]:
    """Every registered scenario and traffic action, one block per entry.

    Shared by ``python -m repro.bench.baseline --list`` and
    ``python -m repro.conformance --list`` so both CLIs show the same
    registry view: name, grid size, description and the declared
    parameters a grid point (or a field override) is validated against.
    """
    from ..workload.registry import ACTIONS
    from .engine import REGISTRY

    lines: List[str] = [f"Scenarios ({len(REGISTRY)}):"]
    for name in REGISTRY.names():
        scenario = REGISTRY.get(name)
        lines.append(f"  {name}  [{len(scenario.grid)} grid point(s)]")
        if scenario.description:
            lines.append(f"      {scenario.description}")
        lines.append(f"      params: {scenario.describe_params()}")
    lines.append("")
    lines.append(f"Traffic actions ({len(ACTIONS)}):")
    for name in ACTIONS.names():
        spec = ACTIONS.get(name)
        lines.append(f"  {name}  [{type(spec).__name__}: "
                     f"width={spec.width}, mean_service={spec.mean_service}, "
                     f"raise_probability={spec.raise_probability}, "
                     f"weight={spec.weight}]")
        lines.append(f"      params: {ACTIONS.describe_params(name)}")
    return lines


def collect_resolution_baseline(
        wide_points: Optional[Sequence[GridPoint]] = None,
        micro_points: Optional[Sequence[GridPoint]] = None,
        parallel: bool = False,
        max_workers: Optional[int] = None) -> Dict[str, object]:
    """Run both resolution benchmarks and return the baseline document."""
    return {
        "schema": SCHEMA_VERSION,
        "python": platform.python_version(),
        "wide_graph": run_scenario("wide_graph", points=wide_points,
                                   parallel=parallel,
                                   max_workers=max_workers),
        "graph_microbench": run_scenario("graph_microbench",
                                         points=micro_points,
                                         parallel=parallel,
                                         max_workers=max_workers),
    }


def write_resolution_baseline(path: str,
                              wide_points: Optional[Sequence[GridPoint]] = None,
                              micro_points: Optional[Sequence[GridPoint]] = None,
                              parallel: bool = False,
                              max_workers: Optional[int] = None
                              ) -> Dict[str, object]:
    """Collect the baseline and write it to ``path`` as indented JSON."""
    document = collect_resolution_baseline(wide_points, micro_points,
                                           parallel=parallel,
                                           max_workers=max_workers)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def collect_workload_baseline(
        capacity_points: Optional[Sequence[GridPoint]] = None,
        mixed_points: Optional[Sequence[GridPoint]] = None,
        transactional_points: Optional[Sequence[GridPoint]] = None,
        cell_points: Optional[Sequence[GridPoint]] = None,
        parallel: bool = False,
        max_workers: Optional[int] = None) -> Dict[str, object]:
    """Run the workload benchmarks and return the baseline document.

    The document is fully deterministic (virtual-time only), so the
    committed ``BENCH_workload.json`` changes exactly when behaviour does.
    ``oracle_violations`` keeps its original meaning (mixed-traffic rows
    only); the transactional and production-cell sections carry their own
    violation totals.
    """
    capacity = run_scenario("capacity", points=capacity_points,
                            parallel=parallel, max_workers=max_workers)
    mixed = run_scenario("mixed_traffic", points=mixed_points,
                         parallel=parallel, max_workers=max_workers)
    transactional = run_scenario("transactional",
                                 points=transactional_points,
                                 parallel=parallel, max_workers=max_workers)
    cell = run_scenario("production_cell", points=cell_points,
                        parallel=parallel, max_workers=max_workers)
    return {
        "schema": SCHEMA_VERSION,
        "capacity": capacity,
        "saturation_knee": saturation_knee(capacity),
        "mixed_traffic": mixed,
        "oracle_violations": sum(row["n_violations"] for row in mixed),
        "transactional": transactional,
        "transactional_violations":
            sum(row["n_violations"] for row in transactional),
        "production_cell": cell,
        "production_cell_violations":
            sum(row["n_violations"] for row in cell),
    }


def write_workload_baseline(path: str,
                            capacity_points: Optional[Sequence[GridPoint]] = None,
                            mixed_points: Optional[Sequence[GridPoint]] = None,
                            parallel: bool = False,
                            max_workers: Optional[int] = None
                            ) -> Dict[str, object]:
    """Collect the workload baseline and write it to ``path`` as JSON."""
    document = collect_workload_baseline(capacity_points, mixed_points,
                                         parallel=parallel,
                                         max_workers=max_workers)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def write_kernel_baseline(path: str) -> Dict[str, object]:
    """Collect the kernel microbenchmark baseline and write it to ``path``."""
    document = dict(collect_kernel_baseline())
    document["schema"] = SCHEMA_VERSION
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def collect_scale_baseline(small: bool = False,
                           workers: int = 0) -> Dict[str, object]:
    """Run the sharded-capacity sweep and return the baseline document.

    ``small`` is the CI-smoke variant: 10^4 instances, at most 2 shards,
    no 10^6 point — same document shape, minutes → seconds.  ``workers``
    is the process-pool width used for the explicit parallel-comparison
    row (0 picks 2); the scale-out rows always run sequentially so their
    ``instances_per_second`` is a single-process measurement.

    Simulated quantities (completions, drops, knees, leases) are pure
    functions of ``(SCALE_SEED, plan)``; only the wall-clock fields
    (``wall_seconds``, ``instances_per_second``, ``submitted_per_second``)
    and ``executor``/``workers`` vary by host.
    """
    from ..workload.sharding import ShardedPool, run_scale_point

    pool = ShardedPool(pool_size=SCALE_POOL_SIZE, workers=0)

    # --- 10^4 tier: saturation-knee sweep per shard count --------------
    knee_instances = 10_000
    shard_counts = (1, 2) if small else (1, 2, 4)
    knee_loads = ((4.0, 8.0, 16.0, 24.0) if small
                  else (4.0, 8.0, 12.0, 16.0, 24.0, 32.0))
    knee_tier = {
        "n_instances": knee_instances,
        "loads": list(knee_loads),
        "configs": [
            {"n_shards": count,
             **pool.sweep(knee_loads, seed=SCALE_SEED,
                          n_instances=knee_instances, n_shards=count)}
            for count in shard_counts
        ],
    }

    # --- 10^4 tier: global admission budget below aggregate capacity ---
    # 2 shards hold up to 2 * pool/width = 16 instances in flight; a
    # global budget of 8 must show queueing and drops in the merged
    # admission counters, and the lease history shows the rebalancing.
    backpressure = {
        "n_instances": knee_instances,
        "n_shards": 2,
        "global_max_in_flight": 8,
        **pool.sweep((8.0, 16.0), seed=SCALE_SEED,
                     n_instances=knee_instances, n_shards=2,
                     global_max_in_flight=8),
    }

    # --- scale-out tier: one offered load sized for the widest
    # deployment (0.75 x its aggregate capacity), served by 1..N shards.
    # A single shard is deeply capacity-bound at this load, so its
    # served-instances rate (completed / wall_seconds) collapses; the
    # sharded deployments keep up.  Rows run sequentially (workers=0) so
    # the rates are single-process measurements, then the widest
    # deployment is re-run on a process pool for the parallel speedup
    # (deterministic fields are byte-identical between the two).
    throughput_instances = 10_000 if small else 100_000
    throughput_shards = (1, 2) if small else (1, 2, 4, 8, 16)
    widest = throughput_shards[-1]
    offered_load = 0.75 * widest * pool.capacity_per_shard
    rows = [run_scale_point(n_instances=throughput_instances,
                            n_shards=count, offered_load=offered_load,
                            pool_size=SCALE_POOL_SIZE, seed=SCALE_SEED,
                            workers=0)
            for count in throughput_shards]
    pool_workers = workers or 2
    parallel_row = run_scale_point(n_instances=throughput_instances,
                                   n_shards=widest,
                                   offered_load=offered_load,
                                   pool_size=SCALE_POOL_SIZE,
                                   seed=SCALE_SEED, workers=pool_workers)
    single_rate = rows[0]["instances_per_second"]
    widest_rate = rows[-1]["instances_per_second"]
    throughput_tier = {
        "n_instances": throughput_instances,
        "offered_load": offered_load,
        "rows": rows + [parallel_row],
        # Served-instances rate of the widest deployment over one shard
        # at the same offered load (the scale-out headline).
        "speedup_vs_single_shard": widest_rate / single_rate,
        "speedup_vs_single_shard_parallel":
            parallel_row["instances_per_second"] / single_rate,
        # Process pool over sequential for the same plan.
        "parallel_speedup":
            parallel_row["instances_per_second"] / widest_rate,
    }

    document: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "python": platform.python_version(),
        "small": small,
        "seed": SCALE_SEED,
        "pool_size": SCALE_POOL_SIZE,
        "capacity_per_shard": pool.capacity_per_shard,
        "knee": knee_tier,
        "backpressure": backpressure,
        "throughput": throughput_tier,
    }
    if not small:
        # --- 10^6 tier: one million instances over the widest
        # deployment, run on the process pool (lean telemetry keeps the
        # per-shard memory flat; the merged row is still exact).
        document["million"] = run_scale_point(
            n_instances=1_000_000, n_shards=widest,
            offered_load=offered_load, pool_size=SCALE_POOL_SIZE,
            seed=SCALE_SEED, workers=pool_workers)
    return document


def write_scale_baseline(path: str, small: bool = False,
                         workers: int = 0) -> Dict[str, object]:
    """Collect the scale baseline and write it to ``path`` as JSON."""
    document = collect_scale_baseline(small=small, workers=workers)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


#: Real-backend smoke matrix: every registered real scenario under every
#: resolution algorithm (the figure9 spec wraps the paper's Experiment 1;
#: transactional adds external objects behind an RPC host).
REAL_BACKEND_ALGORITHMS = ("ours", "campbell-randell", "romanovsky96")


def collect_real_backend_baseline(
        scenarios: Optional[Sequence[str]] = None,
        algorithms: Sequence[str] = REAL_BACKEND_ALGORITHMS,
        time_scale: float = 0.02,
        wall_timeout: float = 120.0,
        iterations: int = 1,
        obs_dir: Optional[str] = None) -> Dict[str, object]:
    """Run the real-backend smoke matrix and return the document.

    Rows are oracle-gated (``n_violations`` must be zero), not
    digest-gated: wall-clock pacing makes the message interleavings of a
    real run non-reproducible, but the paper's invariants must hold on
    every one of them.
    """
    from ..net.real.scenarios import REAL_SCENARIOS

    names = list(scenarios) if scenarios else sorted(REAL_SCENARIOS)
    config = ScenarioConfig(backend="real", export_dir=obs_dir,
                            backend_options={"time_scale": time_scale,
                                             "wall_timeout": wall_timeout})
    rows: List[Dict[str, object]] = []
    for name in names:
        points = [{"algorithm": algorithm, "iterations": iterations}
                  for algorithm in algorithms]
        for row in run_scenario(name, points=points, config=config):
            rows.append({"scenario": name, **row})
    return {
        "schema": SCHEMA_VERSION,
        "python": platform.python_version(),
        "backend": "real",
        "time_scale": time_scale,
        "rows": rows,
        "oracle_violations": sum(row["n_violations"] for row in rows),
    }


def write_real_backend_baseline(path: str, **options) -> Dict[str, object]:
    """Collect the real-backend smoke document and write it to ``path``."""
    document = collect_real_backend_baseline(**options)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Write a benchmark baseline JSON.")
    parser.add_argument("--suite",
                        choices=("resolution", "workload", "kernel",
                                 "scale"),
                        default="resolution",
                        help="which baseline to collect "
                             "(default: resolution)")
    parser.add_argument("--output", default=None,
                        help="output path (default: BENCH_<suite>.json)")
    parser.add_argument("--parallel", action="store_true",
                        help="fan the grids out over a process pool")
    parser.add_argument("--workers", type=int, default=0,
                        help="process-pool width for --parallel sweeps "
                             "and the scale suite's parallel rows "
                             "(0 = suite default)")
    parser.add_argument("--small", action="store_true",
                        help="scale suite only: the CI-smoke variant "
                             "(10^4 instances, 2 shards, no 10^6 point)")
    parser.add_argument("--backend", choices=("sim", "real"), default="sim",
                        help="execution backend: 'real' ignores --suite and "
                             "runs the real-process smoke matrix (every "
                             "real scenario x algorithm, oracle-gated)")
    parser.add_argument("--scenario", action="append", default=None,
                        help="real backend only: restrict the matrix to "
                             "this scenario (repeatable)")
    parser.add_argument("--time-scale", type=float, default=0.02,
                        help="real backend only: wall seconds per unit of "
                             "virtual time (default 0.02)")
    parser.add_argument("--wall-timeout", type=float, default=120.0,
                        help="real backend only: hard wall-clock cap per "
                             "run; children are killed on expiry")
    parser.add_argument("--obs-dir", default=None,
                        help="real backend only: write each run's bridged "
                             "obs events as JSONL into this directory "
                             "(CI uploads them on failure)")
    parser.add_argument("--list", action="store_true",
                        help="list every registered scenario and traffic "
                             "action (grid size, description, declared "
                             "params) and exit")
    add_logging_arguments(parser)
    arguments = parser.parse_args(argv)
    configure_logging(arguments)
    if arguments.list:
        for line in registry_listing():
            print(line)
        return 0
    if arguments.backend == "real":
        output = arguments.output or "BENCH_realbackend.json"
        document = write_real_backend_baseline(
            output, scenarios=arguments.scenario,
            time_scale=arguments.time_scale,
            wall_timeout=arguments.wall_timeout,
            obs_dir=arguments.obs_dir)
        rows = document["rows"]
        violations = document["oracle_violations"]
        print(f"wrote {output}: {len(rows)} real-backend rows, "
              f"{violations} oracle violations")
        return 1 if violations else 0
    output = arguments.output or f"BENCH_{arguments.suite}.json"
    max_workers = arguments.workers or None
    if arguments.suite == "kernel":
        document = write_kernel_baseline(output)
        events = document["event_throughput"]
        messages = document["message_delivery"]
        capacity = document["capacity"]
        overhead = document["obs_overhead"]
        print(f"wrote {output}: "
              f"{events['events_per_second']:,.0f} events/s, "
              f"{messages['messages_per_second']:,.0f} messages/s, "
              f"capacity "
              + ", ".join(f"{row['config']} "
                          f"{row['instances_per_second']:,.0f} inst/s"
                          for row in capacity)
              + f"; obs overhead disabled "
              f"{overhead['disabled_overhead']:+.2%} / enabled "
              f"{overhead['enabled_overhead']:+.2%}")
        return 0
    if arguments.suite == "scale":
        document = write_scale_baseline(output, small=arguments.small,
                                        workers=arguments.workers)
        throughput = document["throughput"]
        knees = [(config["n_shards"],
                  config["merged_knee"]["knee_offered_load"])
                 for config in document["knee"]["configs"]]
        backpressure = document["backpressure"]["rows"][-1]["admission"]
        print(f"wrote {output}: knees "
              + ", ".join(f"{count} shard(s) @ {knee}"
                          for count, knee in knees)
              + f"; backpressure queued={backpressure['queued']} "
              f"dropped={backpressure['dropped']}; "
              f"{throughput['n_instances']:,} instances "
              f"{throughput['speedup_vs_single_shard']:.2f}x vs single "
              f"shard ({throughput['speedup_vs_single_shard_parallel']:.2f}x "
              f"with workers)")
        return 0
    if arguments.suite == "workload":
        document = write_workload_baseline(output,
                                           parallel=arguments.parallel,
                                           max_workers=max_workers)
        knee = document["saturation_knee"]
        violations = (document["oracle_violations"]
                      + document["transactional_violations"]
                      + document["production_cell_violations"])
        print(f"wrote {output}: {len(document['capacity'])} capacity rows "
              f"(knee at offered load {knee['knee_offered_load']}), "
              f"{len(document['mixed_traffic'])} mixed-traffic rows, "
              f"{len(document['transactional'])} transactional rows, "
              f"{len(document['production_cell'])} production-cell rows, "
              f"{violations} oracle violations")
        return 0
    document = write_resolution_baseline(output, parallel=arguments.parallel,
                                         max_workers=max_workers)
    micro = document["graph_microbench"]
    wide = document["wide_graph"]
    print(f"wrote {output}: {len(micro)} microbench rows, "
          f"{len(wide)} wide-graph rows")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
