"""Benchmark baselines: ``BENCH_resolution.json`` / ``BENCH_workload.json`` /
``BENCH_kernel.json``.

Three baseline documents give later PRs a perf trajectory:

* **resolution** — the graph microbenchmark (compiled index build /
  statistics / ``resolve()`` loop, with a naive-scan reference) and the
  wide-graph all-raise storm scenario (simulated totals plus the real
  wall-clock of the run);
* **workload** — the capacity curve (offered-load sweep over the shared
  partition pool, with the saturation-knee verdict) and the mixed-traffic
  soak (heterogeneous mix + fault noise, with the invariant-oracle
  verdict).  All workload rows are deterministic virtual-time quantities,
  so the file diffs meaningfully between PRs.
* **kernel** — the kernel/runtime microbenchmarks (bare-kernel event
  throughput, network message delivery rate, end-to-end capacity
  instances per wall-clock second at three pool scales; see
  :mod:`repro.bench.kernelbench`).  These rows are wall-clock, so they
  vary by machine — compare runs from the same host (CI uploads one per
  push).

Usage::

    PYTHONPATH=src python -m repro.bench.baseline [--output PATH] [--parallel]
    PYTHONPATH=src python -m repro.bench.baseline --suite workload \
        --output BENCH_workload.json
    PYTHONPATH=src python -m repro.bench.baseline --suite kernel \
        --output BENCH_kernel.json

CI runs the sequential forms on every push and uploads the JSONs as
artifacts, so perf and capacity regressions are visible per PR.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from typing import Dict, List, Optional, Sequence

from ..workload.scenarios import saturation_knee
from .engine import GridPoint, run_scenario
from .kernelbench import collect_kernel_baseline

#: Bump when the row layout changes incompatibly.
SCHEMA_VERSION = 1


def collect_resolution_baseline(
        wide_points: Optional[Sequence[GridPoint]] = None,
        micro_points: Optional[Sequence[GridPoint]] = None,
        parallel: bool = False) -> Dict[str, object]:
    """Run both resolution benchmarks and return the baseline document."""
    return {
        "schema": SCHEMA_VERSION,
        "python": platform.python_version(),
        "wide_graph": run_scenario("wide_graph", points=wide_points,
                                   parallel=parallel),
        "graph_microbench": run_scenario("graph_microbench",
                                         points=micro_points,
                                         parallel=parallel),
    }


def write_resolution_baseline(path: str,
                              wide_points: Optional[Sequence[GridPoint]] = None,
                              micro_points: Optional[Sequence[GridPoint]] = None,
                              parallel: bool = False) -> Dict[str, object]:
    """Collect the baseline and write it to ``path`` as indented JSON."""
    document = collect_resolution_baseline(wide_points, micro_points,
                                           parallel=parallel)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def collect_workload_baseline(
        capacity_points: Optional[Sequence[GridPoint]] = None,
        mixed_points: Optional[Sequence[GridPoint]] = None,
        parallel: bool = False) -> Dict[str, object]:
    """Run the workload benchmarks and return the baseline document.

    The document is fully deterministic (virtual-time only), so the
    committed ``BENCH_workload.json`` changes exactly when behaviour does.
    """
    capacity = run_scenario("capacity", points=capacity_points,
                            parallel=parallel)
    mixed = run_scenario("mixed_traffic", points=mixed_points,
                         parallel=parallel)
    return {
        "schema": SCHEMA_VERSION,
        "capacity": capacity,
        "saturation_knee": saturation_knee(capacity),
        "mixed_traffic": mixed,
        "oracle_violations": sum(row["n_violations"] for row in mixed),
    }


def write_workload_baseline(path: str,
                            capacity_points: Optional[Sequence[GridPoint]] = None,
                            mixed_points: Optional[Sequence[GridPoint]] = None,
                            parallel: bool = False) -> Dict[str, object]:
    """Collect the workload baseline and write it to ``path`` as JSON."""
    document = collect_workload_baseline(capacity_points, mixed_points,
                                         parallel=parallel)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def write_kernel_baseline(path: str) -> Dict[str, object]:
    """Collect the kernel microbenchmark baseline and write it to ``path``."""
    document = dict(collect_kernel_baseline())
    document["schema"] = SCHEMA_VERSION
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Write a benchmark baseline JSON.")
    parser.add_argument("--suite",
                        choices=("resolution", "workload", "kernel"),
                        default="resolution",
                        help="which baseline to collect "
                             "(default: resolution)")
    parser.add_argument("--output", default=None,
                        help="output path (default: BENCH_<suite>.json)")
    parser.add_argument("--parallel", action="store_true",
                        help="fan the grids out over a process pool")
    arguments = parser.parse_args(argv)
    output = arguments.output or f"BENCH_{arguments.suite}.json"
    if arguments.suite == "kernel":
        document = write_kernel_baseline(output)
        events = document["event_throughput"]
        messages = document["message_delivery"]
        capacity = document["capacity"]
        print(f"wrote {output}: "
              f"{events['events_per_second']:,.0f} events/s, "
              f"{messages['messages_per_second']:,.0f} messages/s, "
              f"capacity "
              + ", ".join(f"{row['config']} "
                          f"{row['instances_per_second']:,.0f} inst/s"
                          for row in capacity))
        return 0
    if arguments.suite == "workload":
        document = write_workload_baseline(output,
                                           parallel=arguments.parallel)
        knee = document["saturation_knee"]
        print(f"wrote {output}: {len(document['capacity'])} capacity rows "
              f"(knee at offered load {knee['knee_offered_load']}), "
              f"{len(document['mixed_traffic'])} mixed-traffic rows, "
              f"{document['oracle_violations']} oracle violations")
        return 0
    document = write_resolution_baseline(output, parallel=arguments.parallel)
    micro = document["graph_microbench"]
    wide = document["wide_graph"]
    print(f"wrote {output}: {len(micro)} microbench rows, "
          f"{len(wide)} wide-graph rows")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
