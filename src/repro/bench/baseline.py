"""Resolution performance baseline: collect and write ``BENCH_resolution.json``.

The file gives later PRs a perf trajectory for the resolution hot path: the
graph microbenchmark (compiled index build / statistics / ``resolve()``
loop, with a naive-scan reference) and the wide-graph all-raise storm
scenario (simulated totals plus the real wall-clock of the run).

Usage::

    PYTHONPATH=src python -m repro.bench.baseline [--output PATH] [--parallel]

CI runs the sequential form on every push and uploads the JSON as an
artifact, so resolution perf regressions are visible per PR.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from typing import Dict, List, Optional, Sequence

from .engine import GridPoint, run_scenario

#: Bump when the row layout changes incompatibly.
SCHEMA_VERSION = 1


def collect_resolution_baseline(
        wide_points: Optional[Sequence[GridPoint]] = None,
        micro_points: Optional[Sequence[GridPoint]] = None,
        parallel: bool = False) -> Dict[str, object]:
    """Run both resolution benchmarks and return the baseline document."""
    return {
        "schema": SCHEMA_VERSION,
        "python": platform.python_version(),
        "wide_graph": run_scenario("wide_graph", points=wide_points,
                                   parallel=parallel),
        "graph_microbench": run_scenario("graph_microbench",
                                         points=micro_points,
                                         parallel=parallel),
    }


def write_resolution_baseline(path: str,
                              wide_points: Optional[Sequence[GridPoint]] = None,
                              micro_points: Optional[Sequence[GridPoint]] = None,
                              parallel: bool = False) -> Dict[str, object]:
    """Collect the baseline and write it to ``path`` as indented JSON."""
    document = collect_resolution_baseline(wide_points, micro_points,
                                           parallel=parallel)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Write the resolution perf baseline JSON.")
    parser.add_argument("--output", default="BENCH_resolution.json",
                        help="output path (default: BENCH_resolution.json)")
    parser.add_argument("--parallel", action="store_true",
                        help="fan the grids out over a process pool")
    arguments = parser.parse_args(argv)
    document = write_resolution_baseline(arguments.output,
                                         parallel=arguments.parallel)
    micro = document["graph_microbench"]
    wide = document["wide_graph"]
    print(f"wrote {arguments.output}: {len(micro)} microbench rows, "
          f"{len(wide)} wide-graph rows")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
