"""Message envelopes carried by the simulated network.

The CA-action protocols (see :mod:`repro.core.messages`) define *payloads*;
the network wraps each payload in an :class:`Envelope` that records the
routing and timing metadata used by metrics and by fault injection.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

_sequence = itertools.count(1)
_next_sequence = _sequence.__next__


class Envelope:
    """A single message in flight between two nodes.

    A hand-written ``__slots__`` class (not a dataclass): one envelope is
    allocated per message sent, which makes its constructor part of the
    network's hot path.

    Attributes
    ----------
    source:
        Name of the sending node.
    destination:
        Name of the receiving node.
    payload:
        The application- or protocol-level message object.
    send_time:
        Virtual time at which the message was handed to the network.
    deliver_time:
        Virtual time at which it will be (or was) placed in the receiver's
        buffer.  ``None`` until the network schedules delivery.
    sequence:
        Globally unique, monotonically increasing identifier; used for
        deterministic tie-breaking and for tracing.
    corrupted:
        Set by fault injection; a corrupted payload must not be trusted by
        the receiver (the signalling algorithm treats it as ``ƒ``).
    """

    __slots__ = ("source", "destination", "payload", "send_time",
                 "deliver_time", "sequence", "corrupted")

    def __init__(self, source: str, destination: str, payload: Any,
                 send_time: float = 0.0,
                 deliver_time: Optional[float] = None,
                 sequence: Optional[int] = None,
                 corrupted: bool = False) -> None:
        self.source = source
        self.destination = destination
        self.payload = payload
        self.send_time = send_time
        self.deliver_time = deliver_time
        self.sequence = _next_sequence() if sequence is None else sequence
        self.corrupted = corrupted

    @property
    def latency(self) -> Optional[float]:
        """Delivery latency, if delivery has been scheduled."""
        if self.deliver_time is None:
            return None
        return self.deliver_time - self.send_time

    def __repr__(self) -> str:
        return (f"<Envelope #{self.sequence} {self.source}->{self.destination} "
                f"{type(self.payload).__name__} t={self.send_time:.3f}>")
