"""Message-passing substrate: nodes, network, latency models, fault injection.

This package models the distributed half of the paper's prototype
architecture (Figure 8): one node per action participant, a message-passing
subsystem based on asynchronous calls, per-node cyclic receive buffers, and
configurable message latency (the ``Tmmax`` parameter of the experiments).
"""

from .faults import NO_FAULTS, FaultPlan, FaultStatistics
from .latency import (
    ConstantLatency,
    LatencyModel,
    PerLinkLatency,
    TruncatedExponentialLatency,
    UniformLatency,
)
from .message import Envelope
from .network import MessageStatistics, Network, UnknownNodeError
from .node import Node
from .rpc import RpcEndpoint, RpcReply, RpcRequest

__all__ = [
    "ConstantLatency",
    "Envelope",
    "FaultPlan",
    "FaultStatistics",
    "LatencyModel",
    "MessageStatistics",
    "Network",
    "NO_FAULTS",
    "Node",
    "PerLinkLatency",
    "RpcEndpoint",
    "RpcReply",
    "RpcRequest",
    "TruncatedExponentialLatency",
    "UniformLatency",
    "UnknownNodeError",
]
