"""Nodes (partitions) of the simulated distributed system.

A :class:`Node` corresponds to one Ada 95 *partition* in the paper's
prototype: it has its own address space (plain Python object state that is
never shared), a cyclic receive buffer, and runs one or more processes on
the shared simulation kernel.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional, TYPE_CHECKING

from ..simkernel.channels import CyclicBuffer
from ..simkernel.kernel import Kernel
from .message import Envelope

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network


class Node:
    """A processing node with a receive buffer.

    Parameters
    ----------
    kernel:
        The shared simulation kernel (time source).
    name:
        Unique node name; used as the network address.
    buffer_capacity:
        Capacity of the cyclic receive buffer (messages).
    """

    def __init__(self, kernel: Kernel, name: str,
                 buffer_capacity: int = 4096) -> None:
        self.kernel = kernel
        self.name = name
        self.inbox: CyclicBuffer = CyclicBuffer(kernel, capacity=buffer_capacity)
        self.network: Optional["Network"] = None
        self.alive = True
        #: Free-form per-node registry used by upper layers (the partition
        #: executive stores itself here so application code co-located on
        #: the node can find it).
        self.services: Dict[str, Any] = {}
        #: Delivery log (envelopes received), useful for debugging/tests.
        #: Bounded for the same reason as ``Network.trace``: a debugging
        #: aid must not grow a long capacity run's memory.
        self.received: Deque[Envelope] = deque(maxlen=4096)

    # ------------------------------------------------------------------
    def attach(self, network: "Network") -> None:
        """Called by the network when the node is registered."""
        self.network = network

    def send(self, destination: str, payload: Any) -> Envelope:
        """Send ``payload`` to the node called ``destination``.

        Sending is asynchronous (the paper's prototype uses asynchronous
        RPC without out-parameters): the call returns immediately with the
        envelope; delivery happens after the network latency.
        """
        if self.network is None:
            raise RuntimeError(f"node {self.name!r} is not attached to a network")
        return self.network.send(self.name, destination, payload)

    def deliver(self, envelope: Envelope) -> None:
        """Called by the network to place a message in the inbox."""
        if not self.alive:
            return
        self.received.append(envelope)
        self.inbox.deliver(envelope)

    def crash(self) -> None:
        """Mark the node as crashed: no further delivery or sending."""
        self.alive = False

    def recover(self) -> None:
        """Bring a crashed node back (its inbox content is preserved)."""
        self.alive = True

    def __repr__(self) -> str:
        status = "up" if self.alive else "crashed"
        return f"<Node {self.name} {status} inbox={len(self.inbox)}>"
