"""The transport abstraction: one message contract, several executors.

Every layer above the network — dispatchers, the signal coordinator,
exception resolution, both baseline algorithms — talks to its transport
through exactly three operations: register a node, look a node up, and
``send`` a payload from one named node to another.  This module states
that contract as an abstract base so the same protocol code can run on
different executors:

* :class:`~repro.net.network.Network` — the deterministic simulation
  transport (virtual time, seeded tie-breaking, fault plans, conformance
  digests);
* :class:`~repro.net.real.realnet.RealNetwork` — the same simulation
  network inside one OS process per node, with non-local destinations
  forwarded over asyncio sockets by the :mod:`repro.net.real` backend
  and wall-clock pacing standing in for the virtual clock.

The contract deliberately mirrors what the sim network already provided;
the point of the interface is that nothing above it may depend on more
(e.g. on reaching into another node's partition state), which is what
makes the protocol code executable across real process boundaries.
"""

from __future__ import annotations

import abc
from typing import Any

from .message import Envelope
from .node import Node


class Transport(abc.ABC):
    """What the runtime requires of a message transport.

    Guarantees implementations must provide (the paper's assumptions):

    * **at-most-once send-side fate**: :meth:`send` either schedules one
      delivery or drops the message (faults, dead node) — it never
      duplicates;
    * **per-link FIFO**: two sends from A to B are delivered in order;
    * **asynchrony**: :meth:`send` returns immediately; delivery happens
      later (virtual latency or real wire time).
    """

    @abc.abstractmethod
    def add_node(self, name: str, buffer_capacity: int = 4096) -> Node:
        """Create and register a node called ``name``."""

    @abc.abstractmethod
    def node(self, name: str) -> Node:
        """Look up a registered node by name."""

    @abc.abstractmethod
    def __contains__(self, name: str) -> bool:
        """Whether a node called ``name`` is registered."""

    @abc.abstractmethod
    def send(self, source: str, destination: str, payload: Any) -> Envelope:
        """Send ``payload``; returns the (already stamped) envelope."""
