"""Latency models for the simulated network.

The paper's experiments are parameterised by ``Tmmax``, the *maximum* time
of message passing between two threads.  The models below all expose a
``bound()`` that reports the value of ``Tmmax`` implied by the model, so the
analytic time bound of Lemma 1 can be evaluated against measured runs.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Tuple

from ..simkernel.rng import SeededStreams


class LatencyModel(abc.ABC):
    """Strategy object mapping a (source, destination) pair to a delay."""

    @abc.abstractmethod
    def sample(self, source: str, destination: str) -> float:
        """Return the one-way delay for a message on this link."""

    @abc.abstractmethod
    def bound(self) -> float:
        """Return ``Tmmax``: an upper bound on any sampled delay."""


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` time units.

    This is the model used when reproducing the paper's experiments, where
    ``Tmmax`` is swept directly.
    """

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.delay = float(delay)

    def sample(self, source: str, destination: str) -> float:
        return self.delay

    def bound(self) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantLatency({self.delay})"


class UniformLatency(LatencyModel):
    """Delays drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float,
                 streams: Optional[SeededStreams] = None) -> None:
        if low < 0 or high < low:
            raise ValueError("require 0 <= low <= high")
        self.low = float(low)
        self.high = float(high)
        self._streams = streams or SeededStreams(0)

    def sample(self, source: str, destination: str) -> float:
        return self._streams.uniform("latency", self.low, self.high)

    def bound(self) -> float:
        return self.high

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class TruncatedExponentialLatency(LatencyModel):
    """Exponential delays truncated at ``cap`` (so a finite Tmmax exists)."""

    def __init__(self, mean: float, cap: float,
                 streams: Optional[SeededStreams] = None) -> None:
        if mean <= 0 or cap <= 0:
            raise ValueError("mean and cap must be positive")
        self.mean = float(mean)
        self.cap = float(cap)
        self._streams = streams or SeededStreams(0)

    def sample(self, source: str, destination: str) -> float:
        value = self._streams.expovariate("latency", 1.0 / self.mean)
        return min(value, self.cap)

    def bound(self) -> float:
        return self.cap

    def __repr__(self) -> str:
        return f"TruncatedExponentialLatency(mean={self.mean}, cap={self.cap})"


class PerLinkLatency(LatencyModel):
    """Different constant delay per (source, destination) pair.

    Useful for modelling asymmetric topologies, e.g. a controller node
    co-located with some devices of the production cell but remote from
    others.
    """

    def __init__(self, default: float,
                 overrides: Optional[Dict[Tuple[str, str], float]] = None) -> None:
        if default < 0:
            raise ValueError("default delay must be non-negative")
        self.default = float(default)
        self.overrides: Dict[Tuple[str, str], float] = dict(overrides or {})
        for key, value in self.overrides.items():
            if value < 0:
                raise ValueError(f"negative delay for link {key}")

    def set_link(self, source: str, destination: str, delay: float) -> None:
        """Set the delay for one directed link."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.overrides[(source, destination)] = float(delay)

    def sample(self, source: str, destination: str) -> float:
        return self.overrides.get((source, destination), self.default)

    def bound(self) -> float:
        if not self.overrides:
            return self.default
        return max(self.default, max(self.overrides.values()))

    def __repr__(self) -> str:
        return f"PerLinkLatency(default={self.default}, links={len(self.overrides)})"
