"""Fault injection for the message-passing substrate.

The resolution algorithm of the paper assumes reliable FIFO messaging
(Assumptions 1 and 2) and explicitly does *not* tolerate node or link
crashes; the signalling algorithm, by contrast, "can be easily extended to
cope with crashes of nodes or communication lines" by treating a corrupted
or lost message as a failure exception ``ƒ``.

This module provides the injection hooks that let the test-suite exercise
both sides: verifying the algorithm under the stated assumptions, and
verifying that the signalling layer degrades to ``ƒ`` when the assumptions
are violated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..simkernel.rng import SeededStreams
from .message import Envelope


@dataclass
class FaultStatistics:
    """Counts of injected faults, for assertions in tests and reports."""

    dropped: int = 0
    corrupted: int = 0
    delayed: int = 0
    blocked_by_crash: int = 0

    def total(self) -> int:
        return self.dropped + self.corrupted + self.delayed + self.blocked_by_crash


class FaultPlan:
    """A deterministic plan of message- and node-level faults.

    Faults can be specified either probabilistically (per-message drop and
    corruption probabilities drawn from a seeded stream) or surgically
    (drop/corrupt the *n*-th message on a given link, crash a node at a
    given time).  Surgical injection is what the tests mostly use, because
    it makes failure scenarios reproducible and targeted.
    """

    def __init__(self, streams: Optional[SeededStreams] = None,
                 drop_probability: float = 0.0,
                 corrupt_probability: float = 0.0) -> None:
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        if not 0.0 <= corrupt_probability <= 1.0:
            raise ValueError("corrupt_probability must be in [0, 1]")
        self._streams = streams or SeededStreams(0)
        self.drop_probability = drop_probability
        self.corrupt_probability = corrupt_probability
        self._drop_nth: Dict[Tuple[str, str], Set[int]] = {}
        self._corrupt_nth: Dict[Tuple[str, str], Set[int]] = {}
        self._extra_delay: Dict[Tuple[str, str], float] = {}
        self._link_counts: Dict[Tuple[str, str], int] = {}
        self._crashed_nodes: Set[str] = set()
        self._crash_times: Dict[str, float] = {}
        self.stats = FaultStatistics()
        self.log: List[str] = []

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------
    def drop_nth_message(self, source: str, destination: str, n: int) -> None:
        """Drop the ``n``-th (1-based) message sent from source to destination."""
        if n < 1:
            raise ValueError("n is 1-based and must be >= 1")
        self._drop_nth.setdefault((source, destination), set()).add(n)

    def corrupt_nth_message(self, source: str, destination: str, n: int) -> None:
        """Corrupt the ``n``-th (1-based) message on the given link."""
        if n < 1:
            raise ValueError("n is 1-based and must be >= 1")
        self._corrupt_nth.setdefault((source, destination), set()).add(n)

    def add_link_delay(self, source: str, destination: str, extra: float) -> None:
        """Add a fixed extra delay to every message on the given link."""
        if extra < 0:
            raise ValueError("extra delay must be non-negative")
        self._extra_delay[(source, destination)] = extra

    def crash_node(self, node: str, at_time: Optional[float] = None) -> None:
        """Mark a node as crashed (optionally from ``at_time`` onwards).

        A crashed node neither sends nor receives messages.
        """
        if at_time is None:
            self._crashed_nodes.add(node)
        else:
            self._crash_times[node] = at_time

    def restore_node(self, node: str) -> None:
        """Undo a crash (used by recovery-oriented tests)."""
        self._crashed_nodes.discard(node)
        self._crash_times.pop(node, None)

    # ------------------------------------------------------------------
    # Queries used by the network
    # ------------------------------------------------------------------
    def is_crashed(self, node: str, now: float) -> bool:
        """True if ``node`` is considered crashed at virtual time ``now``."""
        if node in self._crashed_nodes:
            return True
        crash_at = self._crash_times.get(node)
        return crash_at is not None and now >= crash_at

    def apply(self, envelope: Envelope, now: float) -> Tuple[bool, float]:
        """Decide the fate of ``envelope``.

        Returns ``(deliver, extra_delay)``.  May also set
        ``envelope.corrupted``.  Updates the fault statistics.
        """
        link = (envelope.source, envelope.destination)
        count = self._link_counts.get(link, 0) + 1
        self._link_counts[link] = count

        if self.is_crashed(envelope.source, now) or self.is_crashed(
                envelope.destination, now):
            self.stats.blocked_by_crash += 1
            self.log.append(f"blocked {envelope!r} (crashed endpoint)")
            return False, 0.0

        if count in self._drop_nth.get(link, ()):  # surgical drop
            self.stats.dropped += 1
            self.log.append(f"dropped {envelope!r} (surgical #{count})")
            return False, 0.0

        if self.drop_probability and \
                self._streams.random("drop") < self.drop_probability:
            self.stats.dropped += 1
            self.log.append(f"dropped {envelope!r} (probabilistic)")
            return False, 0.0

        if count in self._corrupt_nth.get(link, ()):  # surgical corruption
            envelope.corrupted = True
            self.stats.corrupted += 1
            self.log.append(f"corrupted {envelope!r} (surgical #{count})")
        elif self.corrupt_probability and \
                self._streams.random("corrupt") < self.corrupt_probability:
            envelope.corrupted = True
            self.stats.corrupted += 1
            self.log.append(f"corrupted {envelope!r} (probabilistic)")

        extra = self._extra_delay.get(link, 0.0)
        if extra:
            self.stats.delayed += 1
        return True, extra


#: A fault plan that never injects anything — the default for experiments
#: reproducing the paper's figures, which assume a reliable network.
NO_FAULTS = FaultPlan()
