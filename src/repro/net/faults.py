"""Fault injection for the message-passing substrate.

The resolution algorithm of the paper assumes reliable FIFO messaging
(Assumptions 1 and 2) and explicitly does *not* tolerate node or link
crashes; the signalling algorithm, by contrast, "can be easily extended to
cope with crashes of nodes or communication lines" by treating a corrupted
or lost message as a failure exception ``ƒ``.

This module provides the injection hooks that let the test-suite exercise
both sides: verifying the algorithm under the stated assumptions, and
verifying that the signalling layer degrades to ``ƒ`` when the assumptions
are violated.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..simkernel.rng import SeededStreams
from .message import Envelope


@dataclass
class FaultStatistics:
    """Counts of injected faults, for assertions in tests and reports."""

    dropped: int = 0
    corrupted: int = 0
    delayed: int = 0
    blocked_by_crash: int = 0

    def total(self) -> int:
        return self.dropped + self.corrupted + self.delayed + self.blocked_by_crash


#: The surgical fault kinds a :class:`FaultDirective` can describe.
DIRECTIVE_KINDS = ("drop_nth", "corrupt_nth", "delay_link", "delay_type",
                   "delay_nth", "crash", "restore")

#: Directive kinds that keep the paper's Assumptions 1 and 2 intact: they
#: only *delay* messages (delivery stays exactly-once, uncorrupted, FIFO).
#: Plans built solely from these may legitimately be held to the
#: algorithms' full safety *and* liveness guarantees.  (``restore`` on its
#: own blocks nothing; the crash it undoes carries the violation.)
DELIVERY_PRESERVING_KINDS = frozenset({"delay_link", "delay_type",
                                       "delay_nth", "restore"})


@dataclass(frozen=True)
class FaultDirective:
    """One serializable fault-injection instruction.

    A directive is the unit the fault-space explorer samples, shrinks and
    replays: a plan is a sequence of directives plus a seed, and
    :meth:`FaultPlan.from_directives` rebuilds an identical plan from them.

    Fields are interpreted per ``kind``:

    * ``drop_nth`` / ``corrupt_nth`` — drop/corrupt the ``n``-th message on
      the ``source``→``destination`` link;
    * ``delay_link`` — add ``extra`` delay to every message on the link;
    * ``delay_type`` — add ``extra`` delay to messages on the link whose
      payload type name is ``type_name``;
    * ``delay_nth`` — add ``extra`` delay to the ``n``-th message on the
      link;
    * ``crash`` — crash node ``node`` (from ``at_time`` onwards if given);
    * ``restore`` — revive node ``node`` (from ``at_time`` onwards if
      given, immediately otherwise), masking its earlier crash.
    """

    kind: str
    source: str = ""
    destination: str = ""
    n: int = 0
    extra: float = 0.0
    type_name: str = ""
    node: str = ""
    at_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in DIRECTIVE_KINDS:
            raise ValueError(f"unknown directive kind {self.kind!r}; "
                             f"choose from {DIRECTIVE_KINDS}")

    @property
    def preserves_delivery(self) -> bool:
        """True if this directive only delays (Assumptions 1/2 hold)."""
        return self.kind in DELIVERY_PRESERVING_KINDS

    def to_dict(self) -> Dict[str, Any]:
        """A compact JSON-serializable form (defaults omitted)."""
        blank = FaultDirective(kind=self.kind)
        return {key: value for key, value in asdict(self).items()
                if key == "kind" or value != getattr(blank, key)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultDirective":
        """Rebuild a directive from :meth:`to_dict` output."""
        return cls(**data)

    def describe(self) -> str:
        """A one-line human-readable rendering (used by shrink reports)."""
        if self.kind == "crash":
            when = "" if self.at_time is None else f" at t={self.at_time:g}"
            return f"crash {self.node}{when}"
        if self.kind == "restore":
            when = "" if self.at_time is None else f" at t={self.at_time:g}"
            return f"restore {self.node}{when}"
        link = f"{self.source}->{self.destination}"
        if self.kind == "drop_nth":
            return f"drop message #{self.n} on {link}"
        if self.kind == "corrupt_nth":
            return f"corrupt message #{self.n} on {link}"
        if self.kind == "delay_link":
            return f"delay every message on {link} by {self.extra:g}"
        if self.kind == "delay_nth":
            return f"delay message #{self.n} on {link} by {self.extra:g}"
        return (f"delay {self.type_name} messages on {link} "
                f"by {self.extra:g}")


class FaultPlan:
    """A deterministic plan of message- and node-level faults.

    Faults can be specified either probabilistically (per-message drop and
    corruption probabilities drawn from a seeded stream) or surgically
    (drop/corrupt the *n*-th message on a given link, crash a node at a
    given time).  Surgical injection is what the tests mostly use, because
    it makes failure scenarios reproducible and targeted.
    """

    def __init__(self, streams: Optional[SeededStreams] = None,
                 drop_probability: float = 0.0,
                 corrupt_probability: float = 0.0) -> None:
        self._streams = streams or SeededStreams(0)
        self._drop_probability = 0.0
        self._corrupt_probability = 0.0
        self._drop_nth: Dict[Tuple[str, str], Set[int]] = {}
        self._corrupt_nth: Dict[Tuple[str, str], Set[int]] = {}
        self._extra_delay: Dict[Tuple[str, str], float] = {}
        self._type_delay: Dict[Tuple[str, str, str], float] = {}
        self._nth_delay: Dict[Tuple[str, str], Dict[int, float]] = {}
        self._link_counts: Dict[Tuple[str, str], int] = {}
        self._crashed_nodes: Set[str] = set()
        self._crash_times: Dict[str, float] = {}
        self._restore_times: Dict[str, float] = {}
        self.stats = FaultStatistics()
        self.log: List[str] = []
        #: The surgical directives this plan was built from, in application
        #: order (probabilistic parameters are serialized separately).
        self.directives: List[FaultDirective] = []
        #: True while the plan cannot affect any message, letting
        #: :meth:`apply` take a constant-time fast path.  Every mutator
        #: (including the probability property setters) refreshes it, so
        #: faults added mid-run deactivate it.
        self._passive = True
        self.drop_probability = drop_probability
        self.corrupt_probability = corrupt_probability
        self._refresh_passive()

    @property
    def drop_probability(self) -> float:
        """Per-message drop probability (assignable at any time)."""
        return self._drop_probability

    @drop_probability.setter
    def drop_probability(self, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        self._drop_probability = value
        self._refresh_passive()

    @property
    def corrupt_probability(self) -> float:
        """Per-message corruption probability (assignable at any time)."""
        return self._corrupt_probability

    @corrupt_probability.setter
    def corrupt_probability(self, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ValueError("corrupt_probability must be in [0, 1]")
        self._corrupt_probability = value
        self._refresh_passive()

    def _refresh_passive(self) -> None:
        """Recompute the fast-path flag after any plan mutation.

        Subclasses (tests build surgical plans by overriding ``apply`` or
        the crash queries) are never passive: only an exact
        :class:`FaultPlan` with no probabilities, directives or crashes is
        guaranteed to leave every message untouched.
        """
        self._passive = type(self) is FaultPlan and not (
            self.drop_probability or self.corrupt_probability
            or self._drop_nth or self._corrupt_nth or self._extra_delay
            or self._type_delay or self._nth_delay
            or self._crashed_nodes or self._crash_times)

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------
    def drop_nth_message(self, source: str, destination: str, n: int) -> None:
        """Drop the ``n``-th (1-based) message sent from source to destination."""
        if n < 1:
            raise ValueError("n is 1-based and must be >= 1")
        self._drop_nth.setdefault((source, destination), set()).add(n)
        self.directives.append(FaultDirective(
            "drop_nth", source=source, destination=destination, n=n))
        self._refresh_passive()

    def corrupt_nth_message(self, source: str, destination: str, n: int) -> None:
        """Corrupt the ``n``-th (1-based) message on the given link."""
        if n < 1:
            raise ValueError("n is 1-based and must be >= 1")
        self._corrupt_nth.setdefault((source, destination), set()).add(n)
        self.directives.append(FaultDirective(
            "corrupt_nth", source=source, destination=destination, n=n))
        self._refresh_passive()

    def add_link_delay(self, source: str, destination: str, extra: float) -> None:
        """Add a fixed extra delay to every message on the given link."""
        if extra < 0:
            raise ValueError("extra delay must be non-negative")
        self._extra_delay[(source, destination)] = extra
        self.directives.append(FaultDirective(
            "delay_link", source=source, destination=destination, extra=extra))
        self._refresh_passive()

    def delay_message_type(self, source: str, destination: str,
                           type_name: str, extra: float) -> None:
        """Add a fixed extra delay to messages of one payload type on a link.

        ``type_name`` is the class name of the envelope payload (e.g.
        ``"CommitMessage"``), matching the keys of
        :class:`~repro.net.network.MessageStatistics` ``by_type`` counters.
        This is the generalisation of the hand-crafted Commit-delaying plan
        that exposed the lost-Commit abortion race.
        """
        if extra < 0:
            raise ValueError("extra delay must be non-negative")
        if not type_name:
            raise ValueError("type_name must be non-empty")
        self._type_delay[(source, destination, type_name)] = extra
        self.directives.append(FaultDirective(
            "delay_type", source=source, destination=destination,
            type_name=type_name, extra=extra))
        self._refresh_passive()

    def delay_nth_message(self, source: str, destination: str, n: int,
                          extra: float) -> None:
        """Add a fixed extra delay to the ``n``-th (1-based) message on a link."""
        if n < 1:
            raise ValueError("n is 1-based and must be >= 1")
        if extra < 0:
            raise ValueError("extra delay must be non-negative")
        self._nth_delay.setdefault((source, destination), {})[n] = extra
        self.directives.append(FaultDirective(
            "delay_nth", source=source, destination=destination, n=n,
            extra=extra))
        self._refresh_passive()

    def crash_node(self, node: str, at_time: Optional[float] = None) -> None:
        """Mark a node as crashed (optionally from ``at_time`` onwards).

        A crashed node neither sends nor receives messages.
        """
        if at_time is None:
            self._crashed_nodes.add(node)
        else:
            self._crash_times[node] = at_time
        self.directives.append(FaultDirective("crash", node=node,
                                              at_time=at_time))
        self._refresh_passive()

    def restore_node(self, node: str,
                     at_time: Optional[float] = None) -> None:
        """Undo a crash, immediately or from ``at_time`` onwards.

        Recorded as its own ``restore`` directive — the earlier ``crash``
        stays in the plan's history, so serialization replays the same
        crash-then-restore sequence (and ``preserves_delivery`` still
        reports the crash) instead of pretending it never happened.

        A timed restore masks the node's crash for every virtual time at
        or after ``at_time``: crash at ``t1`` plus restore at ``t2 > t1``
        models an outage window ``[t1, t2)``.  At most one crash/restore
        wave per node is expressible — a later restore masks every
        earlier crash of that node from its time onward.
        """
        if at_time is None:
            self._crashed_nodes.discard(node)
            self._crash_times.pop(node, None)
            self._restore_times.pop(node, None)
        else:
            self._restore_times[node] = at_time
        self.directives.append(FaultDirective("restore", node=node,
                                              at_time=at_time))
        self._refresh_passive()

    def apply_directive(self, directive: FaultDirective) -> None:
        """Apply one :class:`FaultDirective` to this plan."""
        if directive.kind == "drop_nth":
            self.drop_nth_message(directive.source, directive.destination,
                                  directive.n)
        elif directive.kind == "corrupt_nth":
            self.corrupt_nth_message(directive.source, directive.destination,
                                     directive.n)
        elif directive.kind == "delay_link":
            self.add_link_delay(directive.source, directive.destination,
                                directive.extra)
        elif directive.kind == "delay_type":
            self.delay_message_type(directive.source, directive.destination,
                                    directive.type_name, directive.extra)
        elif directive.kind == "delay_nth":
            self.delay_nth_message(directive.source, directive.destination,
                                   directive.n, directive.extra)
        elif directive.kind == "crash":
            self.crash_node(directive.node, directive.at_time)
        else:  # "restore" — __post_init__ guarantees the kind is known
            self.restore_node(directive.node, directive.at_time)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable description of the plan's *construction*.

        Captures the surgical directives and the probabilistic parameters
        (with the seed of the plan's streams), not the mutable runtime
        bookkeeping: :meth:`from_dict` on the result builds a plan that
        behaves identically on the same message sequence.
        """
        return {
            "seed": self._streams.seed,
            "drop_probability": self.drop_probability,
            "corrupt_probability": self.corrupt_probability,
            "directives": [d.to_dict() for d in self.directives],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        plan = cls(streams=SeededStreams(data.get("seed", 0)),
                   drop_probability=data.get("drop_probability", 0.0),
                   corrupt_probability=data.get("corrupt_probability", 0.0))
        for directive in data.get("directives", ()):
            plan.apply_directive(FaultDirective.from_dict(directive))
        return plan

    @classmethod
    def from_directives(cls, directives: Iterable[FaultDirective],
                        **kwargs: Any) -> "FaultPlan":
        """Build a plan by applying ``directives`` in order."""
        plan = cls(**kwargs)
        for directive in directives:
            plan.apply_directive(directive)
        return plan

    def preserves_delivery(self) -> bool:
        """True if this plan cannot drop, corrupt or block any message.

        Such plans stay within the paper's Assumptions 1 and 2, so the
        resolution algorithm's full guarantees apply and any stranded
        thread found under them is a protocol bug, not a violated
        assumption.
        """
        return (self.drop_probability == 0.0
                and self.corrupt_probability == 0.0
                and all(d.preserves_delivery for d in self.directives))

    # ------------------------------------------------------------------
    # Queries used by the network
    # ------------------------------------------------------------------
    def count_link(self, link: Tuple[str, str]) -> int:
        """Advance and return the 1-based message ordinal of ``link``.

        The single owner of the per-link ordinals that the surgical
        ``*_nth`` directives key on: :meth:`apply` calls it for every
        message, and the network's inline passive fast path calls it
        directly, so the bookkeeping cannot diverge between the two.
        """
        count = self._link_counts.get(link, 0) + 1
        self._link_counts[link] = count
        return count

    def is_crashed(self, node: str, now: float) -> bool:
        """True if ``node`` is considered crashed at virtual time ``now``."""
        restore_at = self._restore_times.get(node)
        if restore_at is not None and now >= restore_at:
            return False
        if node in self._crashed_nodes:
            return True
        crash_at = self._crash_times.get(node)
        return crash_at is not None and now >= crash_at

    def apply(self, envelope: Envelope, now: float) -> Tuple[bool, float]:
        """Decide the fate of ``envelope``.

        Returns ``(deliver, extra_delay)``.  May also set
        ``envelope.corrupted``.  Updates the fault statistics.
        """
        link = (envelope.source, envelope.destination)
        count = self.count_link(link)

        if self._passive:
            # The plan has no probabilities, directives or crashes that
            # could touch this (or any) message.  The link count above is
            # still maintained so a directive added mid-run sees the true
            # message ordinals.
            return True, 0.0

        if self.is_crashed(envelope.source, now) or self.is_crashed(
                envelope.destination, now):
            self.stats.blocked_by_crash += 1
            self.log.append(f"blocked {envelope!r} (crashed endpoint)")
            return False, 0.0

        if count in self._drop_nth.get(link, ()):  # surgical drop
            self.stats.dropped += 1
            self.log.append(f"dropped {envelope!r} (surgical #{count})")
            return False, 0.0

        if self.drop_probability and \
                self._streams.random("drop") < self.drop_probability:
            self.stats.dropped += 1
            self.log.append(f"dropped {envelope!r} (probabilistic)")
            return False, 0.0

        if count in self._corrupt_nth.get(link, ()):  # surgical corruption
            envelope.corrupted = True
            self.stats.corrupted += 1
            self.log.append(f"corrupted {envelope!r} (surgical #{count})")
        elif self.corrupt_probability and \
                self._streams.random("corrupt") < self.corrupt_probability:
            envelope.corrupted = True
            self.stats.corrupted += 1
            self.log.append(f"corrupted {envelope!r} (probabilistic)")

        extra = self._extra_delay.get(link, 0.0)
        extra += self._type_delay.get(
            (envelope.source, envelope.destination,
             type(envelope.payload).__name__), 0.0)
        extra += self._nth_delay.get(link, {}).get(count, 0.0)
        if extra:
            self.stats.delayed += 1
            self.log.append(f"delayed {envelope!r} by {extra:g}")
        return True, extra


#: A fault plan that never injects anything — the default for experiments
#: reproducing the paper's figures, which assume a reliable network.
NO_FAULTS = FaultPlan()
