"""Asynchronous remote procedure calls over the simulated network.

The paper's prototype implements its message-passing subsystem with
"asynchronous remote procedure calls (without out parameters)".  This module
provides the equivalent: a node can expose named procedures, and any other
node can invoke them one-way.  A thin request/reply convenience layer is
also provided (used by the external-object transaction protocol), built from
two one-way calls, because some substrates genuinely need an answer.

Failure semantics (what :meth:`RpcEndpoint.call` promises):

* with a ``timeout``, a request or reply lost to a fault plan or a dead
  destination fails the returned event with :class:`RpcTimeoutError` and
  removes the pending-reply entry — the caller never hangs and nothing
  leaks;
* a reply that arrives *after* its call timed out (or that was never
  solicited) is ignored, not an error;
* call ids are drawn from a per-endpoint counter, so replay determinism
  never depends on what else ran earlier in the process.
"""

from __future__ import annotations

import itertools
import logging
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..simkernel.events import Event, Timeout
from ..simkernel.kernel import Kernel
from .network import Network
from .node import Node

logger = logging.getLogger(__name__)


class RpcTimeoutError(RuntimeError):
    """A call's reply did not arrive within the caller's timeout."""


@dataclass
class RpcRequest:
    """One-way invocation of ``procedure`` with positional ``args``.

    ``call_id`` 0 means "unassigned"; endpoints stamp outgoing requests
    from their own counter (see :meth:`RpcEndpoint._next_call_id`).
    """

    procedure: str
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    call_id: int = 0
    reply_to: Optional[str] = None
    expects_reply: bool = False


@dataclass
class RpcReply:
    """Reply to a request that asked for one."""

    call_id: int
    value: Any = None
    error: Optional[str] = None


class RpcEndpoint:
    """Attaches RPC dispatch to a node.

    By default the endpoint owns the node's inbox-draining process:
    incoming :class:`RpcRequest` envelopes are dispatched to registered
    handlers; anything else is passed to the ``fallback`` callable (the
    CA-action partition executive registers itself as the fallback so
    protocol messages flow to it).

    With ``drain=False`` no process is spawned: the endpoint only attaches
    itself under ``node.services["rpc"]`` and an external inbox consumer
    (the partition :class:`~repro.runtime.dispatcher.Dispatcher`) is
    expected to route RPC payloads to :meth:`handle_payload`.  This lets a
    partition act as an RPC client/server without competing with its own
    dispatcher for the inbox.
    """

    def __init__(self, node: Node, network: Network,
                 fallback: Optional[Callable[[Any], None]] = None,
                 drain: bool = True) -> None:
        self.node = node
        self.network = network
        self.kernel: Kernel = node.kernel
        self.fallback = fallback
        self._procedures: Dict[str, Callable[..., Any]] = {}
        self._pending_replies: Dict[int, Event] = {}
        #: Per-endpoint call-id counter: ids are deterministic for a given
        #: call sequence regardless of whatever else ran in the process.
        self._call_ids = itertools.count(1)
        self._dispatcher = None
        if drain:
            self._dispatcher = self.kernel.process(
                self._dispatch_loop(), name=f"rpc-dispatch:{node.name}")
        node.services["rpc"] = self

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def register(self, name: str, handler: Callable[..., Any]) -> None:
        """Expose ``handler`` under ``name`` for remote invocation.

        A handler may return an untriggered :class:`Event` to defer its
        reply: the endpoint then answers when the event fires (with the
        event's value, or with the failure's message as the remote error).
        """
        if name in self._procedures:
            raise ValueError(f"procedure {name!r} already registered")
        self._procedures[name] = handler

    def unregister(self, name: str) -> None:
        """Remove a previously registered procedure."""
        self._procedures.pop(name, None)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def call_oneway(self, destination: str, procedure: str,
                    *args: Any, **kwargs: Any) -> None:
        """Invoke a remote procedure without waiting for any result."""
        request = RpcRequest(procedure=procedure, args=args, kwargs=kwargs,
                             call_id=next(self._call_ids))
        self.network.send(self.node.name, destination, request)

    def call(self, destination: str, procedure: str, *args: Any,
             timeout: Optional[float] = None, **kwargs: Any) -> Event:
        """Invoke a remote procedure and return an event for the reply.

        The returned event fires with the reply value, or fails with a
        ``RuntimeError`` carrying the remote error message.  With a
        ``timeout`` (virtual time units), a reply that has not arrived in
        time fails the event with :class:`RpcTimeoutError` and drops the
        pending entry, so a request or reply lost to a fault plan (or a
        dead destination) cannot hang the caller or leak bookkeeping; a
        late reply after the timeout is ignored.
        """
        request = RpcRequest(procedure=procedure, args=args, kwargs=kwargs,
                             call_id=next(self._call_ids),
                             reply_to=self.node.name, expects_reply=True)
        reply_event = self.kernel.event()
        self._pending_replies[request.call_id] = reply_event
        self.network.send(self.node.name, destination, request)
        if timeout is not None:
            def _expire(_event, call_id=request.call_id,
                        destination=destination, procedure=procedure):
                pending = self._pending_replies.pop(call_id, None)
                if pending is not None and not pending.triggered:
                    pending.fail(RpcTimeoutError(
                        f"call #{call_id} {procedure!r} to {destination!r} "
                        f"timed out after {timeout}"))
            Timeout(self.kernel, timeout).callbacks.append(_expire)
        return reply_event

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle_payload(self, payload: Any) -> bool:
        """Route one received RPC payload; True if it was one.

        External inbox consumers (``drain=False`` endpoints) call this for
        payloads they recognise as RPC traffic.
        """
        if isinstance(payload, RpcRequest):
            self._handle_request(payload)
            return True
        if isinstance(payload, RpcReply):
            self._handle_reply(payload)
            return True
        return False

    def _dispatch_loop(self):
        while True:
            envelope = yield self.node.inbox.get()
            payload = envelope.payload
            if not self.handle_payload(payload) and self.fallback is not None:
                self.fallback(envelope)
            # Messages with no handler and no fallback are dropped silently;
            # the network statistics still recorded them.

    def _handle_request(self, request: RpcRequest) -> None:
        handler = self._procedures.get(request.procedure)
        if handler is None:
            if request.expects_reply and request.reply_to:
                self.network.send(self.node.name, request.reply_to,
                                  RpcReply(request.call_id, error=
                                           f"unknown procedure {request.procedure!r}"))
            return
        try:
            value = handler(*request.args, **request.kwargs)
            error = None
        except Exception as exc:  # deliberate broad catch: errors cross nodes
            value, error = None, f"{type(exc).__name__}: {exc}"
            if not (request.expects_reply and request.reply_to):
                # A one-way call has nowhere to report its failure; without
                # this it would vanish entirely.
                self._report_oneway_failure(request, error)
        if request.expects_reply and request.reply_to:
            if error is None and isinstance(value, Event) \
                    and not value.triggered:
                # Deferred reply: answer when the handler's event fires.
                value.callbacks.append(self._deferred_replier(request))
                return
            self.network.send(self.node.name, request.reply_to,
                              RpcReply(request.call_id, value=value, error=error))

    def _deferred_replier(self, request: RpcRequest) -> Callable[[Event], None]:
        def _reply(event: Event) -> None:
            if event.ok:
                value, error = event.value, None
            else:
                event.defused = True
                exc = event.value
                value, error = None, f"{type(exc).__name__}: {exc}"
            self.network.send(self.node.name, request.reply_to,
                              RpcReply(request.call_id, value=value,
                                       error=error))
        return _reply

    def _report_oneway_failure(self, request: RpcRequest, error: str) -> None:
        logger.warning("one-way RPC %r on node %s failed: %s",
                       request.procedure, self.node.name, error)
        obs = self.network._obs
        if obs is not None:
            obs.rpc_failure(self.node.name, request.procedure, error)

    def _handle_reply(self, reply: RpcReply) -> None:
        # Unknown call ids — unsolicited replies, or replies arriving after
        # their call timed out — are ignored by design.
        event = self._pending_replies.pop(reply.call_id, None)
        if event is None or event.triggered:
            return
        if reply.error is None:
            event.succeed(reply.value)
        else:
            event.fail(RuntimeError(reply.error))
