"""Asynchronous remote procedure calls over the simulated network.

The paper's prototype implements its message-passing subsystem with
"asynchronous remote procedure calls (without out parameters)".  This module
provides the equivalent: a node can expose named procedures, and any other
node can invoke them one-way.  A thin request/reply convenience layer is
also provided (used by the external-object transaction protocol), built from
two one-way calls, because some substrates genuinely need an answer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..simkernel.events import Event
from ..simkernel.kernel import Kernel
from .network import Network
from .node import Node

_call_ids = itertools.count(1)


@dataclass
class RpcRequest:
    """One-way invocation of ``procedure`` with positional ``args``."""

    procedure: str
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    call_id: int = field(default_factory=lambda: next(_call_ids))
    reply_to: Optional[str] = None
    expects_reply: bool = False


@dataclass
class RpcReply:
    """Reply to a request that asked for one."""

    call_id: int
    value: Any = None
    error: Optional[str] = None


class RpcEndpoint:
    """Attaches RPC dispatch to a node.

    The endpoint owns the node's inbox-draining process: incoming
    :class:`RpcRequest` envelopes are dispatched to registered handlers;
    anything else is passed to the ``fallback`` callable (the CA-action
    partition executive registers itself as the fallback so protocol
    messages flow to it).
    """

    def __init__(self, node: Node, network: Network,
                 fallback: Optional[Callable[[Any], None]] = None) -> None:
        self.node = node
        self.network = network
        self.kernel: Kernel = node.kernel
        self.fallback = fallback
        self._procedures: Dict[str, Callable[..., Any]] = {}
        self._pending_replies: Dict[int, Event] = {}
        self._dispatcher = self.kernel.process(
            self._dispatch_loop(), name=f"rpc-dispatch:{node.name}")
        node.services["rpc"] = self

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def register(self, name: str, handler: Callable[..., Any]) -> None:
        """Expose ``handler`` under ``name`` for remote invocation."""
        if name in self._procedures:
            raise ValueError(f"procedure {name!r} already registered")
        self._procedures[name] = handler

    def unregister(self, name: str) -> None:
        """Remove a previously registered procedure."""
        self._procedures.pop(name, None)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def call_oneway(self, destination: str, procedure: str,
                    *args: Any, **kwargs: Any) -> None:
        """Invoke a remote procedure without waiting for any result."""
        request = RpcRequest(procedure=procedure, args=args, kwargs=kwargs)
        self.network.send(self.node.name, destination, request)

    def call(self, destination: str, procedure: str,
             *args: Any, **kwargs: Any) -> Event:
        """Invoke a remote procedure and return an event for the reply.

        The returned event fires with the reply value, or fails with a
        ``RuntimeError`` carrying the remote error message.
        """
        request = RpcRequest(procedure=procedure, args=args, kwargs=kwargs,
                             reply_to=self.node.name, expects_reply=True)
        reply_event = self.kernel.event()
        self._pending_replies[request.call_id] = reply_event
        self.network.send(self.node.name, destination, request)
        return reply_event

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch_loop(self):
        while True:
            envelope = yield self.node.inbox.get()
            payload = envelope.payload
            if isinstance(payload, RpcRequest):
                self._handle_request(payload)
            elif isinstance(payload, RpcReply):
                self._handle_reply(payload)
            elif self.fallback is not None:
                self.fallback(envelope)
            # Messages with no handler and no fallback are dropped silently;
            # the network statistics still recorded them.

    def _handle_request(self, request: RpcRequest) -> None:
        handler = self._procedures.get(request.procedure)
        if handler is None:
            if request.expects_reply and request.reply_to:
                self.network.send(self.node.name, request.reply_to,
                                  RpcReply(request.call_id, error=
                                           f"unknown procedure {request.procedure!r}"))
            return
        try:
            value = handler(*request.args, **request.kwargs)
            error = None
        except Exception as exc:  # deliberate broad catch: errors cross nodes
            value, error = None, f"{type(exc).__name__}: {exc}"
        if request.expects_reply and request.reply_to:
            self.network.send(self.node.name, request.reply_to,
                              RpcReply(request.call_id, value=value, error=error))

    def _handle_reply(self, reply: RpcReply) -> None:
        event = self._pending_replies.pop(reply.call_id, None)
        if event is None:
            return
        if reply.error is None:
            event.succeed(reply.value)
        else:
            event.fail(RuntimeError(reply.error))
