"""The simulated communication network.

Guarantees provided (matching the paper's assumptions):

* **Assumption 1 — dependable communication**: unless a
  :class:`~repro.net.faults.FaultPlan` says otherwise, every message sent is
  delivered exactly once, uncorrupted.
* **Assumption 2 — FIFO links**: two messages from node A to node B are
  delivered in the order they were sent, even if the latency model would
  assign the second a shorter delay (delivery times are clamped to be
  non-decreasing per directed link).

The network also keeps per-category message counters, which the complexity
benchmarks (Theorem 2, Section 3.2.3) read.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Dict, Iterable, List, Optional

from ..simkernel.events import Timeout
from ..simkernel.kernel import Kernel
from .faults import FaultPlan
from .latency import ConstantLatency, LatencyModel
from .message import Envelope
from .node import Node
from .transport import Transport


class UnknownNodeError(KeyError):
    """Raised when sending to or registering a node name that is unknown."""


class MessageStatistics:
    """Message counters kept by the network.

    ``by_type`` counts envelopes by the class name of their payload, which
    is how the benchmarks distinguish protocol messages (``Exception``,
    ``Suspended``, ``Commit``, ``ToBeSignalled``) from application traffic.
    """

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.by_type: Dict[str, int] = defaultdict(int)
        self.by_link: Dict[tuple, int] = defaultdict(int)

    # NB: :meth:`Network.send` updates these counters inline (one method
    # call per message was measurable); the record_* methods below are the
    # reference implementation for external producers — keep the two in
    # sync when changing the accounting.
    def record_sent(self, envelope: Envelope) -> None:
        self.sent += 1
        self.by_type[type(envelope.payload).__name__] += 1
        self.by_link[(envelope.source, envelope.destination)] += 1

    def record_delivered(self, envelope: Envelope) -> None:
        self.delivered += 1

    def record_dropped(self, envelope: Envelope) -> None:
        self.dropped += 1

    def count(self, *type_names: str) -> int:
        """Total number of sent messages whose payload type is in ``type_names``."""
        return sum(self.by_type.get(name, 0) for name in type_names)

    def protocol_messages(self) -> int:
        """Messages belonging to the exception-handling protocols.

        Counts the new algorithm's messages, the signalling algorithm's
        messages and the baseline algorithms' messages, so comparisons
        between algorithms are like for like.
        """
        return self.count("ExceptionMessage", "SuspendedMessage",
                          "CommitMessage", "ToBeSignalledMessage",
                          "CRForwardMessage", "CRResolvedMessage",
                          "CRConfirmMessage", "AgreementMessage",
                          "ConfirmMessage")

    def resolution_messages(self) -> int:
        """Messages belonging to the resolution protocols only (no signalling)."""
        return self.count("ExceptionMessage", "SuspendedMessage",
                          "CommitMessage", "CRForwardMessage",
                          "CRResolvedMessage", "CRConfirmMessage",
                          "AgreementMessage", "ConfirmMessage")

    def reset(self) -> None:
        """Zero every counter (used between benchmark phases)."""
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.by_type.clear()
        self.by_link.clear()

    #: Separator used when encoding a directed link as a single string.
    LINK_SEPARATOR = "->"

    @classmethod
    def encode_link(cls, link: tuple) -> str:
        """Encode a ``(source, destination)`` link as ``"src->dst"``."""
        return f"{link[0]}{cls.LINK_SEPARATOR}{link[1]}"

    @classmethod
    def decode_link(cls, link: Any) -> tuple:
        """Decode a link key from either tuple or ``"src->dst"`` string form."""
        if isinstance(link, tuple):
            return link
        source, separator, destination = str(link).partition(cls.LINK_SEPARATOR)
        if not separator:
            raise ValueError(f"malformed link key {link!r}")
        return (source, destination)

    def snapshot(self) -> Dict[str, Any]:
        """Return a plain-dict copy of every counter.

        The snapshot is a self-contained value that is both picklable and
        JSON-serializable — links are encoded as ``"src->dst"`` strings so
        benchmark rows containing snapshots can be written to ``BENCH_*``
        JSON files.  :meth:`restore` rebuilds a statistics object from one
        and :meth:`merge` adds one onto another (both accept tuple-keyed
        legacy snapshots as well).  The scenario engine itself isolates
        parallel runs by giving each grid point a fresh system — these
        methods exist for tooling that wants to aggregate such per-run
        counters.
        """
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "by_type": dict(self.by_type),
            "by_link": {self.encode_link(link): count
                        for link, count in self.by_link.items()},
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Reset the counters to the values captured in ``snapshot``."""
        self.reset()
        self.merge(snapshot)

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Add the counters captured in ``snapshot`` onto this instance.

        Used to aggregate the per-run statistics returned by parallel
        scenario workers into one summary.  ``by_link`` keys may be either
        ``(source, destination)`` tuples or ``"src->dst"`` strings.
        """
        self.sent += snapshot.get("sent", 0)
        self.delivered += snapshot.get("delivered", 0)
        self.dropped += snapshot.get("dropped", 0)
        for name, count in snapshot.get("by_type", {}).items():
            self.by_type[name] += count
        for link, count in snapshot.get("by_link", {}).items():
            self.by_link[self.decode_link(link)] += count


class Network(Transport):
    """Connects nodes and delivers messages with configurable latency.

    Parameters
    ----------
    kernel:
        The shared simulation kernel.
    latency:
        Latency model; defaults to zero-delay delivery.
    faults:
        Fault-injection plan; defaults to a fresh no-fault plan.
    """

    #: Minimal spacing enforced between same-link deliveries when the
    #: kernel's seeded tie perturbation is active (see :meth:`send`).
    FIFO_EPSILON = 1e-9

    #: Ring size for the default (bounded) envelope trace.  Any consumer
    #: that needs every envelope of an arbitrarily long run — the
    #: explorer's canonical traces, conformance digests — must construct
    #: the network with ``keep_trace=True``.
    TRACE_CAPACITY = 4096

    def __init__(self, kernel: Kernel,
                 latency: Optional[LatencyModel] = None,
                 faults: Optional[FaultPlan] = None,
                 keep_trace: bool = False) -> None:
        self.kernel = kernel
        self.latency = latency or ConstantLatency(0.0)
        self.faults = faults or FaultPlan()
        self.nodes: Dict[str, Node] = {}
        self.stats = MessageStatistics()
        #: Last scheduled delivery time per directed link, used to enforce
        #: FIFO even under non-deterministic latency.
        self._link_clock: Dict[tuple, float] = {}
        #: Envelope trace in send order.  Bounded by default so long
        #: capacity runs stay flat in memory; ``keep_trace=True`` retains
        #: everything for replay checking and canonical digests.
        self.keep_trace = keep_trace
        self.trace: Any = ([] if keep_trace
                           else deque(maxlen=self.TRACE_CAPACITY))
        #: The attached observation sink (``repro.obs``), or ``None`` when
        #: observability is off — the hot path then pays one None check.
        self._obs = None

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_node(self, name: str, buffer_capacity: int = 4096) -> Node:
        """Create and register a node called ``name``."""
        if name in self.nodes:
            raise ValueError(f"node {name!r} already exists")
        node = Node(self.kernel, name, buffer_capacity=buffer_capacity)
        node.attach(self)
        self.nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self.nodes[name]
        except KeyError:
            raise UnknownNodeError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self.nodes

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, source: str, destination: str, payload: Any) -> Envelope:
        """Send ``payload`` from ``source`` to ``destination``.

        Returns the envelope (already stamped with the scheduled delivery
        time unless it was dropped).  This is the network's hot path — one
        call per message — so the per-message statistics are recorded
        inline and the kernel internals are reached directly.
        """
        nodes = self.nodes
        if source not in nodes:
            raise UnknownNodeError(source)
        if destination not in nodes:
            raise UnknownNodeError(destination)

        kernel = self.kernel
        now = kernel._now
        envelope = Envelope(source, destination, payload, now)
        stats = self.stats
        stats.sent += 1
        stats.by_type[type(payload).__name__] += 1
        link = (source, destination)
        stats.by_link[link] += 1
        self.trace.append(envelope)
        obs = self._obs
        if obs is not None:
            obs.message_sent(envelope)

        faults = self.faults
        if faults._passive:
            # FaultPlan.apply's fast path, minus the call: a passive plan
            # can touch no message, but the link ordinals advance through
            # the plan's own accessor so mid-run directives stay exact.
            faults.count_link(link)
            extra_delay = 0.0
        else:
            deliver, extra_delay = faults.apply(envelope, now)
            if not deliver:
                stats.dropped += 1
                if obs is not None:
                    obs.message_dropped(envelope, "fault")
                return envelope

        # NB: sample and extra delay are summed *before* adding ``now`` —
        # float addition is not associative, and the conformance digests
        # pin the exact historical association.
        deliver_at = now + (self.latency.sample(source, destination)
                            + extra_delay)
        # FIFO clamp: never deliver before a previously sent message on the
        # same directed link.
        last = self._link_clock.get(link)
        if last is not None:
            if deliver_at < last:
                deliver_at = last
            if deliver_at == last and kernel._tie_random is not None:
                # Under seeded tie perturbation, same-timestamp deliveries
                # on one link could be reordered, which would break
                # Assumption 2.  Keep per-link delivery times strictly
                # increasing so schedule exploration never leaves the FIFO
                # envelope.
                deliver_at += self.FIFO_EPSILON
        elif deliver_at < 0.0:
            deliver_at = 0.0
        self._link_clock[link] = deliver_at
        envelope.deliver_time = deliver_at

        def _deliver(_event, env=envelope, obs=obs):
            target = nodes.get(env.destination)
            if target is None or not target.alive:
                stats.dropped += 1
                if obs is not None:
                    obs.message_dropped(env, "dead_target")
                return
            stats.delivered += 1
            if obs is not None:
                obs.message_delivered(env)
            target.deliver(env)

        Timeout(kernel, deliver_at - now).callbacks.append(_deliver)
        return envelope

    def broadcast(self, source: str, destinations: Iterable[str],
                  payload: Any) -> List[Envelope]:
        """Send ``payload`` from ``source`` to every name in ``destinations``.

        The sender itself is silently skipped if present in the list, which
        matches the protocols' "send to all other threads" phrasing.
        """
        envelopes = []
        for destination in destinations:
            if destination == source:
                continue
            envelopes.append(self.send(source, destination, payload))
        return envelopes

    # ------------------------------------------------------------------
    def reset_statistics(self) -> None:
        """Zero the message counters (used between benchmark phases)."""
        self.stats.reset()

    def __repr__(self) -> str:
        return (f"<Network nodes={len(self.nodes)} latency={self.latency!r} "
                f"sent={self.stats.sent}>")
