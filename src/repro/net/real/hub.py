"""The parent-side message hub of the real backend.

The hub is a plain asyncio TCP server on localhost.  Every child node
process opens one connection, identifies itself with a ``hello`` frame,
and from then on all cross-node runtime messages travel child → hub →
child as ``msg`` frames (a star topology: children never dial each
other, which keeps connection management and crash handling in one
place).  The hub also sequences the run:

1. wait until every node said ``hello``;
2. broadcast ``start`` (children begin their wall-clock-paced kernels);
3. wait until every live node reported ``done`` (its local programs
   finished) *and* no message has crossed the wire for a settle window;
4. broadcast ``finalize`` — children drain their kernels unpaced and
   answer with a ``final`` frame carrying their monitor record;
5. collect the ``final`` frames.

A broken connection marks the node dead: its pending frames are dropped
(that *is* the crash semantics — a killed process loses its messages)
and the done/final barriers stop waiting for it.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Iterable, Set

from .framing import FrameDecoder, encode_frame


class Hub:
    """Frame router + run sequencer for one real-backend run."""

    def __init__(self, nodes: Iterable[str], settle: float = 0.5,
                 stall: float = 5.0) -> None:
        self.nodes = tuple(nodes)
        #: Wall-clock seconds the wire must stay silent (after all nodes
        #: are done) before the run is considered quiescent.
        self.settle = settle
        #: Degraded quiescence: once a node died, survivors may wait
        #: forever on its messages (the paper's liveness assumes
        #: delivery), so ``stall`` seconds of wire silence finalizes the
        #: run even though not everyone reported done.
        self.stall = stall
        self.writers: Dict[str, asyncio.StreamWriter] = {}
        self.done: Set[str] = set()
        self.dead: Set[str] = set()
        self.finals: Dict[str, Dict[str, Any]] = {}
        #: Cross-node frames routed / dropped because the target died.
        self.forwarded = 0
        self.dropped_to_dead = 0
        self._traffic_at = 0.0
        self._connected = asyncio.Event()

    # ------------------------------------------------------------------
    def _covered(self, *pools: Set[str]) -> bool:
        return all(any(node in pool for pool in pools)
                   for node in self.nodes)

    def mark_dead(self, node: str) -> None:
        """Treat ``node`` as crashed (connection lost or process died)."""
        if node in self.finals or node in self.dead:
            return
        self.dead.add(node)
        self.writers.pop(node, None)
        # A fully-dead fleet must not leave the barriers waiting.
        if self._covered(set(self.writers), self.dead):
            self._connected.set()

    # ------------------------------------------------------------------
    async def handle_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        loop = asyncio.get_running_loop()
        node = None
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                for frame in decoder.feed(data):
                    kind = frame.get("kind")
                    if kind == "hello":
                        node = frame["node"]
                        self.writers[node] = writer
                        if self._covered(set(self.writers), self.dead):
                            self._connected.set()
                    elif kind == "msg":
                        self._traffic_at = loop.time()
                        target = self.writers.get(frame["dst"])
                        if target is None:
                            self.dropped_to_dead += 1
                        else:
                            target.write(encode_frame(frame))
                            await target.drain()
                    elif kind == "done" and node is not None:
                        self.done.add(node)
                    elif kind == "final" and node is not None:
                        self.finals[node] = frame["record"]
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Run teardown: the server is closing while this client is
            # still connected — treat it like a disconnect, quietly.
            pass
        finally:
            if node is not None and node not in self.finals:
                self.mark_dead(node)
            try:
                writer.close()
            except Exception:
                pass

    # ------------------------------------------------------------------
    def broadcast(self, frame: Dict[str, Any]) -> None:
        payload = encode_frame(frame)
        for writer in list(self.writers.values()):
            try:
                writer.write(payload)
            except Exception:
                pass

    # ------------------------------------------------------------------
    async def wait_connected(self) -> None:
        await self._connected.wait()

    async def wait_quiescent(self) -> None:
        """All live nodes done, then a settle window of wire silence.

        With dead nodes in the fleet the done barrier may never be met
        (survivors can block forever on the dead node's messages), so a
        longer ``stall`` silence window also counts as quiescence.
        """
        loop = asyncio.get_running_loop()
        if not self._traffic_at:
            self._traffic_at = loop.time()
        while True:
            quiet = loop.time() - self._traffic_at
            if self._covered(self.done, self.dead):
                if quiet >= self.settle:
                    return
                await asyncio.sleep(max(self.settle - quiet, 0.01))
            elif self.dead and quiet >= self.stall:
                return
            else:
                await asyncio.sleep(0.02)

    async def wait_finals(self) -> None:
        while not self._covered(set(self.finals), self.dead):
            await asyncio.sleep(0.02)
