"""The per-process transport of the real backend.

Each child process builds the *full* system — every partition exists as
a stub so bindings, participant sets, and instance-key allocation stay
identical to the sim build — but spawns only its local node's program.
:class:`RealNetwork` keeps intra-process traffic on the ordinary sim
path and forwards everything addressed to a non-local node over the
wire: the sender stamps the envelope with the virtual delivery time its
latency model dictates, and the receiving process injects it no earlier
than that virtual time (clamped to its local clock and per-link FIFO),
so cross-process timing matches the sim schedule up to wall-clock
jitter.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Set

from ...simkernel.events import Timeout
from ...simkernel.kernel import Kernel
from ..faults import FaultPlan
from ..latency import LatencyModel
from ..message import Envelope
from ..network import Network

#: forwarder(source, destination, payload, send_vt, deliver_vt)
Forwarder = Callable[[str, str, Any, float, float], None]


class RealNetwork(Network):
    """Sim network for local nodes + wire forwarding for remote ones."""

    def __init__(self, kernel: Kernel, latency: Optional[LatencyModel],
                 local: Iterable[str], forward: Forwarder,
                 faults: Optional[FaultPlan] = None) -> None:
        super().__init__(kernel, latency=latency, faults=faults)
        #: Node names whose delivery happens in this process.
        self.local: Set[str] = set(local)
        self._forward = forward

    # ------------------------------------------------------------------
    def send(self, source: str, destination: str, payload: Any) -> Envelope:
        if destination in self.local:
            return super().send(source, destination, payload)
        # Remote destination: stamp the envelope exactly as the sim would
        # and hand it to the wire.  The receiver enforces arrival no
        # earlier than ``deliver_time`` on its own clock.
        now = self.kernel._now
        envelope = Envelope(source, destination, payload, now)
        self.stats.sent += 1
        self.stats.by_type[type(payload).__name__] += 1
        self.stats.by_link[(source, destination)] += 1
        self.trace.append(envelope)
        obs = self._obs
        if obs is not None:
            obs.message_sent(envelope)
        deliver_at = now + self.latency.sample(source, destination)
        envelope.deliver_time = deliver_at
        self._forward(source, destination, payload, now, deliver_at)
        return envelope

    # ------------------------------------------------------------------
    def inject(self, source: str, destination: str, payload: Any,
               deliver_vt: float) -> None:
        """Schedule delivery of a wire message into a local node.

        ``deliver_vt`` is the sender's virtual delivery time; it is
        clamped to this process's clock (wire latency may have outrun
        the wall-clock pacing) and to per-link FIFO.
        """
        kernel = self.kernel
        now = kernel._now
        envelope = Envelope(source, destination, payload, now)
        link = (source, destination)
        deliver_at = max(deliver_vt, now)
        last = self._link_clock.get(link)
        if last is not None and deliver_at < last:
            deliver_at = last
        self._link_clock[link] = deliver_at
        envelope.deliver_time = deliver_at
        stats = self.stats
        obs = self._obs

        def _deliver(_event, env=envelope):
            target = self.nodes.get(env.destination)
            if target is None or not target.alive:
                stats.dropped += 1
                if obs is not None:
                    obs.message_dropped(env, "dead_target")
                return
            stats.delivered += 1
            if obs is not None:
                obs.message_delivered(env)
            target.deliver(env)

        Timeout(kernel, deliver_at - now).callbacks.append(_deliver)
