"""Boot, drive, and evaluate a real-backend run.

:class:`RealBackend` spawns one OS process per scenario node (via
``multiprocessing``'s *spawn* context so children re-import the code
tree instead of forking kernel state), runs the parent hub, enforces a
hard wall-clock timeout, and merges the children's ``final`` records
into one oracle evaluation.  :func:`assemble_result` is shared with
:func:`~repro.net.real.scenarios.run_sim` so both backends produce the
identical :class:`RealRunResult` shape — the object the parity tests
compare field by field.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import sys
import time
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ...core import oracles
from ...core.oracles import OracleViolation
from ..network import MessageStatistics
from .host import run_node
from .hub import Hub
from .scenarios import REAL_SCENARIOS, RealScenarioSpec, spec_params


class RealBackendError(RuntimeError):
    """The real backend could not complete a run (timeout, dead fleet...)."""


@dataclass
class RealRunResult:
    """Outcome of one scenario run, identical in shape on both backends."""

    scenario: str
    backend: str
    params: Dict[str, Any]
    #: Oracle violations over the merged records ([] == run passed).
    violations: List[OracleViolation]
    #: (action, status) -> number of concluded participations.
    outcomes: Dict[Tuple[str, str], int]
    #: Merged message-statistics snapshot.
    stats: Dict[str, Any]
    #: The raw per-node records ("sim" is the single key on the sim backend).
    records: Dict[str, Dict[str, Any]]
    #: Nodes whose process died / connection dropped before finalizing.
    crashed: List[str] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def outcome_counts(self) -> Dict[Tuple[str, str], int]:
        return dict(self.outcomes)


# ----------------------------------------------------------------------
# Record merging and oracle evaluation (hub side)
# ----------------------------------------------------------------------
def merge_records(records: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-node records into one system-wide view for the oracles."""
    resolutions: Dict[Any, List[Any]] = defaultdict(list)
    outcomes: Dict[Any, int] = defaultdict(int)
    quiescence: List[Any] = []
    counters: List[Dict[str, Any]] = []
    locks_held: Dict[str, List[Any]] = defaultdict(list)
    locks_waiting: Dict[str, List[Any]] = defaultdict(list)
    finished: List[str] = []
    events: List[Dict[str, Any]] = []
    stats = MessageStatistics()
    for _, record in sorted(records.items()):
        for key, entries in record.get("resolutions", {}).items():
            resolutions[key].extend(entries)
        for key, count in record.get("outcomes", {}).items():
            outcomes[key] += count
        quiescence.extend(record.get("quiescence", ()))
        counters.extend(record.get("counters", ()))
        for name, holders in record.get("locks_held", {}).items():
            locks_held[name].extend(holders)
        for name, waiters in record.get("locks_waiting", {}).items():
            locks_waiting[name].extend(waiters)
        finished.extend(record.get("finished_txns", ()))
        events.extend(record.get("obs_events", ()))
        stats.merge(record.get("stats", {}))
    return {
        "resolutions": dict(resolutions),
        "outcomes": dict(outcomes),
        "quiescence": quiescence,
        "counters": counters,
        "locks_held": dict(locks_held),
        "locks_waiting": dict(locks_waiting),
        "finished_txns": finished,
        "obs_events": events,
        "stats": stats.snapshot(),
    }


def evaluate_merged(merged: Dict[str, Any],
                    require_liveness: bool = True) -> List[OracleViolation]:
    """The InvariantMonitor's oracle catalogue over a merged record."""
    violations: List[OracleViolation] = []
    violations.extend(oracles.check_agreement(merged["resolutions"]))
    violations.extend(oracles.check_exactly_one_outcome(
        merged["outcomes"], require_completion=require_liveness))
    if require_liveness:
        violations.extend(
            oracles.check_no_stranded_thread(merged["quiescence"]))
        violations.extend(
            oracles.check_abortion_atomic(merged["quiescence"]))
    if merged["counters"]:
        violations.extend(oracles.check_no_lost_updates(merged["counters"]))
    if merged["locks_held"] or merged["locks_waiting"]:
        violations.extend(oracles.check_locks_released(
            merged["locks_held"], merged["locks_waiting"],
            merged["finished_txns"]))
    return violations


def outcome_counts(merged: Dict[str, Any]) -> Dict[Tuple[str, str], int]:
    """(action, status) conclusion counts from the bridged obs events."""
    counts: Counter = Counter()
    for event in merged["obs_events"]:
        if event.get("kind") == "action.concluded":
            counts[(event.get("action"), event.get("status"))] += 1
    return dict(counts)


def assemble_result(spec: RealScenarioSpec, backend: str,
                    records: Dict[str, Dict[str, Any]],
                    crashed: List[str], wall_time: float,
                    params: Optional[Dict[str, Any]] = None,
                    require_liveness: Optional[bool] = None) -> RealRunResult:
    if require_liveness is None:
        # A run with injected crashes is allowed to strand participations
        # (the paper's liveness guarantees assume delivery).
        require_liveness = spec.require_liveness and not crashed
    merged = merge_records(records)
    return RealRunResult(
        scenario=spec.name, backend=backend, params=dict(params or {}),
        violations=evaluate_merged(merged, require_liveness),
        outcomes=outcome_counts(merged), stats=merged["stats"],
        records=records, crashed=sorted(crashed), wall_time=wall_time)


# ----------------------------------------------------------------------
# The process-spawning runner
# ----------------------------------------------------------------------
class RealBackend:
    """Run registered real scenarios across one OS process per node."""

    def __init__(self, time_scale: float = 0.05, wall_timeout: float = 120.0,
                 settle: float = 0.5, stall: float = 5.0) -> None:
        #: Wall seconds per unit of virtual time in the children.
        self.time_scale = time_scale
        #: Hard cap on the whole run; on expiry every child is killed and
        #: :class:`RealBackendError` is raised.
        self.wall_timeout = wall_timeout
        self.settle = settle
        #: Degraded-quiescence silence window after a crash (see Hub).
        self.stall = stall

    # ------------------------------------------------------------------
    def run(self, scenario: str,
            kill: Optional[Tuple[str, float]] = None,
            **overrides: Any) -> RealRunResult:
        """Run ``scenario``; ``kill=(node, wall_delay)`` injects a crash."""
        spec = REAL_SCENARIOS[scenario]
        params = spec_params(spec, overrides)
        return asyncio.run(self._run(spec, params, kill))

    # ------------------------------------------------------------------
    async def _run(self, spec: RealScenarioSpec, params: Dict[str, Any],
                   kill: Optional[Tuple[str, float]]) -> RealRunResult:
        loop = asyncio.get_running_loop()
        started_at = time.monotonic()
        hub = Hub(spec.nodes, settle=self.settle, stall=self.stall)
        server = await asyncio.start_server(hub.handle_client,
                                            "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        context = multiprocessing.get_context("spawn")
        processes = {}
        for node in spec.nodes:
            process = context.Process(
                target=_child_main,
                args=("127.0.0.1", port, spec.name, node, params,
                      self.time_scale, list(sys.path)),
                daemon=True, name=f"repro-{spec.name}-{node}")
            process.start()
            processes[node] = process
        reaper = loop.create_task(self._reap_dead(hub, processes))
        try:
            await asyncio.wait_for(self._drive(hub, processes, kill),
                                   timeout=self.wall_timeout)
        except asyncio.TimeoutError:
            raise RealBackendError(
                f"real backend run of {spec.name!r} exceeded the "
                f"{self.wall_timeout}s wall-clock timeout "
                f"(done={sorted(hub.done)}, dead={sorted(hub.dead)}, "
                f"finals={sorted(hub.finals)})")
        finally:
            reaper.cancel()
            server.close()
            await server.wait_closed()
            for process in processes.values():
                if process.is_alive():
                    process.kill()
            for process in processes.values():
                process.join(timeout=5)
        if not hub.finals:
            raise RealBackendError(
                f"no node of {spec.name!r} returned a final record "
                f"(dead={sorted(hub.dead)})")
        return assemble_result(spec, "real", hub.finals, sorted(hub.dead),
                               time.monotonic() - started_at, params=params)

    # ------------------------------------------------------------------
    async def _drive(self, hub: Hub, processes: Dict[str, Any],
                     kill: Optional[Tuple[str, float]]) -> None:
        await hub.wait_connected()
        hub.broadcast({"kind": "start"})
        killer = None
        if kill is not None:
            node, delay = kill
            killer = asyncio.get_running_loop().create_task(
                self._kill_later(processes, node, delay))
        try:
            await hub.wait_quiescent()
            hub.broadcast({"kind": "finalize"})
            await hub.wait_finals()
        finally:
            if killer is not None:
                killer.cancel()

    async def _kill_later(self, processes: Dict[str, Any], node: str,
                          delay: float) -> None:
        await asyncio.sleep(delay)
        process = processes.get(node)
        if process is not None and process.is_alive():
            process.kill()

    async def _reap_dead(self, hub: Hub, processes: Dict[str, Any]) -> None:
        """Mark nodes whose process died without closing the socket."""
        while True:
            await asyncio.sleep(0.1)
            for node, process in processes.items():
                if not process.is_alive() and node not in hub.finals:
                    hub.mark_dead(node)


def _child_main(host: str, port: int, scenario: str, node: str,
                params: Dict[str, Any], time_scale: float,
                parent_path: List[str]) -> None:
    """Spawn target: restore the parent's import path, then run the node."""
    for entry in parent_path:
        if entry not in sys.path:
            sys.path.append(entry)
    run_node(host, port, scenario, node, params, time_scale)
