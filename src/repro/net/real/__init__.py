"""``repro.net.real`` — the real-process transport backend.

Runs the same runtime protocol code as the sim kernel across real OS
processes: one process per partition-pool node, length-prefixed framed
messages over localhost sockets (the parent hub is an asyncio server;
children use a ``selectors``-based pump so the discrete-event kernel can
interleave with socket I/O), wall-clock pacing standing in for virtual
time, and crash injection by killing a child process.

Entry points:

* :class:`~repro.net.real.backend.RealBackend` — boot a registered real
  scenario across processes, bridge ``repro.obs`` events back, merge
  monitor records, and evaluate the invariant oracles at the hub;
* :func:`~repro.net.real.scenarios.run_sim` — the same scenario spec on
  the deterministic sim kernel in one process, returning the same result
  shape (this is what the backend-parity tests compare against).
"""

from __future__ import annotations

from .backend import RealBackend, RealBackendError, RealRunResult
from .scenarios import REAL_SCENARIOS, RealScenarioSpec, run_real, run_sim

__all__ = ["RealBackend", "RealBackendError", "RealRunResult",
           "REAL_SCENARIOS", "RealScenarioSpec", "run_real", "run_sim"]
