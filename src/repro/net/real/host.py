"""Child-process entry point of the real backend.

Each node process builds its view of the scenario (see
:mod:`repro.net.real.scenarios`), connects to the parent hub, and runs
the *deterministic sim kernel* paced against the wall clock: an event
scheduled at virtual time ``t`` executes no earlier than
``start + t * time_scale`` seconds of real time.  Between kernel steps
the process pumps its hub socket with ``select`` — wire messages are
injected into the local :class:`~repro.net.real.realnet.RealNetwork`
honouring the sender's virtual delivery stamp.

The kernel is single-threaded and generator-based, which is exactly why
the child does **not** use asyncio: a blocking ``select`` between steps
is the whole event loop it needs.
"""

from __future__ import annotations

import select
import socket
import time
from typing import Any, Dict, Optional

from .framing import FrameDecoder, encode_frame

#: Safety cap on the unpaced drain after ``finalize`` (a healthy run
#: needs a few hundred steps; a livelocked one must not hang the child).
FINALIZE_STEP_CAP = 100_000

#: Longest single wait between socket polls while idle (seconds).
_POLL = 0.05


class _HubLink:
    """Blocking socket + framing to the parent hub."""

    def __init__(self, host: str, port: int) -> None:
        self.sock = socket.create_connection((host, port))
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.decoder = FrameDecoder()
        self.closed = False

    def send(self, frame: Dict[str, Any]) -> None:
        if self.closed:
            return
        try:
            self.sock.sendall(encode_frame(frame))
        except OSError:
            self.closed = True

    def poll(self, timeout: float):
        """Frames that arrived within ``timeout`` seconds (maybe none)."""
        if self.closed:
            time.sleep(timeout)
            return []
        ready, _, _ = select.select([self.sock], [], [], timeout)
        if not ready:
            return []
        try:
            data = self.sock.recv(65536)
        except OSError:
            self.closed = True
            return []
        if not data:
            self.closed = True
            return []
        return list(self.decoder.feed(data))


def _programs_finished(system) -> bool:
    programs = getattr(system, "_programs", [])
    return all(process.triggered for process in programs)


def run_node(host: str, port: int, scenario: str, node: str,
             params: Dict[str, Any], time_scale: float) -> None:
    """Run one node of ``scenario`` against the hub at ``host:port``.

    This is the ``multiprocessing`` (spawn) target: everything it needs
    arrives as picklable arguments and the scenario registry is resolved
    by name inside the child.
    """
    from .scenarios import REAL_SCENARIOS, collect_record, spec_params

    link = _HubLink(host, port)
    spec = REAL_SCENARIOS[scenario]
    built = spec.build(spec_params(spec, params), node,
                       lambda src, dst, payload, send_vt, deliver_vt:
                       link.send({"kind": "msg", "src": src, "dst": dst,
                                  "payload": payload, "send_vt": send_vt,
                                  "deliver_vt": deliver_vt}))
    system = built.system
    kernel = system.kernel
    network = system.network

    link.send({"kind": "hello", "node": node})

    # Hold the kernel until every node is connected, so no early message
    # races another child's registration at the hub.
    started = False
    while not started and not link.closed:
        for frame in link.poll(_POLL):
            if frame.get("kind") == "start":
                started = True

    start_wall = time.monotonic()
    done_sent = False
    finalizing = False
    while started and not finalizing and not link.closed:
        for frame in link.poll(0):
            kind = frame.get("kind")
            if kind == "msg":
                network.inject(frame["src"], frame["dst"],
                               frame["payload"], frame["deliver_vt"])
            elif kind == "finalize":
                finalizing = True
        if finalizing:
            break
        if not done_sent and _programs_finished(system):
            link.send({"kind": "done", "node": node})
            done_sent = True
        next_vt = kernel.peek()
        if next_vt == float("inf"):
            # Nothing scheduled locally: wait for the wire.
            for frame in link.poll(_POLL):
                if frame.get("kind") == "msg":
                    network.inject(frame["src"], frame["dst"],
                                   frame["payload"], frame["deliver_vt"])
                elif frame.get("kind") == "finalize":
                    finalizing = True
            continue
        wait = start_wall + next_vt * time_scale - time.monotonic()
        if wait > 0:
            for frame in link.poll(min(wait, _POLL)):
                if frame.get("kind") == "msg":
                    network.inject(frame["src"], frame["dst"],
                                   frame["payload"], frame["deliver_vt"])
                elif frame.get("kind") == "finalize":
                    finalizing = True
            continue
        kernel.step()

    # Finalize: drain the local schedule unpaced, then ship the record.
    steps = 0
    while kernel.peek() != float("inf") and steps < FINALIZE_STEP_CAP:
        kernel.step()
        steps += 1
    record = collect_record(built, local=node)
    record["finalize_steps"] = steps
    link.send({"kind": "final", "node": node, "record": record})
    # Leave the socket open briefly so the final frame flushes before the
    # process exits (the hub closes the connection once it has read it).
    link.poll(0.2)
