"""Length-prefixed frames for the real-backend wire protocol.

Every frame is a 4-byte big-endian length followed by a pickled plain
object (dicts of primitives plus the runtime's picklable message
dataclasses).  Pickle is acceptable here because both ends of every
connection are processes of the same trusted run, spawned by the same
parent from the same code tree — frames never cross a machine or trust
boundary.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Iterator

#: struct format of the length prefix.
_HEADER = struct.Struct(">I")

#: Refuse absurd frames (a corrupted prefix would otherwise ask for GBs).
MAX_FRAME = 64 * 1024 * 1024


class FramingError(RuntimeError):
    """A malformed frame (oversized length, truncated pickle...)."""


def encode_frame(obj: Any) -> bytes:
    """One wire frame for ``obj``."""
    body = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME:
        raise FramingError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(len(body)) + body


class FrameDecoder:
    """Incremental decoder: feed byte chunks, iterate complete frames."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> Iterator[Any]:
        """Consume ``data``; yield every frame completed by it."""
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < _HEADER.size:
                return
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME:
                raise FramingError(f"frame header asks for {length} bytes")
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return
            body = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            yield pickle.loads(body)

    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)
