"""Scenario specs that run on either execution backend.

A :class:`RealScenarioSpec` names the OS-process nodes of a scenario and
knows how to build each node's view of the system: the *same* builder
runs all-local on the sim kernel (``local=None``) or as one child
process per node (``local=<node name>`` plus a wire forwarder).  The
parity contract — identical oracle verdicts and outcome counts across
backends — is what the ``realbackend``-marked tests assert.

These specs live in their own registry, deliberately separate from
``repro.bench.engine.REGISTRY``: the conformance coverage guard pins
every engine scenario to a committed digest, and real-backend runs are
wall-clock timed, so they are gated by oracles instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ... import obs
from ...bench.scenarios import build_experiment1
from ...core.exception_graph import generate_full_graph
from ...core.exceptions import internal
from ...core.action import CAActionDefinition, RoleDefinition
from ...core.handlers import HandlerMap, HandlerResult
from ...explore.monitor import InvariantMonitor
from ...net.latency import ConstantLatency
from ...net.network import Network
from ...net.rpc import RpcEndpoint
from ...obs.config import ObsConfig
from ...objects.remote import ObjectHostService, install_remote_objects
from ...runtime.config import RuntimeConfig
from ...runtime.system import DistributedCASystem
from ...simkernel.kernel import Kernel
from .realnet import RealNetwork

#: Observation profile for backend runs: spans only — events are plain
#: picklable dicts the children ship back to the hub.
_OBS = ObsConfig(spans=True, metrics=False, flight_recorder=False)


@dataclass
class BuiltNode:
    """One node's (or the all-local sim run's) constructed world."""

    system: DistributedCASystem
    monitor: InvariantMonitor
    observation: Any
    #: (object, key) counters created *in this process* and tracked for
    #: the no-lost-update oracle.
    counters: List[Tuple[str, str]] = field(default_factory=list)
    #: Kept alive so the host's RPC procedures stay registered.
    service: Optional[ObjectHostService] = None


@dataclass(frozen=True)
class RealScenarioSpec:
    """A scenario executable on both the sim and the real backend."""

    name: str
    nodes: Tuple[str, ...]
    build: Callable[[Dict[str, Any], Optional[str], Any], BuiltNode]
    defaults: Dict[str, Any]
    #: Whether liveness-flavoured oracles apply (no faults injected).
    require_liveness: bool = True


def _make_network(local: Optional[str], forward, kernel: Kernel,
                  latency) -> Network:
    if local is None:
        return Network(kernel, latency=latency)
    return RealNetwork(kernel, latency, local={local}, forward=forward)


# ----------------------------------------------------------------------
# figure9: the paper's Experiment 1 application across three processes
# ----------------------------------------------------------------------
def _build_figure9(params: Dict[str, Any], local: Optional[str],
                   forward) -> BuiltNode:
    t_msg = params.get("t_msg", 0.2)
    t_abort = params.get("t_abort", 0.1)
    t_resolution = params.get("t_resolution", 0.3)
    iterations = params.get("iterations", 2)
    algorithm = params.get("algorithm", "ours")
    if local is None:
        system = build_experiment1(t_msg, t_abort, t_resolution,
                                   iterations=iterations,
                                   algorithm=algorithm)
    else:
        system = build_experiment1(
            t_msg, t_abort, t_resolution, iterations=iterations,
            algorithm=algorithm, spawn_threads=[local],
            network_factory=lambda kernel, latency: _make_network(
                local, forward, kernel, latency))
    monitor = InvariantMonitor(system)
    observation = obs.observe_system(system, _OBS)
    return BuiltNode(system, monitor, observation)


# ----------------------------------------------------------------------
# transactional: external atomic objects behind an RPC object host
# ----------------------------------------------------------------------
def _build_transactional(params: Dict[str, Any], local: Optional[str],
                         forward) -> BuiltNode:
    """Workers ``W1``/``W2`` increment a counter hosted on ``objhost``.

    Every object access crosses the RPC layer — locks, reads, writes,
    commit — in *both* backends, so the sim run exercises exactly the
    code path the real processes do.  ``W1`` reads the counter under an
    exclusive lock, writes ``value + 1``, and raises ``overdraft`` once
    the value it read reaches ``limit`` (deterministic from the
    authoritative host state); the resolved exception is handled by
    both workers and the action still commits.
    """
    t_msg = params.get("t_msg", 0.1)
    iterations = params.get("iterations", 3)
    limit = params.get("limit", 1)
    algorithm = params.get("algorithm", "ours")
    rpc_timeout = params.get("rpc_timeout", 60.0)
    config = RuntimeConfig(algorithm=algorithm,
                           resolution_time=params.get("t_resolution", 0.2),
                           abort_time=params.get("t_abort", 0.1))
    kernel = Kernel()
    latency = ConstantLatency(t_msg)
    network = _make_network(local, forward, kernel, latency)
    system = DistributedCASystem(config, kernel=kernel, network=network)
    system.add_threads(["W1", "W2"])

    counters: List[Tuple[str, str]] = []
    service: Optional[ObjectHostService] = None
    if local is None or local == "objhost":
        objhost = network.add_node("objhost")
        system.create_object("acct", {"value": 0})
        counters.append(("acct", "value"))
        service = ObjectHostService(RpcEndpoint(objhost, network),
                                    system.transactions)

    endpoints = {}
    for worker in ("W1", "W2"):
        if local is None or local == worker:
            # drain=False: the partition dispatcher owns the inbox and
            # routes RPC payloads to the endpoint (see Dispatcher).
            endpoints[worker] = RpcEndpoint(network.node(worker), network,
                                            drain=False)
    if endpoints:
        designated = local if local in endpoints else "W1"
        install_remote_objects(
            system, lambda _instance_key: endpoints[designated], "objhost",
            timeout=rpc_timeout)

    overdraft = internal("overdraft")
    graph = generate_full_graph([overdraft], action_name="Transfer")

    def handled(ctx):
        yield ctx.delay(0.1)
        return HandlerResult.success()

    def u1_body(ctx):
        txn = ctx.transaction
        yield txn.lock("acct")
        value = yield txn.read("acct", "value")
        txn.write("acct", "value", value + 1)
        yield ctx.delay(0.2)
        if value >= limit:
            ctx.raise_exception(overdraft)
        return value

    def u2_body(ctx):
        yield ctx.delay(0.4)
        return "ok"

    transfer = CAActionDefinition(
        "Transfer",
        [RoleDefinition("u1", u1_body, HandlerMap(default_handler=handled)),
         RoleDefinition("u2", u2_body, HandlerMap(default_handler=handled))],
        internal_exceptions=[overdraft], graph=graph,
        external_objects=["acct"])
    system.define_action(transfer)
    system.bind("Transfer", {"u1": "W1", "u2": "W2"})

    def make_program(role):
        def program(ctx):
            reports = []
            for _ in range(iterations):
                report = yield from ctx.perform_action("Transfer", role)
                reports.append(report)
            return reports
        return program

    for worker, role in (("W1", "u1"), ("W2", "u2")):
        if local is None or local == worker:
            system.spawn(worker, make_program(role))

    monitor = InvariantMonitor(system)
    for object_name, key in counters:
        monitor.track_counter(object_name, key)
    observation = obs.observe_system(system, _OBS)
    return BuiltNode(system, monitor, observation, counters=counters,
                     service=service)


#: The real-backend scenario registry (separate from the engine's — see
#: module docstring).
REAL_SCENARIOS: Dict[str, RealScenarioSpec] = {
    "figure9": RealScenarioSpec(
        name="figure9", nodes=("T1", "T2", "T3"), build=_build_figure9,
        defaults={"t_msg": 0.2, "t_abort": 0.1, "t_resolution": 0.3,
                  "iterations": 2, "algorithm": "ours"}),
    "transactional": RealScenarioSpec(
        name="transactional", nodes=("W1", "W2", "objhost"),
        build=_build_transactional,
        defaults={"t_msg": 0.1, "iterations": 3, "limit": 1,
                  "algorithm": "ours"}),
}


def spec_params(spec: RealScenarioSpec,
                overrides: Dict[str, Any]) -> Dict[str, Any]:
    params = dict(spec.defaults)
    params.update(overrides)
    return params


# ----------------------------------------------------------------------
# Node-record collection (shared by the sim runner and the child host)
# ----------------------------------------------------------------------
def collect_record(built: BuiltNode,
                   local: Optional[str] = None) -> Dict[str, Any]:
    """One node's contribution to the merged oracle evaluation.

    Everything in the record is plain picklable data; ``local`` filters
    the quiescence snapshots to the node's own partition (the stub
    partitions of a child process never run and would read as stranded).
    """
    system = built.system
    monitor = built.monitor
    quiescence = monitor.quiescence()
    if local is not None:
        quiescence = [snap for snap in quiescence if snap.thread == local]
    locks = system.transactions.locks
    events = built.observation.events or []
    return {
        "resolutions": {key: list(value)
                        for key, value in monitor.resolutions.items()},
        "outcomes": dict(monitor.outcomes),
        "resolved_map": dict(monitor.resolved_map),
        "quiescence": quiescence,
        "counters": monitor.counter_records(),
        "locks_held": locks.all_holders() if locks is not None else {},
        "locks_waiting": locks.all_waiters() if locks is not None else {},
        "finished_txns": [t.transaction_id
                          for t in system.transactions.finished],
        "stats": system.network.stats.snapshot(),
        "obs_events": list(events),
    }


def run_sim(name: str, **overrides: Any):
    """Run a real-scenario spec all-local on the deterministic sim kernel.

    Returns the same :class:`~repro.net.real.backend.RealRunResult`
    shape as :func:`run_real`, which is what the parity tests compare.
    """
    from .backend import assemble_result

    spec = REAL_SCENARIOS[name]
    params = spec_params(spec, overrides)
    built = spec.build(params, None, None)
    built.system.kernel.run()
    record = collect_record(built)
    return assemble_result(spec, "sim", {"sim": record}, crashed=[],
                           wall_time=0.0)


def run_real(name: str, **overrides: Any):
    """Run a real-scenario spec across OS processes (convenience)."""
    from .backend import RealBackend

    backend = RealBackend(
        time_scale=overrides.pop("time_scale", 0.05),
        wall_timeout=overrides.pop("wall_timeout", 120.0),
        settle=overrides.pop("settle", 0.5),
        stall=overrides.pop("stall", 5.0))
    return backend.run(name, kill=overrides.pop("kill", None), **overrides)
