"""Shared command-line plumbing for the ``repro`` CLIs.

Every entry point (``repro.conformance``, ``repro.explore``,
``repro.bench.baseline``, ``repro.obs``) accepts the same two logging
flags and configures the package-level ``repro`` logger the same way:

* ``-v`` / ``--verbose`` — more detail (repeatable: ``-vv`` → DEBUG);
* ``-q`` / ``--quiet`` — less (repeatable: ``-qq`` → ERROR only).

The default level is WARNING, so existing scripted invocations see no
new output.  Configuration happens exactly once per process: a second
``configure_logging`` call only adjusts the level, never stacks another
handler (repeated ``main()`` calls in one process — the test suite does
this — must not multiply log lines).
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import Optional

#: Handler marker so re-configuration can find (and not duplicate) the
#: handler this module installed.
_HANDLER_NAME = "repro-cli"

#: ``verbosity`` (verbose − quiet) → level; clamped outside the range.
_LEVELS = {
    -2: logging.CRITICAL,
    -1: logging.ERROR,
    0: logging.WARNING,
    1: logging.INFO,
    2: logging.DEBUG,
}


def add_logging_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the shared ``-v`` / ``-q`` flags on ``parser``."""
    group = parser.add_argument_group("logging")
    group.add_argument("-v", "--verbose", action="count", default=0,
                       help="more logging (-v: info, -vv: debug)")
    group.add_argument("-q", "--quiet", action="count", default=0,
                       help="less logging (-q: errors only, "
                            "-qq: critical only)")


class _CurrentStderrHandler(logging.StreamHandler):
    """A stream handler bound to the *current* ``sys.stderr``.

    A plain ``StreamHandler(sys.stderr)`` captures the stream object
    once; long-lived processes that swap ``sys.stderr`` (the test
    suite's output capture does, per test) would leave the handler
    writing to a dead stream forever.
    """

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value):  # StreamHandler.__init__ assigns; ignore.
        pass


def configure_logging(arguments: Optional[argparse.Namespace] = None,
                      verbose: int = 0, quiet: int = 0) -> logging.Logger:
    """Configure the package ``repro`` logger once; return it.

    Pass the parsed namespace from a parser that went through
    :func:`add_logging_arguments`, or explicit counts.
    """
    if arguments is not None:
        verbose = getattr(arguments, "verbose", 0)
        quiet = getattr(arguments, "quiet", 0)
    verbosity = max(-2, min(2, verbose - quiet))
    logger = logging.getLogger("repro")
    logger.setLevel(_LEVELS[verbosity])
    for handler in logger.handlers:
        if handler.get_name() == _HANDLER_NAME:
            break
    else:
        handler = _CurrentStderrHandler()
        handler.set_name(_HANDLER_NAME)
        handler.setFormatter(logging.Formatter(
            "%(levelname)s %(name)s: %(message)s"))
        logger.addHandler(handler)
        # Propagation stays on: a CLI process leaves the root logger
        # unconfigured (so nothing double-logs), and embedders that DO
        # configure root — the test suite's log capture, notably — keep
        # seeing the tree's records.
    return logger
