"""Golden-trace conformance: committed digests that pin scenario behaviour.

PRs 2-4 established byte-identical scenario rows as this repository's
correctness currency: every engine scenario is a pure function of its grid
point (all stochastic draws are seeded, all quantities are virtual-time),
so two runs of the same point — sequential or parallel, before or after a
refactor — must produce identical rows.  This module turns that currency
into an enforced gate:

* a **conformance case** names a scenario (or several) plus the exact grid
  to run, for one resolution algorithm — the paper's plus both baselines;
* :func:`run_case` executes the case sequentially and reduces it to a
  canonical JSON document; :func:`case_digest` hashes it;
* fixtures under ``tests/conformance/fixtures/`` commit the digest together
  with a small human-diffable summary snapshot;
* ``tests/conformance/`` re-runs every case on every push and fails when a
  digest moved, so a "performance" change that perturbs behaviour cannot
  land silently.

Canonicalisation strips the few wall-clock fields (``wall_seconds``) so the
digest covers only deterministic virtual-time content.  Everything else —
message counts, latency percentiles, per-link statistics, explorer trace
digests — is hashed bit-for-bit.

Regenerating fixtures (only when a behaviour change is intended)::

    PYTHONPATH=src python -m repro.conformance --regenerate

Checking without pytest (CI uses both)::

    PYTHONPATH=src python -m repro.conformance --check

``--check`` also enforces two hygiene guards: no tracked ``__pycache__``
directories or ``*.pyc`` files (PR 3 removed 51 of them), and no
*ungated* scenario — every name in the scenario registry must appear in
a conformance case or carry an explicit :data:`COVERAGE_EXEMPT` entry
with a reason.
"""

from __future__ import annotations

import argparse
import contextlib
import hashlib
import json
import os
import subprocess
import sys
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from . import obs
from .bench.engine import GridPoint, REGISTRY, run_scenario
from .cli import add_logging_arguments, configure_logging

#: Bump when the canonical-document layout changes incompatibly (this
#: invalidates every fixture, so regenerate them in the same commit).
SCHEMA_VERSION = 1

#: Row keys excluded from canonical documents: wall-clock measurements and
#: executor identity are the only scenario outputs that legitimately differ
#: between runs (``scale`` rows carry wall-clock rates plus the worker
#: count/executor that produced them; the merged virtual-time content is
#: identical for any executor and stays in the digest).
VOLATILE_KEYS = frozenset({
    "wall_seconds",
    "instances_per_second",
    "submitted_per_second",
    "executor",
    "workers",
})

#: The resolution algorithms a conformance case can pin: the paper's new
#: algorithm and the two baselines it is compared against.
ALGORITHMS = {
    "ours": "ours",
    "cr": "campbell-randell",
    "r96": "romanovsky96",
}


@dataclass(frozen=True)
class ConformanceCase:
    """One golden case: named scenario runs pinned by a single digest."""

    name: str
    #: ``(scenario, grid)`` pairs executed sequentially, in order.
    runs: Tuple[Tuple[str, Tuple[GridPoint, ...]], ...]
    note: str = ""


def _with_algorithm(grid: Sequence[GridPoint], algorithm: str,
                    ) -> Tuple[GridPoint, ...]:
    """Copy ``grid`` with every point's ``algorithm`` overridden."""
    return tuple({**dict(point), "algorithm": algorithm} for point in grid)


def _build_cases() -> Dict[str, ConformanceCase]:
    """The full case catalogue (every gated scenario × three algorithms)."""
    from .bench.engine import (
        CAPACITY_GRID,
        CHURN_GRID,
        EXPLORE_SEED,
        LARGE_N_GRID,
        MIXED_TRAFFIC_GRID,
        PRODUCTION_CELL_GRID,
        TRANSACTIONAL_GRID,
        WIDE_GRAPH_GRID,
        _DEFAULT_FIGURE9_GRID,
    )

    cases: Dict[str, ConformanceCase] = {}

    def add(case: ConformanceCase) -> None:
        cases[case.name] = case

    #: Figure 9 at a conformance-sized iteration count: the sweep shape is
    #: identical to the default grid, only cheaper per point.
    figure9_grid = tuple({**dict(point), "iterations": 2}
                         for point in _DEFAULT_FIGURE9_GRID)
    for slug, algorithm in ALGORITHMS.items():
        add(ConformanceCase(
            f"figure9_{slug}",
            (("figure9", _with_algorithm(figure9_grid, algorithm)),),
            note="Figure 9 sensitivity sweep (2 iterations per point)"))
        add(ConformanceCase(
            f"large_n_{slug}",
            (("large_n", _with_algorithm(LARGE_N_GRID, algorithm)),),
            note="message-complexity sweep up to N=64"))
        add(ConformanceCase(
            f"churn_{slug}",
            (("churn", _with_algorithm(CHURN_GRID, algorithm)),),
            note="concurrent top-level actions sharing one network"))
        add(ConformanceCase(
            f"wide_graph_{slug}",
            (("wide_graph", _with_algorithm(WIDE_GRAPH_GRID, algorithm)),),
            note="all-raise storms over the 794-node truncated graph"))
        add(ConformanceCase(
            f"capacity_{slug}",
            (("capacity", _with_algorithm(CAPACITY_GRID, algorithm)),),
            note="offered-load sweep over the shared partition pool"))
        add(ConformanceCase(
            f"mixed_traffic_{slug}",
            (("mixed_traffic", _with_algorithm(MIXED_TRAFFIC_GRID,
                                               algorithm)),),
            note="heterogeneous mix + delay noise, oracle-checked"))
        add(ConformanceCase(
            f"transactional_{slug}",
            (("transactional", _with_algorithm(TRANSACTIONAL_GRID,
                                               algorithm)),),
            note="transactional CA workload: locks, aborts, deadlock "
                 "recovery, no-lost-update oracle"))
        add(ConformanceCase(
            f"production_cell_{slug}",
            (("production_cell", _with_algorithm(PRODUCTION_CELL_GRID,
                                                 algorithm)),),
            note="production cell under seeded open-loop traffic and "
                 "fault schedules"))

    #: Figure 12 runs ours and Campbell-Randell inside each row, so it is a
    #: single case rather than one per algorithm.
    add(ConformanceCase(
        "figure12",
        (("figure12_tmmax", tuple(REGISTRY.get("figure12_tmmax").grid)),
         ("figure12_tres", tuple(REGISTRY.get("figure12_tres").grid))),
        note="ours vs Campbell-Randell comparison, both halves"))

    #: A 100-plan explorer sweep: each row's ``digest`` field is already a
    #: hash over the canonical kernel/network/coordinator traces of its 25
    #: plans, so this case pins the schedule- and byte-level behaviour of
    #: the kernel itself (the other cases pin row-level outputs).  The
    #: explorer's differential oracles run both baselines internally.
    add(ConformanceCase(
        "explore_100",
        (("explore", tuple(
            {"target": "nested_abort", "seed": EXPLORE_SEED,
             "start": start, "stop": start + 25}
            for start in range(0, 100, 25))),),
        note="100 seeded fault plans, canonical trace digests per chunk"))

    #: Twenty storm-vocabulary plans (crash/restore waves, drop and
    #: corrupt classes) through the corpus-search chunk runner: pins the
    #: widened fault vocabulary's byte-level behaviour, including the
    #: liveness-oracle waiver for non-delivery-preserving plans.
    add(ConformanceCase(
        "explore_corpus",
        (("explore_corpus", tuple(REGISTRY.get("explore_corpus").grid)),),
        note="corpus-search chunks over the full storm vocabulary, "
             "canonical trace digests per plan"))

    #: A small sharded-capacity case: 2 shards × 500 instances, run
    #: sequentially (the reference execution — process-pool runs are
    #: byte-identical, which tests/workload/test_sharding.py enforces).
    #: Pins the shard-plan derivation, the global-admission lease split
    #: and the merge semantics, so they cannot drift silently.
    add(ConformanceCase(
        "scale_small",
        (("scale", (
            {"n_instances": 1000, "n_shards": 2, "offered_load": 6.0,
             "pool_size": 8, "seed": 2026},
            {"n_instances": 1000, "n_shards": 2, "offered_load": 6.0,
             "pool_size": 8, "seed": 2026, "global_max_in_flight": 8},
        )),),
        note="sharded capacity: shard-plan determinism + merged telemetry"))
    return cases


#: The process-wide case catalogue.
CASES: Dict[str, ConformanceCase] = _build_cases()

#: Registered scenarios deliberately *not* pinned by a fixture.  Every
#: entry needs a reason: ``graph_microbench`` rows are wall-clock rate
#: measurements, so their content is volatile by design and a digest over
#: them would be meaningless.  Any other registered scenario without a
#: case is a gap — the coverage guard below fails on it.
COVERAGE_EXEMPT: Mapping[str, str] = {
    "graph_microbench": "rows are wall-clock rate measurements",
}


def case_names() -> List[str]:
    """Every case name, in catalogue (generation) order."""
    return list(CASES)


def covered_scenarios() -> Set[str]:
    """Every scenario name some conformance case runs."""
    return {scenario for case in CASES.values()
            for scenario, _grid in case.runs}


def uncovered_scenarios() -> List[str]:
    """Registered scenarios with neither a fixture case nor an exemption.

    The guard that keeps the plugin registry honest: registering a new
    scenario without either committing a conformance fixture for it or
    adding an explicit entry to :data:`COVERAGE_EXEMPT` is an error.
    """
    return sorted(set(REGISTRY.names())
                  - covered_scenarios() - set(COVERAGE_EXEMPT))


# ----------------------------------------------------------------------
# Canonicalisation and digests
# ----------------------------------------------------------------------
def canonical_rows(rows: Sequence[Mapping[str, object]],
                   ) -> List[Dict[str, object]]:
    """Rows reduced to their deterministic content (volatile keys dropped)."""
    return [{key: value for key, value in row.items()
             if key not in VOLATILE_KEYS} for row in rows]


def canonical_document(case: ConformanceCase,
                       results: Mapping[str, Sequence[Mapping[str, object]]],
                       ) -> str:
    """The canonical JSON text a case digest is computed over."""
    payload = {
        "schema": SCHEMA_VERSION,
        "case": case.name,
        "runs": {scenario: canonical_rows(rows)
                 for scenario, rows in results.items()},
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def case_digest(document: str) -> str:
    """SHA-256 of a canonical case document."""
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


def _summarise(rows: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    """A small human-diffable summary of one scenario's rows.

    Sums the well-known numeric columns that exist; the summary is derived
    from the digested rows, so it can never disagree with the digest — it
    exists so a fixture diff shows *what* moved, not just that something
    did.
    """
    summary: Dict[str, object] = {"rows": len(rows)}
    for key in ("protocol_messages", "total_time", "resolution_messages",
                "signalling_messages", "completed", "dropped", "cases",
                "failures", "n_violations"):
        values = [row[key] for row in rows
                  if isinstance(row.get(key), (int, float))]
        if values:
            total = sum(values)
            summary[key] = round(total, 9) if isinstance(total, float) \
                else total
    return summary


def run_case(case: ConformanceCase) -> Dict[str, object]:
    """Execute ``case`` sequentially and build its fixture document."""
    results = {scenario: run_scenario(scenario, points=list(grid))
               for scenario, grid in case.runs}
    document = canonical_document(case, results)
    return {
        "schema": SCHEMA_VERSION,
        "case": case.name,
        "note": case.note,
        "digest": case_digest(document),
        "summary": {scenario: _summarise(rows)
                    for scenario, rows in results.items()},
    }


# ----------------------------------------------------------------------
# Fixture files
# ----------------------------------------------------------------------
def default_fixture_root() -> str:
    """``tests/conformance/fixtures`` under the repository root.

    Resolved relative to this file (``src/repro/conformance.py``), so the
    CLI works from any working directory inside a checkout.
    """
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(os.path.dirname(os.path.dirname(here)),
                        "tests", "conformance", "fixtures")


def fixture_path(name: str, root: Optional[str] = None) -> str:
    """The fixture file of case ``name``."""
    return os.path.join(root or default_fixture_root(), f"{name}.json")


def load_fixture(name: str, root: Optional[str] = None,
                 ) -> Optional[Dict[str, object]]:
    """The committed fixture of case ``name`` (None when absent)."""
    path = fixture_path(name, root)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def write_fixture(fixture: Dict[str, object],
                  root: Optional[str] = None) -> str:
    """Write ``fixture`` to its canonical path; returns the path."""
    directory = root or default_fixture_root()
    os.makedirs(directory, exist_ok=True)
    path = fixture_path(str(fixture["case"]), directory)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(fixture, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def regenerate(names: Optional[Sequence[str]] = None,
               root: Optional[str] = None) -> List[str]:
    """Run the named cases (all by default) and rewrite their fixtures."""
    paths = []
    for name in names or case_names():
        paths.append(write_fixture(run_case(CASES[name]), root))
    return paths


def check(names: Optional[Sequence[str]] = None,
          root: Optional[str] = None) -> List[str]:
    """Re-run the named cases and diff against the committed fixtures.

    Returns a list of human-readable mismatch descriptions (empty when
    everything conforms).
    """
    problems: List[str] = []
    for scenario in uncovered_scenarios():
        problems.append(
            f"scenario {scenario!r} is registered but has no conformance "
            f"case; add one (and commit its fixture) or list it in "
            f"COVERAGE_EXEMPT with a reason")
    for name in names or case_names():
        committed = load_fixture(name, root)
        if committed is None:
            problems.append(f"{name}: fixture missing "
                            f"(run --regenerate and commit it)")
            continue
        fresh = run_case(CASES[name])
        if committed.get("schema") != fresh["schema"]:
            problems.append(f"{name}: fixture schema "
                            f"{committed.get('schema')} != {fresh['schema']}")
        elif committed.get("digest") != fresh["digest"]:
            problems.append(
                f"{name}: digest mismatch — committed "
                f"{str(committed.get('digest'))[:12]}… vs fresh "
                f"{fresh['digest'][:12]}…; summary (fresh) "
                f"{json.dumps(fresh['summary'], sort_keys=True)}")
    return problems


# ----------------------------------------------------------------------
# Repository hygiene: no tracked bytecode
# ----------------------------------------------------------------------
def tracked_bytecode(repo_root: Optional[str] = None) -> Optional[List[str]]:
    """Tracked ``*.pyc`` files / ``__pycache__`` entries, per ``git ls-files``.

    Returns ``None`` when the repository state cannot be queried (no git
    binary, not a checkout) so callers can skip rather than fail falsely.
    """
    root = repo_root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    try:
        listing = subprocess.run(
            ["git", "ls-files"], cwd=root, capture_output=True,
            text=True, timeout=60, check=True)
    except (OSError, subprocess.SubprocessError):
        return None
    return [line for line in listing.stdout.splitlines()
            if line.endswith(".pyc") or "__pycache__" in line.split("/")]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate or check the golden-trace conformance "
                    "fixtures.")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--regenerate", action="store_true",
                       help="re-run the cases and rewrite their fixtures")
    group.add_argument("--check", action="store_true",
                       help="re-run the cases and fail on any digest drift "
                            "(default)")
    group.add_argument("--list", action="store_true",
                       help="list the case catalogue and exit")
    parser.add_argument("--case", action="append", default=None,
                        metavar="NAME", help="restrict to one case "
                        "(repeatable; default: all)")
    parser.add_argument("--fixtures", default=None,
                        help="fixture directory (default: "
                             "tests/conformance/fixtures)")
    parser.add_argument("--obs", action="store_true",
                        help="run the cases under an ambient repro.obs "
                             "capture — the digests must not move, which "
                             "proves observation never perturbs scheduling")
    add_logging_arguments(parser)
    arguments = parser.parse_args(argv)
    configure_logging(arguments)

    if arguments.list:
        for name in case_names():
            case = CASES[name]
            scenarios = ", ".join(scenario for scenario, _ in case.runs)
            print(f"{name:24s} {scenarios:28s} {case.note}")
        print()
        covered = covered_scenarios()
        print("Scenario coverage:")
        for scenario in REGISTRY.names():
            if scenario in covered:
                status = "gated"
            elif scenario in COVERAGE_EXEMPT:
                status = f"exempt ({COVERAGE_EXEMPT[scenario]})"
            else:
                status = "UNGATED — add a case or an exemption"
            print(f"  {scenario:20s} {status}")
        print()
        from .bench.baseline import registry_listing
        for line in registry_listing():
            print(line)
        return 0

    names = arguments.case or case_names()
    unknown = sorted(set(names) - set(CASES))
    if unknown:
        parser.error(f"unknown case(s): {', '.join(unknown)}")

    # With --obs every system the cases build is adopted by one ambient
    # capture (spans + metrics + flight recorder).  The committed digests
    # must still match — observation never schedules kernel events or
    # draws from the simulation's RNG streams.
    ambient = obs.capture(obs.ObsConfig()) if arguments.obs \
        else contextlib.nullcontext()

    with ambient:
        if arguments.regenerate:
            for path in regenerate(names, arguments.fixtures):
                print(f"wrote {path}")
            return 0
        problems = check(names, arguments.fixtures)
    bytecode = tracked_bytecode()
    if bytecode:
        problems.append(f"tracked bytecode: {', '.join(sorted(bytecode))}")
    if problems:
        for problem in problems:
            print(f"CONFORMANCE FAILURE: {problem}", file=sys.stderr)
        return 1
    print(f"{len(names)} conformance case(s) OK"
          + ("" if bytecode is None else "; no tracked bytecode"))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
