"""Discrete-event simulation kernel.

This package provides the virtual-time substrate on which the distributed
CA-action runtime executes: a kernel with an event queue, generator-based
processes, timeouts, interrupts, condition events, FIFO stores/mailboxes and
seeded random streams.

The experiments of the paper sweep message-passing, abortion and resolution
delays of up to several seconds; running them in virtual time keeps the
benchmark suite fast and bit-reproducible (see DESIGN.md, "Substitutions").
"""

from .channels import CyclicBuffer, Mailbox, Store
from .events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Interrupt,
    Timeout,
)
from .kernel import EmptySchedule, Kernel, StopSimulation
from .process import Process, StopProcess
from .rng import SeededStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "CyclicBuffer",
    "EmptySchedule",
    "Event",
    "Interrupt",
    "Kernel",
    "Mailbox",
    "Process",
    "SeededStreams",
    "StopProcess",
    "StopSimulation",
    "Store",
    "Timeout",
]
