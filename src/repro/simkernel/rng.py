"""Deterministic random-number streams for experiments.

Every experiment in the benchmark harness takes a seed; all stochastic
choices (latency jitter, fault injection, workload arrival) draw from named
sub-streams derived from that seed, so that enabling or disabling one source
of randomness does not perturb the others.
"""

from __future__ import annotations

import random
from typing import Dict


class SeededStreams:
    """A family of independent, named :class:`random.Random` streams.

    Parameters
    ----------
    seed:
        Master seed.  Each named stream is seeded with a stable hash of the
        master seed and the stream name.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def derived_seed(self, name: str) -> int:
        """The stable per-name seed (independent of PYTHONHASHSEED)."""
        derived = self.seed
        for ch in name:
            derived = (derived * 1000003 + ord(ch)) % (2 ** 63)
        return derived

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream called ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            stream = self._streams[name] = \
                random.Random(self.derived_seed(name))
        return stream

    def fresh_stream(self, name: str) -> random.Random:
        """A new generator in ``stream(name)``'s initial state, uncached.

        For one-shot derivations (one uniquely named stream per job or
        plan): the draws are identical to a first use of :meth:`stream`,
        but nothing is retained, so a million-job soak does not grow the
        stream registry by a million entries.
        """
        return random.Random(self.derived_seed(name))

    def uniform(self, name: str, low: float, high: float) -> float:
        """Draw a uniform sample from the named stream."""
        return self.stream(name).uniform(low, high)

    def expovariate(self, name: str, rate: float) -> float:
        """Draw an exponential sample from the named stream."""
        return self.stream(name).expovariate(rate)

    def choice(self, name: str, seq):
        """Choose an element from ``seq`` using the named stream."""
        return self.stream(name).choice(seq)

    def random(self, name: str) -> float:
        """Draw a uniform [0, 1) sample from the named stream."""
        return self.stream(name).random()
