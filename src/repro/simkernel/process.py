"""Simulation processes: generators driven by the kernel.

A process wraps a generator function.  The generator yields
:class:`~repro.simkernel.events.Event` instances; the kernel resumes the
generator when the yielded event fires, sending the event's value (or
throwing its exception).  A process is itself an event that fires when the
generator returns (with the return value) or raises (with the exception),
so processes can wait for each other.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from .events import Event, Initialize, Interrupt, NORMAL, PENDING, URGENT

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel


class StopProcess(Exception):
    """Raised internally to abort a process from outside (hard kill)."""


class Process(Event):
    """An active component of the simulation.

    Parameters
    ----------
    kernel:
        The owning kernel.
    generator:
        A generator object produced by calling a process function.
    name:
        Optional human-readable name used in reprs and error messages.
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, kernel: "Kernel", generator: Generator,
                 name: Optional[str] = None) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(kernel)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if runnable
        #: or finished).
        self._target: Optional[Event] = None
        Initialize(kernel, self)

    # ------------------------------------------------------------------
    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The interrupt is delivered at the current simulation time, before
        any other pending event for that time (urgent priority).  It is an
        error to interrupt a process that has already finished or to
        interrupt a process from within itself.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self} has terminated and cannot be interrupted")
        if self is self.kernel.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")

        interrupt_event = Event(self.kernel)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        interrupt_event.callbacks = [self._deliver_interrupt]
        self.kernel.schedule(interrupt_event, priority=URGENT)

    def _deliver_interrupt(self, event: Event) -> None:
        """Deliver a queued interrupt, unless the process finished meanwhile."""
        if not self.is_alive:
            return
        # Detach from whatever the process was waiting for, so that the
        # original target firing later does not resume a finished (or
        # re-waiting) generator with a stale outcome.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._resume(event)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Resume the generator with the outcome of ``event``."""
        kernel = self.kernel
        kernel._active_process = self
        self._target = None
        generator = self._generator

        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    # The exception has a waiter (us), so mark it defused.
                    event.defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as stop:
                # Process finished successfully.
                self._ok = True
                self._value = stop.value
                kernel.schedule(self, priority=NORMAL)
                break
            except StopProcess as stop:
                self._ok = True
                self._value = stop.args[0] if stop.args else None
                kernel.schedule(self, priority=NORMAL)
                break
            except BaseException as error:
                # Process failed: propagate to waiters (or the kernel).
                self._ok = False
                self._value = error
                kernel.schedule(self, priority=NORMAL)
                break

            # The generator yielded a new event to wait for.
            if not isinstance(next_event, Event):
                error = RuntimeError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}")
                self._ok = False
                self._value = error
                kernel.schedule(self, priority=NORMAL)
                break

            if next_event.callbacks is not None:
                # The event has not yet been processed: register and wait.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break

            # The event was already processed: loop and resume immediately
            # with its (stored) outcome.
            event = next_event

        kernel._active_process = None


def events_pending() -> Any:
    """Return the module-level PENDING sentinel (kept for API compatibility)."""
    return PENDING
