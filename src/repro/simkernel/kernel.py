"""The discrete-event simulation kernel.

The kernel owns the virtual clock and the event queue.  It is deliberately
small: events are scheduled with :meth:`Kernel.schedule`, processes are
created with :meth:`Kernel.process`, and :meth:`Kernel.run` advances the
clock until a stop condition.

Determinism: ties in the event queue are broken first by priority
(urgent before normal) and then by insertion order, so two runs of the same
program produce the same trace.

Schedule exploration: a kernel can be created with a ``tie_seed``, in which
case events that share both timestamp and priority are ordered by a seeded
pseudo-random key drawn at scheduling time (insertion order remains the
final tie-break).  Each seed selects one deterministic interleaving of the
otherwise-concurrent events, so the fault-space explorer can sweep many
legal schedules while every individual run stays exactly reproducible.
"""

from __future__ import annotations

import heapq
import logging
import random
from itertools import count
from typing import Any, Callable, Generator, Iterable, List, Optional, Union

from .events import AllOf, AnyOf, Event, NORMAL, Timeout
from .process import Process

# Bound once at import: the hot loop pays a module-global lookup instead of
# an attribute chain per event.
_heappush = heapq.heappush
_heappop = heapq.heappop

logger = logging.getLogger(__name__)

#: Signature of a step tracer: ``hook(when, priority, eid, event)``.
StepTracer = Callable[[float, int, int, Any], None]


class EmptySchedule(Exception):
    """Raised by :meth:`Kernel.step` when no events remain."""


class StopSimulation(Exception):
    """Raised to stop :meth:`Kernel.run` early (carries the stop value)."""


Infinity = float("inf")


class Kernel:
    """Discrete-event simulation kernel with a virtual clock.

    Parameters
    ----------
    initial_time:
        Starting value of the virtual clock (defaults to 0.0).
    tie_seed:
        When not ``None``, events scheduled for the same (time, priority)
        are ordered by a pseudo-random key from this seed instead of pure
        insertion order.  Each seed is one deterministic interleaving.
    """

    def __init__(self, initial_time: float = 0.0,
                 tie_seed: Optional[int] = None) -> None:
        self._now = float(initial_time)
        self._queue: List[tuple] = []
        self._eid = count()
        #: Bound method caches for :meth:`schedule` (the single hottest
        #: call in a run): event-id draw and, when tie perturbation is on,
        #: the seeded tie-key draw (``None`` keeps the constant 0.0 key).
        self._next_eid = self._eid.__next__
        self._active_process: Optional[Process] = None
        self._tie_rng = (random.Random(tie_seed) if tie_seed is not None
                         else None)
        self._tie_random = (self._tie_rng.random
                            if self._tie_rng is not None else None)
        self.tie_seed = tie_seed
        #: Optional step hook called as ``tracer(when, priority, eid, event)``
        #: just before each event's callbacks run (used by the fault-space
        #: explorer's trace recorder; must itself be deterministic).  A hook
        #: that raises is logged and disabled — it never kills the run (and
        #: never defuses the traced event).  Assign directly for one hook, or
        #: use :meth:`add_tracer`/:meth:`remove_tracer` to chain several.
        self.tracer: Optional[StepTracer] = None
        self._tracers: List[StepTracer] = []

    # ------------------------------------------------------------------
    # Step tracers
    # ------------------------------------------------------------------
    def add_tracer(self, hook: StepTracer) -> None:
        """Attach ``hook`` alongside any already-installed step tracer.

        A single hook is installed directly (the hot loop sees exactly
        the old single-slot cost); two or more are fanned out through
        one composite closure.  A pre-existing directly-assigned
        :attr:`tracer` is adopted into the chain.
        """
        if not self._tracers and self.tracer is not None:
            self._tracers.append(self.tracer)
        self._tracers.append(hook)
        self._bind_tracers()

    def remove_tracer(self, hook: StepTracer) -> None:
        """Detach ``hook``; unknown hooks are ignored."""
        if hook in self._tracers:
            self._tracers.remove(hook)
            self._bind_tracers()
        elif self.tracer is hook:
            self.tracer = None

    def _bind_tracers(self) -> None:
        if not self._tracers:
            self.tracer = None
        elif len(self._tracers) == 1:
            self.tracer = self._tracers[0]
        else:
            hooks = tuple(self._tracers)

            def fan_out(when: float, priority: int, eid: int,
                        event: Any) -> None:
                for hook in hooks:
                    try:
                        hook(when, priority, eid, event)
                    except Exception:
                        self._tracer_failed(hook)

            self.tracer = fan_out

    def _tracer_failed(self, hook: StepTracer) -> None:
        """Disable a step hook that raised (logged once per hook).

        Each hook can fail at most once — it is removed here — so the
        ``logger.exception`` below cannot spam per event.
        """
        logger.exception("step tracer %r raised; disabling it", hook)
        if hook in self._tracers:
            self._tracers.remove(hook)
            self._bind_tracers()
        else:
            # A directly-assigned hook (or a stale composite): clear the
            # slot outright rather than risk re-raising every step.
            self.tracer = None
            self._tracers.clear()

    # ------------------------------------------------------------------
    # Clock and introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def tie_jitter_active(self) -> bool:
        """True when same-(time, priority) ordering is seed-perturbed."""
        return self._tie_rng is not None

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if the queue is empty."""
        if not self._queue:
            return Infinity
        return self._queue[0][0]

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a plain, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Register a generator as a new simulation process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Create an event that fires when all ``events`` have fired."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Create an event that fires when any of ``events`` has fired."""
        return AnyOf(self, list(events))

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL,
                 delay: float = 0.0) -> None:
        """Put ``event`` on the queue to fire ``delay`` from now."""
        # The tie key is 0.0 without a tie seed, reducing the ordering to
        # (time, priority, insertion); with one, it is drawn in scheduling
        # order from the seeded stream, so it is itself reproducible.
        tie_random = self._tie_random
        _heappush(self._queue,
                  (self._now + delay, priority,
                   0.0 if tie_random is None else tie_random(),
                   self._next_eid(), event))

    def step(self) -> None:
        """Process the next scheduled event.

        The body is duplicated inside :meth:`run`'s inner loop (with the
        queue and tracer bound to locals); keep the two in sync.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        queue = self._queue
        if not queue:
            raise EmptySchedule()
        when, priority, _tie, eid, event = _heappop(queue)

        self._now = when
        tracer = self.tracer
        if tracer is not None:
            try:
                tracer(when, priority, eid, event)
            except Exception:
                self._tracer_failed(tracer)
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            # Nobody caught the failure: surface it to the caller of run().
            raise event._value

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                Run until the event queue is exhausted.
            a number
                Run until the clock reaches that time.
            an :class:`Event`
                Run until that event fires; its value is returned.
        """
        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                # Already processed: return its value immediately.
                return stop_event.value
            stop_event.callbacks.append(self._stop_callback)
        else:
            at = float(until)
            if at < self._now:
                raise ValueError(
                    f"until ({at}) must not be earlier than now ({self._now})")
            stop_event = Event(self)
            # Urgent so that the run stops *before* processing other events
            # scheduled for exactly that time (tie key 0.0 sorts first).
            heapq.heappush(self._queue,
                           (at, 0, 0.0, next(self._eid), stop_event))
            stop_event._ok = True
            stop_event._value = None
            stop_event.callbacks.append(self._stop_callback)

        # The loop is :meth:`step`'s body inlined with ``queue`` bound to a
        # local (the tracer is re-read per event so it can be attached or
        # detached mid-run); keep the two in sync.
        queue = self._queue
        try:
            while True:
                if not queue:
                    raise EmptySchedule()
                when, priority, _tie, eid, event = _heappop(queue)
                self._now = when
                tracer = self.tracer
                if tracer is not None:
                    try:
                        tracer(when, priority, eid, event)
                    except Exception:
                        self._tracer_failed(tracer)
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event.defused:
                    raise event._value
        except StopSimulation as stop:
            return stop.args[0] if stop.args else None
        except EmptySchedule:
            if isinstance(until, Event) and not until.triggered:
                raise RuntimeError(
                    "simulation ended before the awaited event fired") from None
            return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        raise event._value
