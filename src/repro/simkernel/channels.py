"""Blocking FIFO channels for inter-process communication inside the kernel.

Two primitives are provided:

* :class:`Store` — unbounded (or capacity-bounded) FIFO buffer; ``get()``
  blocks (returns an event) until an item is available.
* :class:`Mailbox` — a Store specialised for message delivery, with a
  non-blocking ``drain()`` used by the CA-action runtime to "consume
  messages having arrived" when a thread enters an action (as the paper's
  algorithm requires).

Both preserve FIFO ordering, which is Assumption 2 of the paper.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, TYPE_CHECKING

from .events import Event, PENDING

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel


class StorePut(Event):
    """Event representing a pending put request."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        # Flattened Event initialisation: puts/gets are per-message events.
        self.kernel = store.kernel
        self.callbacks = []
        self.defused = False
        self._value = PENDING
        self._ok = None
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    """Event representing a pending get request."""

    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        self.kernel = store.kernel
        self.callbacks = []
        self.defused = False
        self._value = PENDING
        self._ok = None
        items = store.items
        if items and not store._get_queue and not store._put_queue:
            # Fast path: an item is buffered and nobody is ahead of us —
            # identical outcome to _trigger() serving this get.
            self.succeed(items.popleft())
            return
        store._get_queue.append(self)
        store._trigger()


class Store:
    """FIFO buffer of Python objects with blocking get.

    Parameters
    ----------
    kernel:
        Owning simulation kernel.
    capacity:
        Maximum number of buffered items; ``put`` blocks when full.
        Defaults to unbounded.
    """

    __slots__ = ("kernel", "capacity", "items", "_put_queue", "_get_queue")

    def __init__(self, kernel: "Kernel", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.kernel = kernel
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._put_queue: Deque[StorePut] = deque()
        self._get_queue: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Request to add ``item``; returns an event that fires on success."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Request to remove the oldest item; the event's value is the item."""
        return StoreGet(self)

    def peek_all(self) -> List[Any]:
        """Return a snapshot of buffered items without removing them."""
        return list(self.items)

    def _trigger(self) -> None:
        """Match pending puts and gets against the buffer state."""
        progress = True
        while progress:
            progress = False
            # Admit puts while there is room.
            while self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.popleft()
                self.items.append(put.item)
                put.succeed()
                progress = True
            # Serve gets while there are items.
            while self._get_queue and self.items:
                get = self._get_queue.popleft()
                get.succeed(self.items.popleft())
                progress = True


class Mailbox(Store):
    """A Store used as a message inbox.

    Adds :meth:`drain`, which synchronously removes and returns everything
    currently buffered (no simulation time passes), and :meth:`deliver`,
    which is a non-blocking unconditional append used by the network layer
    (delivery never blocks the sender).
    """

    __slots__ = ()

    def deliver(self, item: Any) -> None:
        """Append ``item`` immediately, waking one waiting getter if any."""
        # Fast path for the overwhelmingly common delivery shape: a getter
        # is already waiting, nothing is buffered and no puts are pending,
        # so the item goes straight to the getter (identical succeed order
        # to the general path, without touching the buffer).
        if self._get_queue and not self.items and not self._put_queue:
            self._get_queue.popleft().succeed(item)
            return
        self.items.append(item)
        self._trigger()

    def drain(self) -> List[Any]:
        """Remove and return all currently buffered items (possibly empty)."""
        drained = list(self.items)
        self.items.clear()
        return drained


class CyclicBuffer(Mailbox):
    """Bounded mailbox modelling the paper's per-partition cyclic buffer.

    The prototype in the paper keeps incoming messages "in the cyclic buffer
    of the receiver and then processed afterwards".  A cyclic buffer
    overwrites the oldest entry when full; here we record any overwritten
    message so that tests can assert the buffer was sized adequately (the
    algorithms assume no message loss).
    """

    __slots__ = ("overwritten",)

    def __init__(self, kernel: "Kernel", capacity: int = 1024) -> None:
        super().__init__(kernel, capacity=capacity)
        self.overwritten: List[Any] = []

    def deliver(self, item: Any) -> None:
        if len(self.items) >= self.capacity:
            self.overwritten.append(self.items.popleft())
        super().deliver(item)
