"""Event primitives for the discrete-event simulation kernel.

The kernel (see :mod:`repro.simkernel.kernel`) advances a virtual clock and
fires events in timestamp order.  Processes (see
:mod:`repro.simkernel.process`) are generators that *yield* events; when a
yielded event fires, the kernel resumes the process with the event's value
(or throws the event's exception into it).

The design intentionally mirrors the small core of SimPy, implemented from
scratch so that the repository has no third-party runtime dependency and so
that the scheduling policy is fully under our control (deterministic
tie-breaking by insertion order).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .kernel import Kernel


#: Sentinel used for the ``value`` of an event that has not yet fired.
PENDING = object()

#: Priority used for ordinary events.
NORMAL = 1

#: Priority used for urgent events (interrupts, process-initialisation).
#: Urgent events scheduled for the same timestamp fire before normal ones.
URGENT = 0


class Event:
    """A happening at a point in simulated time.

    An event starts out *untriggered*.  It becomes *triggered* when it is
    scheduled on the kernel queue and *processed* once its callbacks have
    run.  Processes wait for events by yielding them.

    The event hierarchy is ``__slots__``-based: events are the single most
    allocated object in a simulation (every timeout, message delivery and
    process resumption creates at least one), so avoiding a per-instance
    ``__dict__`` measurably cuts both allocation time and attribute-access
    time on the kernel's hot path.

    Attributes
    ----------
    callbacks:
        List of callables invoked with the event when it is processed.
        ``None`` after processing (appending then is an error).
    """

    __slots__ = ("kernel", "callbacks", "_value", "_ok", "defused")

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: Set by the kernel when a failed event's exception was delivered
        #: to at least one waiter (otherwise the kernel re-raises it).
        self.defused = False

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event fired successfully (valid only once triggered)."""
        if self._ok is None:
            raise RuntimeError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with (or the exception, if it failed)."""
        if self._value is PENDING:
            raise RuntimeError("event has not been triggered yet")
        return self._value

    # ------------------------------------------------------------------
    # Triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.kernel.schedule(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event with an exception.

        The exception will be thrown into every process waiting on the
        event.  If nobody handles it, the kernel re-raises it and the
        simulation stops.
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.kernel.schedule(self, NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of another event onto this one and fire.

        Used as a callback so that one event can mirror another.
        """
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{self.__class__.__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay of virtual time."""

    __slots__ = ("delay",)

    def __init__(self, kernel: "Kernel", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Flattened initialisation (no super() chain): timeouts are created
        # once per message delivery and per service interval.
        self.kernel = kernel
        self.callbacks = []
        self.defused = False
        self.delay = delay
        self._ok = True
        self._value = value
        kernel.schedule(self, priority=NORMAL, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, kernel: "Kernel", process: "Any") -> None:
        self.kernel = kernel
        self.callbacks = [process._resume]
        self.defused = False
        self._ok = True
        self._value = None
        kernel.schedule(self, priority=URGENT)


class ConditionValue:
    """Mapping-like result of a condition event.

    Maps each fired sub-event to its value, in firing order.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(str(key))
        return key.value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()}>"

    def __iter__(self):
        return iter(self.events)

    def keys(self):
        return iter(self.events)

    def values(self):
        return (event.value for event in self.events)

    def items(self):
        return ((event, event.value) for event in self.events)

    def todict(self) -> dict:
        return {event: event.value for event in self.events}


class Condition(Event):
    """Composite event over several sub-events.

    Fires when ``evaluate(events, count)`` returns True, where ``count`` is
    the number of sub-events that have fired successfully so far.  If any
    sub-event fails, the condition fails with the same exception.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(self, kernel: "Kernel",
                 evaluate: Callable[[List[Event], int], bool],
                 events: List[Event]) -> None:
        super().__init__(kernel)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.kernel is not kernel:
                raise ValueError("all events must belong to the same kernel")

        if not self._events:
            self.succeed(ConditionValue())
            return

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _build_value(self) -> ConditionValue:
        value = ConditionValue()
        for event in self._events:
            if isinstance(event, Condition):
                value.events.extend(event.value.events
                                    if isinstance(event.value, ConditionValue)
                                    else [])
            elif event.callbacks is None and event.triggered:
                value.events.append(event)
        return value

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed(self._build_value())

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        """Evaluator: fire when every sub-event has fired."""
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        """Evaluator: fire as soon as one sub-event has fired."""
        return count > 0 or len(events) == 0


class AllOf(Condition):
    """Condition that fires once all of the given events have fired."""

    __slots__ = ()

    def __init__(self, kernel: "Kernel", events: List[Event]) -> None:
        super().__init__(kernel, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that fires once any of the given events has fired."""

    __slots__ = ()

    def __init__(self, kernel: "Kernel", events: List[Event]) -> None:
        super().__init__(kernel, Condition.any_events, events)


class Interrupt(Exception):
    """Exception thrown into a process when it is interrupted.

    The ``cause`` carries whatever object the interrupter supplied — in the
    CA-action runtime this is the exception-notification that arrived while
    the role was executing its normal (or handler) code, mirroring the use
    of Ada 95 asynchronous transfer of control in the paper's prototype.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"Interrupt({self.cause!r})"
