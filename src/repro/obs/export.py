"""Trace exporters: JSONL, Chrome ``trace_event`` JSON, summaries.

Two on-disk formats:

* **JSONL** — one event record per line (``write_jsonl`` /
  ``read_jsonl``).  Flight-recorder dumps are the same format with a
  leading ``flight.header`` record carrying the ring metadata.
* **Chrome trace** — the ``trace_event`` JSON object format
  (``{"traceEvents": [...]}``) that Perfetto and ``chrome://tracing``
  load directly: completed spans become ``"X"`` complete events on one
  track per partition, life-cycle markers become ``"i"`` instants,
  message send/deliver pairs become ``"s"``/``"f"`` flow arrows, and
  metrics timelines become ``"C"`` counter tracks.

Everything here is offline post-processing over recorded events;
nothing runs during a simulation.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from . import events as kinds
from .events import category
from .spans import Span, build_spans, span_outcomes

#: Timestamp scale: virtual seconds → trace microseconds.
MICROSECONDS = 1e6

#: The one synthetic process every track lives under.
PID = 1

#: Synthetic tracks for events that do not belong to a partition.
WORKLOAD_TRACK = "workload"
OBJECTS_TRACK = "objects"


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------
def write_jsonl(events: Iterable[Dict[str, Any]], path: str) -> None:
    """One JSON object per line, oldest first."""
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")


def write_flight_dump(dump: Dict[str, Any], path: str) -> None:
    """A flight-recorder dump as JSONL with a leading header record."""
    header = {"kind": "flight.header",
              "capacity": dump.get("capacity"),
              "observed": dump.get("observed"),
              "truncated": dump.get("truncated")}
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True))
        handle.write("\n")
        for event in dump.get("events", ()):
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace (or flight dump) back into records."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def load_trace(path: str) -> Tuple[str, Any]:
    """Detect and load either trace format.

    Returns ``("chrome", doc)`` for a ``trace_event`` JSON object or
    ``("jsonl", records)`` for an event-per-line file.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        # Both formats can open with "{": a trace_event document is one
        # JSON object spanning the file, a JSONL stream is one object
        # per line.  Whole-file parse failing means JSONL.
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            doc = None
        if doc is not None:
            if "traceEvents" in doc:
                return "chrome", doc
            # A single-record JSONL file (one event) is indistinguishable
            # from non-trace JSON by syntax; treat any dict with "kind" as
            # a one-record event stream.
            if "kind" in doc:
                return "jsonl", [doc]
            raise ValueError(f"{path}: JSON object without 'traceEvents'")
    records = [json.loads(line) for line in text.splitlines() if line.strip()]
    return "jsonl", records


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------
def _instant(name: str, t: float, tid: int,
             args: Dict[str, Any]) -> Dict[str, Any]:
    return {"name": name, "cat": category(name), "ph": "i", "s": "t",
            "ts": t * MICROSECONDS, "pid": PID, "tid": tid, "args": args}


def chrome_trace(events: List[Dict[str, Any]],
                 timeline: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
    """Convert an event stream to the Chrome ``trace_event`` object form.

    ``timeline`` is an optional :class:`~repro.obs.metrics.Timeline`
    snapshot; its series are rendered as ``"C"`` counter tracks.
    High-volume ``kernel.step`` records are counted into the returned
    doc's ``otherData`` but deliberately not rendered as slices.
    """
    completed, still_open = build_spans(events)

    # One track per partition (span thread), plus synthetic tracks for
    # workload and shared-object events.  Sorted for determinism.
    track_names = sorted({span.thread for span in completed}
                         | {span.thread for span in still_open}
                         | {event["thread"] for event in events
                            if "thread" in event})
    tracks: Dict[str, int] = {name: index + 1
                              for index, name in enumerate(track_names)}

    def track(name: str) -> int:
        if name not in tracks:
            tracks[name] = len(tracks) + 1
        return tracks[name]

    trace: List[Dict[str, Any]] = []

    def emit_span(span: Span) -> None:
        end = span.end if span.end is not None else span.start
        trace.append({
            "name": span.action, "cat": "action", "ph": "X",
            "ts": span.start * MICROSECONDS,
            "dur": (end - span.start) * MICROSECONDS,
            "pid": PID, "tid": track(span.thread),
            "args": {"instance": span.instance, "status": span.status,
                     "resolved": span.resolved,
                     "signalled": span.signalled,
                     "open": span.end is None},
        })
        for marker in span.markers:
            args = {key: value for key, value in marker.items()
                    if key not in ("t", "kind", "thread")}
            trace.append(_instant(marker["kind"], marker["t"],
                                  track(span.thread), args))

    for span in completed:
        emit_span(span)
    for span in still_open:
        emit_span(span)

    kernel_steps = 0
    flow_id = 0
    for event in events:
        kind = event.get("kind")
        if kind == kinds.KERNEL_STEP:
            kernel_steps += 1
            continue
        cat = category(kind)
        if cat == "action":
            continue  # already rendered as spans and their markers
        args = {key: value for key, value in event.items()
                if key not in ("t", "kind")}
        if kind == kinds.MESSAGE_SENT:
            flow_id = event.get("seq", flow_id + 1)
            trace.append({
                "name": event.get("type", "message"), "cat": "message",
                "ph": "s", "id": flow_id,
                "ts": event["t"] * MICROSECONDS, "pid": PID,
                "tid": track(event.get("src", WORKLOAD_TRACK)),
                "args": args,
            })
        elif kind == kinds.MESSAGE_DELIVERED:
            trace.append({
                "name": event.get("type", "message"), "cat": "message",
                "ph": "f", "bp": "e", "id": event.get("seq", 0),
                "ts": event["t"] * MICROSECONDS, "pid": PID,
                "tid": track(event.get("dst", WORKLOAD_TRACK)),
                "args": args,
            })
        elif kind == kinds.MESSAGE_DROPPED:
            trace.append(_instant(kind, event["t"],
                                  track(event.get("dst", WORKLOAD_TRACK)),
                                  args))
        elif cat == "objects":
            trace.append(_instant(kind, event["t"], track(OBJECTS_TRACK),
                                  args))
        else:  # workload + unknown probes
            trace.append(_instant(kind, event["t"], track(WORKLOAD_TRACK),
                                  args))

    counters: List[Dict[str, Any]] = []
    if timeline:
        for name, points in sorted(timeline.get("series", {}).items()):
            for t, value in points:
                counters.append({
                    "name": name, "cat": "metrics", "ph": "C",
                    "ts": float(t) * MICROSECONDS, "pid": PID,
                    "args": {"value": value},
                })

    metadata: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": PID, "ts": 0,
        "args": {"name": "repro"},
    }]
    for name, tid in sorted(tracks.items(), key=lambda item: item[1]):
        metadata.append({"name": "thread_name", "ph": "M", "pid": PID,
                         "tid": tid, "ts": 0, "args": {"name": name}})

    return {
        "traceEvents": metadata + trace + counters,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "spans_completed": len(completed),
            "spans_open": len(still_open),
            "kernel_steps": kernel_steps,
        },
    }


#: Phases that require a ``dur`` field / an ``id`` field.
_DURATION_PHASES = frozenset("X")
_FLOW_PHASES = frozenset({"s", "t", "f"})
_KNOWN_PHASES = frozenset({"X", "B", "E", "i", "I", "M", "C",
                           "s", "t", "f", "b", "e", "n"})


def validate_chrome(doc: Any) -> List[str]:
    """Structural schema check of a ``trace_event`` JSON object.

    Returns a list of problems (empty when the doc is loadable by
    Perfetto / ``chrome://tracing``).  Checks the object form, the
    per-event required keys, and the per-phase extras.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    trace_events = doc.get("traceEvents")
    if not isinstance(trace_events, list):
        return ["'traceEvents' must be a list"]
    for index, event in enumerate(trace_events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: 'name' must be a string")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: 'pid' must be an integer")
        if phase != "M":
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"{where}: 'ts' must be a number")
            elif event["ts"] < 0:
                problems.append(f"{where}: 'ts' must be non-negative")
        if phase in _DURATION_PHASES:
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(f"{where}: 'X' needs non-negative 'dur'")
        if phase in _FLOW_PHASES and "id" not in event:
            problems.append(f"{where}: flow event needs 'id'")
    return problems


# ---------------------------------------------------------------------------
# Summaries and diffs
# ---------------------------------------------------------------------------
def summarize_events(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Kind/category counts, span outcomes, and the covered time range."""
    kind_counts: Dict[str, int] = {}
    category_counts: Dict[str, int] = {}
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    payload = [event for event in events
               if event.get("kind") != "flight.header"]
    for event in payload:
        kind = str(event.get("kind"))
        kind_counts[kind] = kind_counts.get(kind, 0) + 1
        cat = category(kind)
        category_counts[cat] = category_counts.get(cat, 0) + 1
        t = event.get("t")
        if isinstance(t, (int, float)):
            t_min = t if t_min is None else min(t_min, t)
            t_max = t if t_max is None else max(t_max, t)
    completed, still_open = build_spans(payload)
    durations = [span.duration for span in completed
                 if span.duration is not None]
    return {
        "format": "jsonl",
        "events": len(payload),
        "kinds": dict(sorted(kind_counts.items())),
        "categories": dict(sorted(category_counts.items())),
        "spans": {
            "completed": len(completed),
            "open": len(still_open),
            "outcomes": span_outcomes(completed),
            "max_duration": max(durations) if durations else None,
        },
        "time": {"start": t_min, "end": t_max},
    }


def summarize_chrome(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Phase/category counts of a ``trace_event`` document."""
    phase_counts: Dict[str, int] = {}
    category_counts: Dict[str, int] = {}
    outcomes: Dict[str, int] = {}
    for event in doc.get("traceEvents", ()):
        phase = str(event.get("ph"))
        phase_counts[phase] = phase_counts.get(phase, 0) + 1
        cat = str(event.get("cat", "none"))
        category_counts[cat] = category_counts.get(cat, 0) + 1
        if phase == "X" and event.get("cat") == "action":
            status = str((event.get("args") or {}).get("status"))
            outcomes[status] = outcomes.get(status, 0) + 1
    return {
        "format": "chrome",
        "events": len(doc.get("traceEvents", ())),
        "phases": dict(sorted(phase_counts.items())),
        "categories": dict(sorted(category_counts.items())),
        "spans": {"outcomes": dict(sorted(outcomes.items()))},
    }


def summarize_path(path: str) -> Dict[str, Any]:
    """Summarize either trace format straight from disk."""
    form, payload = load_trace(path)
    if form == "chrome":
        return summarize_chrome(payload)
    return summarize_events(payload)


def diff_summaries(a: Dict[str, Any], b: Dict[str, Any],
                   prefix: str = "") -> Dict[str, List[Any]]:
    """Flat ``{dotted.key: [a, b]}`` map of every differing leaf."""
    delta: Dict[str, List[Any]] = {}
    for key in sorted(set(a) | set(b)):
        ours, theirs = a.get(key), b.get(key)
        dotted = f"{prefix}{key}"
        if isinstance(ours, dict) or isinstance(theirs, dict):
            delta.update(diff_summaries(ours or {}, theirs or {},
                                        prefix=dotted + "."))
        elif ours != theirs:
            delta[dotted] = [ours, theirs]
    return delta
