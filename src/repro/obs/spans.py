"""Assembling raw event streams into causally-linked action spans.

A **span** is one participation of one partition in one CA-action
instance: it opens at ``action.entered`` and closes at
``action.concluded``, keyed by ``(action, instance, thread)``.  Every
intermediate life-cycle event for the same key — a raise, the switch to
the abortion phase, a resolution round's verdict, an outgoing signal —
becomes a **marker** inside the span, so the causal story of a
coordinated abort reads directly off the span's marker list.

Span assembly is a pure post-processing fold over the recorded events;
nothing here runs during the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from . import events as kinds

#: Life-cycle kinds recorded as markers inside an open span.
MARKER_KINDS = frozenset({
    kinds.ACTION_RAISED,
    kinds.ACTION_ABORTING,
    kinds.ACTION_RESOLVED,
    kinds.ACTION_SIGNALLED,
    kinds.ACTION_ABORTION_COMPLETED,
    kinds.SIGNAL_PARKED,
    kinds.SIGNAL_STALE_DROPPED,
})

SpanKey = Tuple[str, Optional[str], str]


@dataclass
class Span:
    """One partition's participation in one action instance."""

    action: str
    instance: Optional[str]
    thread: str
    start: float
    end: Optional[float] = None
    status: Optional[str] = None
    resolved: Optional[str] = None
    signalled: Optional[str] = None
    markers: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def duration(self) -> Optional[float]:
        """Virtual-time length, or None while still open."""
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "action": self.action,
            "instance": self.instance,
            "thread": self.thread,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "resolved": self.resolved,
            "signalled": self.signalled,
            "markers": list(self.markers),
        }


def _span_key(event: Dict[str, Any]) -> SpanKey:
    return (event.get("action", "?"), event.get("instance"),
            event.get("thread", "?"))


def build_spans(events: Iterable[Dict[str, Any]]
                ) -> Tuple[List[Span], List[Span]]:
    """Fold an event stream into ``(completed, still_open)`` spans.

    Events must be in emission order (they are: both the event list and
    the flight-recorder ring append in virtual-time order).  A
    ``concluded`` with no matching open span (its ``entered`` was
    evicted from a flight-recorder ring, or observation attached
    mid-run) closes a zero-length placeholder span starting at its own
    timestamp, so dump windows still render.
    """
    open_spans: Dict[SpanKey, Span] = {}
    completed: List[Span] = []
    for event in events:
        kind = event.get("kind")
        if kind == kinds.ACTION_ENTERED:
            key = _span_key(event)
            span = Span(action=key[0], instance=key[1], thread=key[2],
                        start=event["t"])
            open_spans[key] = span
        elif kind == kinds.ACTION_CONCLUDED:
            key = _span_key(event)
            span = open_spans.pop(key, None)
            if span is None:
                span = Span(action=key[0], instance=key[1], thread=key[2],
                            start=event["t"])
            span.end = event["t"]
            span.status = event.get("status")
            span.resolved = event.get("resolved")
            span.signalled = event.get("signalled")
            completed.append(span)
        elif kind in MARKER_KINDS:
            span = open_spans.get(_span_key(event))
            if span is not None:
                span.markers.append(event)
    still_open = sorted(open_spans.values(),
                        key=lambda span: (span.start, span.thread))
    return completed, still_open


def span_outcomes(spans: Iterable[Span]) -> Dict[str, int]:
    """Completed-span counts per conclusion status.

    Reconciles against ``RunMetrics.summary()["outcomes"]``: the runtime
    records exactly one outcome per concluded participation, and the
    tracer opens/closes exactly one span for it.
    """
    counts: Dict[str, int] = {}
    for span in spans:
        if span.end is None:
            continue
        status = span.status or "unknown"
        counts[status] = counts.get(status, 0) + 1
    return dict(sorted(counts.items()))
