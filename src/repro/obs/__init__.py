"""``repro.obs`` — spans, metrics timelines, and flight recording.

The observability layer for every execution backend.  Three collectors
(see :class:`ObsConfig`): a **span tracer** assembling the runtime's
life-cycle probes, network messages, admission decisions, and lock
events into causally-linked per-``(action, instance)`` spans; a
**metrics registry** of mergeable counters/gauges/histograms sampled
into sim-time timelines; and a bounded **flight recorder** ring that
gives every failure its last-N-events timeline.

Two ways to turn it on:

* **Scoped** — :func:`capture` installs an ambient capture; every
  :class:`~repro.runtime.system.DistributedCASystem` constructed inside
  the ``with`` block is observed automatically::

      from repro import obs
      with obs.capture(obs.ObsConfig()) as cap:
          run_capacity_point(offered_load=2.0, n_instances=50)
      cap.write_chrome_trace("capacity.trace.json")

* **Direct** — :func:`observe_system` attaches one observation to an
  already-built system (the explorer does this for its always-on
  flight recorder).

When nothing is captured, the module is a strict no-op: systems carry
``observation = None``, every instrumentation site short-circuits on
one attribute check, and no per-event allocation happens.  Observation
never schedules kernel events and never perturbs scheduling — all
conformance digests are bit-identical with observability off and on
(``python -m repro.conformance --check --obs`` proves it).

``python -m repro.obs`` summarizes, converts, and diffs exported
traces; see :mod:`repro.obs.export` for the file formats.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Dict, Iterator, List, Optional, TYPE_CHECKING

from .config import ObsConfig
from .export import (chrome_trace, diff_summaries, read_jsonl,
                     summarize_events, validate_chrome, write_flight_dump,
                     write_jsonl)
from .metrics import MetricsRegistry
from .observation import SystemObservation
from .recorder import FlightRecorder
from .spans import Span, build_spans, span_outcomes

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.system import DistributedCASystem

__all__ = [
    "ObsConfig", "SystemObservation", "Capture", "FlightRecorder",
    "MetricsRegistry", "Span", "build_spans", "span_outcomes",
    "capture", "observe_system", "maybe_observe", "enabled", "active",
    "chrome_trace", "validate_chrome", "write_jsonl", "read_jsonl",
    "write_flight_dump", "summarize_events", "diff_summaries",
]

#: The ambient capture (module-level enabled check).  ``None`` means
#: observability is off and :func:`maybe_observe` costs one global read.
_ACTIVE: Optional["Capture"] = None
_ACTIVE_LOCK = threading.Lock()


def enabled() -> bool:
    """True while an ambient :func:`capture` is installed."""
    return _ACTIVE is not None


def active() -> Optional["Capture"]:
    """The ambient capture, if any."""
    return _ACTIVE


def observe_system(system: "DistributedCASystem",
                   config: Optional[ObsConfig] = None) -> SystemObservation:
    """Attach a fresh observation to one system (direct enablement)."""
    observation = SystemObservation(system, config)
    _attach(system, observation)
    return observation


def maybe_observe(system: "DistributedCASystem"
                  ) -> Optional[SystemObservation]:
    """Adopt ``system`` into the ambient capture, when one is active.

    Called once from ``DistributedCASystem.__init__``; the disabled
    path is a single module-global read returning ``None``.
    """
    capture_ = _ACTIVE
    if capture_ is None:
        return None
    return capture_.adopt(system)


def _attach(system: "DistributedCASystem",
            observation: SystemObservation) -> None:
    system.observation = observation
    system.add_probe(observation.on_probe)
    system.network._obs = observation
    locks = getattr(system.transactions, "locks", None)
    if locks is not None:
        locks._obs = observation
    if observation.config.kernel_steps:
        system.kernel.add_tracer(observation.kernel_step)


class Capture:
    """An ambient observation scope aggregating every adopted system.

    Most runs build one system, but engine sweeps build one per grid
    point; the capture keeps each system's observation and offers
    merged views (events in adoption order, metrics via the registry
    merge algebra).
    """

    def __init__(self, config: Optional[ObsConfig] = None) -> None:
        self.config = config or ObsConfig()
        self.observations: List[SystemObservation] = []

    def adopt(self, system: "DistributedCASystem") -> SystemObservation:
        """Observe one more system under this capture's config."""
        observation = SystemObservation(system, self.config)
        _attach(system, observation)
        self.observations.append(observation)
        return observation

    # -- merged views --------------------------------------------------
    def events(self) -> List[Dict[str, Any]]:
        """Every recorded event, grouped by system in adoption order.

        Systems run on independent virtual clocks, so a global time
        sort would interleave unrelated runs; per-system order is the
        causal order.
        """
        merged: List[Dict[str, Any]] = []
        for observation in self.observations:
            if observation.events:
                merged.extend(observation.events)
        return merged

    def spans(self) -> List[Span]:
        """Completed and open spans across every adopted system."""
        spans: List[Span] = []
        for observation in self.observations:
            if observation.events:
                completed, still_open = build_spans(observation.events)
                spans.extend(completed)
                spans.extend(still_open)
        return spans

    def metrics_snapshot(self) -> Dict[str, Any]:
        """All adopted registries merged into one snapshot."""
        merged = MetricsRegistry(self.config.timeline_interval)
        for observation in self.observations:
            if observation.metrics is not None:
                merged.merge(observation.metrics.snapshot())
        return merged.snapshot()

    def prometheus_text(self) -> str:
        """Prometheus text exposition of the merged registries."""
        merged = MetricsRegistry(self.config.timeline_interval)
        for observation in self.observations:
            if observation.metrics is not None:
                merged.merge(observation.metrics.snapshot())
        return merged.prometheus_text()

    def chrome_trace(self) -> Dict[str, Any]:
        """The merged event stream as a Chrome ``trace_event`` doc."""
        timeline = None
        if self.observations and self.config.metrics:
            timeline = self.metrics_snapshot().get("timeline")
        return chrome_trace(self.events(), timeline=timeline)

    def flight_dumps(self) -> List[Dict[str, Any]]:
        """Every adopted system's flight dump, adoption order."""
        return [dump for dump in
                (observation.flight_dump()
                 for observation in self.observations)
                if dump is not None]

    # -- file exports --------------------------------------------------
    def write_jsonl(self, path: str) -> None:
        write_jsonl(self.events(), path)

    def write_chrome_trace(self, path: str) -> None:
        import json
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, sort_keys=True)

    def __repr__(self) -> str:
        return f"<Capture systems={len(self.observations)}>"


@contextlib.contextmanager
def capture(config: Optional[ObsConfig] = None) -> Iterator[Capture]:
    """Install an ambient capture for the duration of the block.

    Captures do not nest (one ambient scope per process — nesting
    would silently split event streams); entering a second one raises.
    """
    global _ACTIVE
    scope = Capture(config)
    with _ACTIVE_LOCK:
        if _ACTIVE is not None:
            raise RuntimeError("an obs.capture() scope is already active; "
                               "captures do not nest")
        _ACTIVE = scope
    try:
        yield scope
    finally:
        with _ACTIVE_LOCK:
            _ACTIVE = None
