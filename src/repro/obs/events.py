"""The observability event taxonomy.

Every instrumentation point in the kernel, network, runtime, and
workload layers emits one **event record**: a plain dict with two
mandatory keys — ``"t"`` (virtual time) and ``"kind"`` (one of the
constants below) — plus kind-specific fields.  Plain dicts keep the hot
path allocation-cheap, make JSONL export trivial, and survive pickling
unchanged.

Kinds are dotted ``layer.verb`` strings grouped into four categories:

========== =====================================================
category   kinds
========== =====================================================
action     ``action.entered`` ``action.raised`` ``action.aborting``
           ``action.resolved`` ``action.signalled``
           ``action.concluded`` ``action.abortion_completed``
           ``signal.parked`` ``signal.stale_dropped``
message    ``message.sent`` ``message.delivered`` ``message.dropped``
workload   ``job.submitted`` ``job.dispatched`` ``job.completed``
           ``job.dropped`` ``admission.queued`` ``admission.retry``
           ``admission.dropped``
objects    ``lock.granted`` ``lock.waiting`` ``lock.deadlock``
           ``lock.released``
kernel     ``kernel.step`` (opt-in; one record per scheduler step)
========== =====================================================

Life-cycle kinds are derived mechanically from the runtime's probe
names (``system.probe("entered", ...)`` becomes ``action.entered``);
unknown probe names pass through as ``probe.<name>`` so a future probe
is recorded rather than lost.
"""

from __future__ import annotations

from typing import Dict

# --- action life-cycle (from ``DistributedCASystem.probes``) ----------
ACTION_ENTERED = "action.entered"
ACTION_RAISED = "action.raised"
ACTION_ABORTING = "action.aborting"
ACTION_RESOLVED = "action.resolved"
ACTION_SIGNALLED = "action.signalled"
ACTION_CONCLUDED = "action.concluded"
ACTION_ABORTION_COMPLETED = "action.abortion_completed"
SIGNAL_PARKED = "signal.parked"
SIGNAL_STALE_DROPPED = "signal.stale_dropped"

# --- messaging (from ``Network`` / ``RpcEndpoint``) -------------------
MESSAGE_SENT = "message.sent"
MESSAGE_DELIVERED = "message.delivered"
MESSAGE_DROPPED = "message.dropped"
RPC_FAILURE = "rpc.failure"

# --- workload admission + jobs (from ``WorkloadDriver``) --------------
JOB_SUBMITTED = "job.submitted"
JOB_DISPATCHED = "job.dispatched"
JOB_COMPLETED = "job.completed"
JOB_DROPPED = "job.dropped"
ADMISSION_QUEUED = "admission.queued"
ADMISSION_RETRY = "admission.retry"
ADMISSION_DROPPED = "admission.dropped"

# --- shared objects (from ``LockManager``) ----------------------------
LOCK_GRANTED = "lock.granted"
LOCK_WAITING = "lock.waiting"
LOCK_DEADLOCK = "lock.deadlock"
LOCK_RELEASED = "lock.released"

# --- scheduler (opt-in, high volume) ----------------------------------
KERNEL_STEP = "kernel.step"

#: Runtime probe name → event kind.  Probes not listed here are still
#: recorded, as ``probe.<name>``.
PROBE_KINDS: Dict[str, str] = {
    "entered": ACTION_ENTERED,
    "raised": ACTION_RAISED,
    "aborting": ACTION_ABORTING,
    "resolved": ACTION_RESOLVED,
    "signalled": ACTION_SIGNALLED,
    "concluded": ACTION_CONCLUDED,
    "abortion_completed": ACTION_ABORTION_COMPLETED,
    "signal_parked": SIGNAL_PARKED,
    "signal_stale_dropped": SIGNAL_STALE_DROPPED,
}

#: Kind → category, used by the Chrome exporter to pick track and
#: phase, and by :func:`repro.obs.export.summarize` to group counts.
CATEGORIES: Dict[str, str] = {}
for _kind in (ACTION_ENTERED, ACTION_RAISED, ACTION_ABORTING,
              ACTION_RESOLVED, ACTION_SIGNALLED, ACTION_CONCLUDED,
              ACTION_ABORTION_COMPLETED, SIGNAL_PARKED,
              SIGNAL_STALE_DROPPED):
    CATEGORIES[_kind] = "action"
for _kind in (MESSAGE_SENT, MESSAGE_DELIVERED, MESSAGE_DROPPED,
              RPC_FAILURE):
    CATEGORIES[_kind] = "message"
for _kind in (JOB_SUBMITTED, JOB_DISPATCHED, JOB_COMPLETED, JOB_DROPPED,
              ADMISSION_QUEUED, ADMISSION_RETRY, ADMISSION_DROPPED):
    CATEGORIES[_kind] = "workload"
for _kind in (LOCK_GRANTED, LOCK_WAITING, LOCK_DEADLOCK, LOCK_RELEASED):
    CATEGORIES[_kind] = "objects"
CATEGORIES[KERNEL_STEP] = "kernel"
del _kind


def category(kind: str) -> str:
    """The category of an event kind (``"probe"`` for pass-throughs)."""
    return CATEGORIES.get(kind, "probe")
