"""Counters, gauges, histograms, and sim-time timelines.

A :class:`MetricsRegistry` is the metrics half of the observability
layer.  It follows the repo's established merge algebra —
:class:`~repro.analysis.histograms.LatencyHistogram` for distributions,
and the ``snapshot()`` / ``restore()`` / ``merge()`` triple that
:class:`~repro.analysis.metrics.RunMetrics`,
:class:`~repro.net.network.MessageStatistics`, and
:class:`~repro.workload.admission.AdmissionStats` already speak — so
per-run registries from sharded or repeated runs aggregate exactly:

* **counters** sum;
* **gauges** sum (shards of one deployment: in-flight totals add);
* **histograms** merge bucket-wise via the ``LatencyHistogram`` algebra;
* **timelines** align on their shared sampling grid and sum per tick.

The :class:`Timeline` ticker is *passive*: it never schedules kernel
events (which would shift event ids and break byte-level trace
digests).  Instead every instrumented emission calls
:meth:`Timeline.maybe_sample`, which catches up all grid points at or
before the current virtual time.  The grid is ``sample * interval`` by
integer multiplication, so there is no floating-point drift.

Exports: :meth:`MetricsRegistry.snapshot` is plain JSON, and
:meth:`MetricsRegistry.prometheus_text` renders the standard Prometheus
text exposition format (counters/gauges/cumulative ``le`` buckets).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..analysis.histograms import LatencyHistogram

#: Internal label key: labels sorted into a hashable tuple of pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Dict[str, str]]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_text(key: LabelKey) -> str:
    """Prometheus label block (empty string for the unlabelled series)."""
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time level (queue depth, instances in flight)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta


class Timeline:
    """Sim-time sampled series on a fixed grid, merge-aligned.

    ``track(name, fn)`` registers a sampler; :meth:`maybe_sample`
    appends one ``(t, fn())`` point per tracked series for every grid
    point newly at or before ``now``.  Passive by construction — the
    caller's own event flow drives sampling, so an idle stretch of
    virtual time is back-filled when the next event arrives (each
    sampler reads *current* state, which is exactly the state that held
    throughout the idle stretch).
    """

    def __init__(self, interval: float = 1.0) -> None:
        if interval <= 0:
            raise ValueError("timeline interval must be positive")
        self.interval = float(interval)
        self._trackers: Dict[str, Callable[[], float]] = {}
        self.series: Dict[str, List[Tuple[float, float]]] = {}
        self._samples = 0

    def track(self, name: str, sampler: Callable[[], float]) -> None:
        """Register (or replace) a sampler for ``name``."""
        self._trackers[name] = sampler
        self.series.setdefault(name, [])

    def maybe_sample(self, now: float) -> None:
        """Record every grid point newly reached by virtual time ``now``."""
        if not self._trackers:
            return
        while self._samples * self.interval <= now:
            t = self._samples * self.interval
            for name, sampler in self._trackers.items():
                self.series[name].append((t, float(sampler())))
            self._samples += 1

    # -- merge algebra -------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        return {
            "interval": self.interval,
            "samples": self._samples,
            "series": {name: [[t, v] for t, v in points]
                       for name, points in self.series.items()},
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        if snapshot.get("interval") != self.interval:
            raise ValueError(
                f"timeline intervals differ: {self.interval} != "
                f"{snapshot.get('interval')}")
        self._samples = int(snapshot.get("samples", 0))
        self.series = {name: [(float(t), float(v)) for t, v in points]
                       for name, points in snapshot.get("series", {}).items()}

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Sum another timeline's points onto this one, tick-aligned."""
        if snapshot.get("interval") != self.interval:
            raise ValueError(
                f"timeline intervals differ: {self.interval} != "
                f"{snapshot.get('interval')}")
        for name, points in snapshot.get("series", {}).items():
            merged = {t: v for t, v in self.series.get(name, [])}
            for t, v in points:
                t = float(t)
                merged[t] = merged.get(t, 0.0) + float(v)
            self.series[name] = sorted(merged.items())
        self._samples = max(self._samples, int(snapshot.get("samples", 0)))


class MetricsRegistry:
    """Named counter/gauge/histogram families plus one timeline.

    Families are created on first touch; a family may carry labels
    (e.g. ``link="A->B"``), and every ``(family, labels)`` pair is one
    series.  All state is mergeable and JSON-round-trippable.
    """

    def __init__(self, timeline_interval: float = 1.0) -> None:
        self._counters: Dict[str, Dict[LabelKey, Counter]] = {}
        self._gauges: Dict[str, Dict[LabelKey, Gauge]] = {}
        self._histograms: Dict[str, Dict[LabelKey, LatencyHistogram]] = {}
        self.timeline = Timeline(timeline_interval)

    # -- family accessors ----------------------------------------------
    def counter(self, name: str,
                labels: Optional[Dict[str, str]] = None) -> Counter:
        family = self._counters.setdefault(name, {})
        key = _label_key(labels)
        series = family.get(key)
        if series is None:
            series = family[key] = Counter()
        return series

    def gauge(self, name: str,
              labels: Optional[Dict[str, str]] = None) -> Gauge:
        family = self._gauges.setdefault(name, {})
        key = _label_key(labels)
        series = family.get(key)
        if series is None:
            series = family[key] = Gauge()
        return series

    def histogram(self, name: str,
                  labels: Optional[Dict[str, str]] = None,
                  **options: Any) -> LatencyHistogram:
        family = self._histograms.setdefault(name, {})
        key = _label_key(labels)
        series = family.get(key)
        if series is None:
            series = family[key] = LatencyHistogram(**options)
        return series

    # -- merge algebra -------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict (JSON-serializable) copy of every series."""

        def rows(families: Dict[str, Dict[LabelKey, Any]],
                 value: Callable[[Any], Any]) -> Dict[str, List[dict]]:
            return {
                name: [{"labels": dict(key), "value": value(series)}
                       for key, series in sorted(family.items())]
                for name, family in sorted(families.items())
            }

        return {
            "schema": 1,
            "counters": rows(self._counters, lambda c: c.value),
            "gauges": rows(self._gauges, lambda g: g.value),
            "histograms": rows(self._histograms, lambda h: h.snapshot()),
            "timeline": self.timeline.snapshot(),
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Reset this registry to the state captured in ``snapshot``."""
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self.timeline = Timeline(snapshot.get("timeline", {})
                                 .get("interval", self.timeline.interval))
        self.merge(snapshot)

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Aggregate another registry's snapshot onto this one."""
        for name, rows in snapshot.get("counters", {}).items():
            for row in rows:
                self.counter(name, row["labels"]).inc(row["value"])
        for name, rows in snapshot.get("gauges", {}).items():
            for row in rows:
                self.gauge(name, row["labels"]).add(row["value"])
        for name, rows in snapshot.get("histograms", {}).items():
            family = self._histograms.setdefault(name, {})
            for row in rows:
                key = _label_key(row["labels"])
                if key in family:
                    family[key].merge(row["value"])
                else:
                    family[key] = LatencyHistogram.from_snapshot(row["value"])
        timeline = snapshot.get("timeline")
        if timeline and timeline.get("series"):
            self.timeline.merge(timeline)

    # -- exporters -----------------------------------------------------
    def prometheus_text(self, prefix: str = "repro_") -> str:
        """Standard Prometheus text exposition of every series."""
        lines: List[str] = []
        for name, family in sorted(self._counters.items()):
            metric = prefix + name
            lines.append(f"# TYPE {metric} counter")
            for key, series in sorted(family.items()):
                lines.append(f"{metric}{_label_text(key)} "
                             f"{format(series.value, 'g')}")
        for name, family in sorted(self._gauges.items()):
            metric = prefix + name
            lines.append(f"# TYPE {metric} gauge")
            for key, series in sorted(family.items()):
                lines.append(f"{metric}{_label_text(key)} "
                             f"{format(series.value, 'g')}")
        for name, family in sorted(self._histograms.items()):
            metric = prefix + name
            lines.append(f"# TYPE {metric} histogram")
            for key, series in sorted(family.items()):
                cumulative = 0
                for index, bucket in enumerate(series.buckets):
                    cumulative += bucket
                    edge = format(series.bucket_edge(index), "g")
                    label = _label_text(key + (("le", edge),))
                    lines.append(f"{metric}_bucket{label} {cumulative}")
                label = _label_text(key + (("le", "+Inf"),))
                lines.append(f"{metric}_bucket{label} {series.count}")
                lines.append(f"{metric}_sum{_label_text(key)} "
                             f"{format(series.sum, 'g')}")
                lines.append(f"{metric}_count{_label_text(key)} "
                             f"{series.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:
        return (f"<MetricsRegistry counters={len(self._counters)} "
                f"gauges={len(self._gauges)} "
                f"histograms={len(self._histograms)}>")
