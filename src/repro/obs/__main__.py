"""Trace tooling: ``python -m repro.obs``.

Three commands over exported trace files (JSONL event streams, flight
dumps, or Chrome ``trace_event`` JSON — the format is auto-detected):

* ``summarize FILE`` — event/kind/category counts, span outcomes, and
  the covered virtual-time range;
* ``convert FILE -o OUT`` — JSONL events → Chrome ``trace_event`` JSON
  (open the result at https://ui.perfetto.dev);
* ``diff A B`` — summarize both files and print every differing leaf.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..cli import add_logging_arguments, configure_logging
from .export import (chrome_trace, diff_summaries, load_trace,
                     summarize_path, validate_chrome)


def cmd_summarize(arguments) -> int:
    print(json.dumps(summarize_path(arguments.file), indent=2,
                     sort_keys=True))
    return 0


def cmd_convert(arguments) -> int:
    form, payload = load_trace(arguments.file)
    if form == "chrome":
        print(f"{arguments.file} is already a Chrome trace", file=sys.stderr)
        return 2
    events = [record for record in payload
              if record.get("kind") != "flight.header"]
    doc = chrome_trace(events)
    problems = validate_chrome(doc)
    if problems:  # pragma: no cover - converter always emits valid docs
        for problem in problems:
            print(f"invalid output: {problem}", file=sys.stderr)
        return 1
    with open(arguments.output, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, sort_keys=True)
    print(f"wrote {arguments.output} "
          f"({len(doc['traceEvents'])} trace events)")
    return 0


def cmd_diff(arguments) -> int:
    delta = diff_summaries(summarize_path(arguments.a),
                           summarize_path(arguments.b))
    print(json.dumps(delta, indent=2, sort_keys=True))
    return 1 if delta else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize, convert, and diff exported traces.")
    add_logging_arguments(parser)
    commands = parser.add_subparsers(dest="command", required=True)

    summarize_cmd = commands.add_parser(
        "summarize", help="event counts, span outcomes, time range")
    summarize_cmd.add_argument("file", help="JSONL or Chrome trace file")
    summarize_cmd.set_defaults(func=cmd_summarize)

    convert_cmd = commands.add_parser(
        "convert", help="JSONL events → Chrome trace_event JSON")
    convert_cmd.add_argument("file", help="JSONL trace or flight dump")
    convert_cmd.add_argument("-o", "--output", required=True,
                             help="output trace_event JSON path")
    convert_cmd.set_defaults(func=cmd_convert)

    diff_cmd = commands.add_parser(
        "diff", help="differing summary leaves of two trace files")
    diff_cmd.add_argument("a", help="first trace file")
    diff_cmd.add_argument("b", help="second trace file")
    diff_cmd.set_defaults(func=cmd_diff)

    arguments = parser.parse_args(argv)
    configure_logging(arguments)
    return arguments.func(arguments)


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
