"""Observation configuration: which collectors run, at what cost."""

from __future__ import annotations

from dataclasses import dataclass

from .recorder import DEFAULT_CAPACITY


@dataclass(frozen=True)
class ObsConfig:
    """What a :class:`~repro.obs.observation.SystemObservation` collects.

    The three collectors are independent:

    * ``spans`` — keep the full event stream in memory for span
      assembly and JSONL / Chrome export (unbounded: one dict per
      event, so size with the run);
    * ``metrics`` — maintain the counter/gauge/histogram registry and
      the passively sampled timelines;
    * ``flight_recorder`` — keep the bounded last-N-events ring for
      crash dumps (the cheapest collector: fixed memory, O(1) per
      event).

    ``kernel_steps`` additionally hooks the scheduler's step tracer —
    one record per executed event, high volume — and is off by default.
    """

    spans: bool = True
    metrics: bool = True
    flight_recorder: bool = True
    flight_capacity: int = DEFAULT_CAPACITY
    timeline_interval: float = 1.0
    kernel_steps: bool = False

    @classmethod
    def flight_only(cls, capacity: int = DEFAULT_CAPACITY) -> "ObsConfig":
        """The always-on crash-dump profile: just the bounded ring."""
        return cls(spans=False, metrics=False, flight_recorder=True,
                   flight_capacity=capacity)

    @classmethod
    def full(cls) -> "ObsConfig":
        """Everything on, including per-step kernel records."""
        return cls(kernel_steps=True)
