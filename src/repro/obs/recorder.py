"""The flight recorder: a bounded ring of the run's last N events.

Crash-dump style observability.  The recorder is cheap enough to leave
on for every explorer run: appending to a ``deque(maxlen=...)`` is O(1)
and evicts the oldest record automatically, so memory stays bounded no
matter how long the run.  When something goes wrong — an
``InvariantMonitor`` oracle fires, a run raises, or the corpus search
shrinks a reproducer — :meth:`FlightRecorder.dump` yields the terminal
window of events that led up to the failure.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List

#: Default ring capacity.  Explorer targets emit a few hundred events
#: per run, so the default usually captures the whole run; larger sims
#: keep the most recent window.
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Bounded event ring with an eviction-aware dump."""

    __slots__ = ("capacity", "observed", "_ring")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        #: Total events ever offered (so a dump can report truncation).
        self.observed = 0
        self._ring: deque = deque(maxlen=capacity)

    def append(self, event: Dict[str, Any]) -> None:
        """Record one event, evicting the oldest when full."""
        self.observed += 1
        self._ring.append(event)

    def __len__(self) -> int:
        return len(self._ring)

    def events(self) -> List[Dict[str, Any]]:
        """The retained window, oldest first."""
        return list(self._ring)

    def dump(self) -> Dict[str, Any]:
        """A self-describing dump: the window plus truncation metadata.

        ``observed`` counts every event offered to the ring since the
        recorder attached; ``observed - len(events)`` is therefore the
        number of evicted (lost) records.
        """
        events = self.events()
        return {
            "capacity": self.capacity,
            "observed": self.observed,
            "truncated": self.observed > len(events),
            "events": events,
        }

    def __repr__(self) -> str:
        return (f"<FlightRecorder {len(self._ring)}/{self.capacity} "
                f"observed={self.observed}>")
