"""Per-system observation: the sink every instrumentation point feeds.

One :class:`SystemObservation` is attached to one
:class:`~repro.runtime.system.DistributedCASystem` (and its network,
lock manager, and any workload driver built on top).  The
instrumentation sites themselves stay trivial — each holds an ``_obs``
attribute that is ``None`` when observability is off, so the disabled
cost is a single attribute-is-None check and **no event dict is ever
allocated**.  When attached, every site calls one method here; this
class normalizes the payload into a plain event record and fans it out
to the enabled collectors (event list, metrics registry, flight ring).

Nothing in this module schedules kernel events, draws randomness, or
mutates run results: observation is strictly read-only with respect to
the simulation, which is what keeps conformance digests bit-identical
with observability on.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from . import events as kinds
from .config import ObsConfig
from .events import PROBE_KINDS
from .metrics import MetricsRegistry
from .recorder import FlightRecorder

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.system import DistributedCASystem
    from ..workload.driver import WorkloadDriver


def _plain(value: Any) -> Any:
    """JSON-friendly form of a probe payload value.

    ``ActionStatus`` enums become their string value, exception
    descriptors their name; anything else non-primitive falls back to
    ``str``.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if isinstance(value, enum.Enum):
        return value.value
    name = getattr(value, "name", None)
    if isinstance(name, str):
        return name
    return str(value)


class SystemObservation:
    """Collector state for one observed system."""

    __slots__ = ("config", "system", "_kernel", "events", "flight",
                 "metrics", "_message_seq", "_envelope_seq",
                 "_open_starts", "_tracked_links")

    def __init__(self, system: "DistributedCASystem",
                 config: Optional[ObsConfig] = None) -> None:
        config = config or ObsConfig()
        self.config = config
        self.system = system
        self._kernel = system.kernel
        self.events: Optional[List[Dict[str, Any]]] = \
            [] if config.spans else None
        self.flight: Optional[FlightRecorder] = \
            FlightRecorder(config.flight_capacity) \
            if config.flight_recorder else None
        self.metrics: Optional[MetricsRegistry] = \
            MetricsRegistry(config.timeline_interval) \
            if config.metrics else None
        self._message_seq = 0
        self._envelope_seq: Dict[int, int] = {}
        self._open_starts: Dict[Tuple[Any, ...], float] = {}
        self._tracked_links: set = set()
        if self.metrics is not None:
            stats = system.network.stats
            timeline = self.metrics.timeline
            timeline.track("messages_sent", lambda: stats.sent)
            timeline.track("messages_delivered", lambda: stats.delivered)
            timeline.track("messages_dropped", lambda: stats.dropped)

    # ------------------------------------------------------------------
    def _emit(self, event: Dict[str, Any]) -> None:
        if self.events is not None:
            self.events.append(event)
        if self.flight is not None:
            self.flight.append(event)

    # ------------------------------------------------------------------
    # Life-cycle probes (runtime/{lifecycle,dispatcher,effects}.py)
    # ------------------------------------------------------------------
    def on_probe(self, name: str, **data: Any) -> None:
        """Adapter registered on ``system.probes``."""
        kind = PROBE_KINDS.get(name, None)
        if kind is None:
            kind = "probe." + name
        now = self._kernel.now
        event: Dict[str, Any] = {"t": now, "kind": kind}
        for key, value in data.items():
            event[key] = _plain(value)
        self._emit(event)
        metrics = self.metrics
        if metrics is None:
            return
        if kind == kinds.ACTION_ENTERED:
            metrics.counter("actions_entered_total").inc()
            key = (data.get("action"), data.get("instance"),
                   data.get("thread"))
            self._open_starts[key] = now
        elif kind == kinds.ACTION_CONCLUDED:
            metrics.counter("actions_concluded_total",
                            {"status": event.get("status", "unknown")}).inc()
            key = (data.get("action"), data.get("instance"),
                   data.get("thread"))
            start = self._open_starts.pop(key, None)
            if start is not None:
                metrics.histogram("span_duration").record(now - start)
        elif kind == kinds.ACTION_RAISED:
            metrics.counter("actions_raised_total").inc()
        elif kind == kinds.ACTION_ABORTING:
            metrics.counter("abortions_total").inc()
        elif kind == kinds.ACTION_SIGNALLED:
            metrics.counter("signals_total").inc()
        metrics.timeline.maybe_sample(now)

    # ------------------------------------------------------------------
    # Messaging (net/network.py)
    # ------------------------------------------------------------------
    def message_sent(self, envelope: Any) -> None:
        self._message_seq += 1
        seq = self._message_seq
        self._envelope_seq[id(envelope)] = seq
        src, dst = envelope.source, envelope.destination
        self._emit({"t": self._kernel.now, "kind": kinds.MESSAGE_SENT,
                    "src": src, "dst": dst,
                    "type": type(envelope.payload).__name__, "seq": seq})
        metrics = self.metrics
        if metrics is not None:
            link = f"{src}->{dst}"
            metrics.counter("messages_sent_total", {"link": link}).inc()
            if link not in self._tracked_links:
                self._tracked_links.add(link)
                by_link = self.system.network.stats.by_link
                key = (src, dst)
                metrics.timeline.track(
                    f"messages_sent[{link}]",
                    lambda key=key: by_link.get(key, 0))
            metrics.timeline.maybe_sample(self._kernel.now)

    def message_delivered(self, envelope: Any) -> None:
        seq = self._envelope_seq.pop(id(envelope), 0)
        self._emit({"t": self._kernel.now, "kind": kinds.MESSAGE_DELIVERED,
                    "src": envelope.source, "dst": envelope.destination,
                    "type": type(envelope.payload).__name__, "seq": seq})
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("messages_delivered_total").inc()
            metrics.timeline.maybe_sample(self._kernel.now)

    def rpc_failure(self, node: str, procedure: str, error: str) -> None:
        """A one-way RPC handler raised (there is no reply to carry it)."""
        self._emit({"t": self._kernel.now, "kind": kinds.RPC_FAILURE,
                    "node": node, "procedure": procedure, "error": error})
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("rpc_failures_total",
                            {"procedure": procedure}).inc()

    def message_dropped(self, envelope: Any, reason: str) -> None:
        seq = self._envelope_seq.pop(id(envelope), 0)
        self._emit({"t": self._kernel.now, "kind": kinds.MESSAGE_DROPPED,
                    "src": envelope.source, "dst": envelope.destination,
                    "type": type(envelope.payload).__name__, "seq": seq,
                    "reason": reason})
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("messages_dropped_total",
                            {"reason": reason}).inc()
            metrics.timeline.maybe_sample(self._kernel.now)

    # ------------------------------------------------------------------
    # Workload admission + jobs (workload/driver.py)
    # ------------------------------------------------------------------
    def register_driver(self, driver: "WorkloadDriver") -> None:
        """Add the driver's in-flight / queue-depth timeline gauges."""
        metrics = self.metrics
        if metrics is None:
            return
        admission = driver.admission
        metrics.timeline.track("in_flight", lambda: admission.in_flight)
        metrics.timeline.track("queue_depth", lambda: len(admission.queue))

    def _job_event(self, kind: str, job: Any, **extra: Any) -> None:
        event: Dict[str, Any] = {"t": self._kernel.now, "kind": kind,
                                 "instance": job.instance,
                                 "action": job.action}
        event.update(extra)
        self._emit(event)
        metrics = self.metrics
        if metrics is not None:
            metrics.counter(kind.replace(".", "_") + "_total").inc()
            metrics.timeline.maybe_sample(self._kernel.now)

    def job_submitted(self, job: Any) -> None:
        self._job_event(kinds.JOB_SUBMITTED, job)

    def job_dispatched(self, job: Any, in_flight: int) -> None:
        self._job_event(kinds.JOB_DISPATCHED, job, in_flight=in_flight)

    def job_completed(self, job: Any, status: str, latency: float) -> None:
        self._job_event(kinds.JOB_COMPLETED, job, status=status,
                        latency=latency)
        metrics = self.metrics
        if metrics is not None:
            metrics.histogram("job_latency").record(latency)

    def job_dropped(self, job: Any) -> None:
        self._job_event(kinds.JOB_DROPPED, job)

    def admission_queued(self, job: Any, depth: int) -> None:
        self._job_event(kinds.ADMISSION_QUEUED, job, queue_depth=depth)

    def admission_retry(self, job: Any) -> None:
        self._job_event(kinds.ADMISSION_RETRY, job, attempts=job.attempts)

    def admission_dropped(self, job: Any) -> None:
        self._job_event(kinds.ADMISSION_DROPPED, job)

    # ------------------------------------------------------------------
    # Shared objects (objects/locks.py)
    # ------------------------------------------------------------------
    def lock_event(self, kind: str, object_name: Optional[str],
                   transaction_id: Any, mode: Optional[str] = None,
                   **extra: Any) -> None:
        event: Dict[str, Any] = {"t": self._kernel.now, "kind": kind,
                                 "object": object_name,
                                 "transaction": _plain(transaction_id)}
        if mode is not None:
            event["mode"] = mode
        event.update(extra)
        self._emit(event)
        metrics = self.metrics
        if metrics is not None:
            metrics.counter(kind.replace(".", "_") + "_total").inc()
            metrics.timeline.maybe_sample(self._kernel.now)

    # ------------------------------------------------------------------
    # Scheduler steps (simkernel/kernel.py, opt-in)
    # ------------------------------------------------------------------
    def kernel_step(self, when: float, priority: int, eid: int,
                    event: Any) -> None:
        """Step-tracer hook (registered via ``Kernel.add_tracer``)."""
        self._emit({"t": when, "kind": kinds.KERNEL_STEP,
                    "priority": priority, "eid": eid,
                    "event": type(event).__name__})
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("kernel_steps_total").inc()

    # ------------------------------------------------------------------
    def flight_dump(self) -> Optional[Dict[str, Any]]:
        """The flight recorder's dump, or None when the ring is off."""
        if self.flight is None:
            return None
        return self.flight.dump()

    def __repr__(self) -> str:
        collected = len(self.events) if self.events is not None else 0
        return (f"<SystemObservation events={collected} "
                f"flight={self.flight!r} metrics={self.metrics!r}>")
