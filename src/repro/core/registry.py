"""Shared plugin-registry base with declared-parameter validation.

Both plugin surfaces of the reproduction — the scenario registry of
:mod:`repro.bench.engine` and the traffic-action registry of
:mod:`repro.workload.registry` — are instances of the same model:

* a **registry** maps a unique name to a spec (duplicate registration is
  an error, lookup failures list what *is* registered);
* every spec **declares its parameters** (derived from a runner's
  signature or a spec dataclass's fields), and
* candidate parameter mappings are **validated before any kernel spins
  up**, producing structured :class:`ParamError` records that name the
  owner and the offending key — actionable errors instead of a
  ``TypeError`` three frames deep into a sweep.

This module holds the shared machinery: :class:`Registry` (the name →
spec base class), :class:`ParamSpec` (one declared parameter),
:func:`params_from_callable` / :func:`params_from_dataclass` (derivation)
and :func:`validate_params` (the checking contract).  Type checking is
deliberately shallow: only ``bool``/``int``/``float``/``str`` and
``Optional`` combinations thereof are enforced (an ``int`` is accepted
where a ``float`` is declared, a ``bool`` is not); any richer annotation
is documented in listings but not checked.
"""

from __future__ import annotations

import dataclasses
import inspect
import typing
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

#: Simple annotation -> acceptable runtime types.  ``float`` accepts
#: ``int`` (standard numeric widening); ``bool`` is never accepted for
#: ``int``/``float`` despite being a subclass (``True`` as a thread count
#: is a bug, not a value).
_SIMPLE_TYPES: Dict[type, Tuple[type, ...]] = {
    bool: (bool,),
    int: (int,),
    float: (int, float),
    str: (str,),
}

_REQUIRED = inspect.Parameter.empty


@dataclass(frozen=True)
class ParamSpec:
    """One declared parameter of a registered spec.

    ``types`` is the tuple of acceptable runtime types, or ``None`` when
    the annotation is absent or too rich to check shallowly (then only
    unknown-key and missing-required checks apply to the parameter).
    """

    name: str
    annotation: str = ""
    types: Optional[Tuple[type, ...]] = None
    required: bool = False
    default: Any = None

    def describe(self) -> str:
        """Render for listings: ``name: type = default`` or ``(required)``."""
        label = self.name if not self.annotation \
            else f"{self.name}: {self.annotation}"
        if self.required:
            return f"{label} (required)"
        return f"{label} = {self.default!r}"


@dataclass(frozen=True)
class ParamError:
    """One structured validation failure (also readable as its message)."""

    owner: str     # e.g. "scenario 'capacity'" or "traffic action 'Serve'"
    key: str       # the offending parameter name
    kind: str      # "unknown" | "missing" | "type"
    message: str

    def __str__(self) -> str:
        return self.message


class ParamValidationError(ValueError):
    """Raised when parameters fail validation; carries the error records."""

    def __init__(self, errors: Sequence[ParamError]) -> None:
        self.errors: Tuple[ParamError, ...] = tuple(errors)
        super().__init__("; ".join(str(error) for error in self.errors))


def _annotation_display(annotation: Any) -> str:
    if annotation is _REQUIRED or annotation is None:
        return ""
    if isinstance(annotation, type):
        return annotation.__name__
    if isinstance(annotation, str):
        return annotation
    text = str(annotation)
    return text.replace("typing.", "")


def _acceptable_types(annotation: Any) -> Optional[Tuple[type, ...]]:
    """The runtime types a value may have, or ``None`` for "unchecked"."""
    if annotation in _SIMPLE_TYPES:
        return _SIMPLE_TYPES[annotation]
    if typing.get_origin(annotation) is Union:
        members: List[type] = []
        for arg in typing.get_args(annotation):
            if arg is type(None):
                members.append(type(None))
            elif arg in _SIMPLE_TYPES:
                members.extend(_SIMPLE_TYPES[arg])
            else:
                return None
        return tuple(dict.fromkeys(members))
    return None


def _resolved_hints(obj: Any) -> Dict[str, Any]:
    """Type hints of ``obj``, or ``{}`` when they cannot be resolved.

    Under ``from __future__ import annotations`` every annotation is a
    string; resolution can fail for ``TYPE_CHECKING``-only names, which
    must degrade to "unchecked", not break registration.
    """
    try:
        return typing.get_type_hints(obj)
    except Exception:
        return {}


def params_from_callable(func: Callable[..., Any]
                         ) -> Tuple[Tuple[ParamSpec, ...], bool]:
    """Derive ``(declared params, accepts_extra)`` from a signature.

    ``accepts_extra`` is true when the callable takes ``**kwargs`` — its
    named parameters are still checked, but unknown keys pass through
    (the runner forwards them to a lower-level function).
    """
    try:
        signature = inspect.signature(func)
    except (TypeError, ValueError):
        return (), True
    hints = _resolved_hints(func)
    params: List[ParamSpec] = []
    accepts_extra = False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            accepts_extra = True
            continue
        if parameter.kind is inspect.Parameter.VAR_POSITIONAL:
            continue
        annotation = hints.get(parameter.name, parameter.annotation)
        required = parameter.default is _REQUIRED
        params.append(ParamSpec(
            name=parameter.name,
            annotation=_annotation_display(annotation),
            types=_acceptable_types(annotation),
            required=required,
            default=None if required else parameter.default))
    return tuple(params), accepts_extra


def params_from_dataclass(cls: type,
                          skip: Sequence[str] = ()) -> Tuple[ParamSpec, ...]:
    """Derive declared params from a (spec) dataclass's fields."""
    hints = _resolved_hints(cls)
    params: List[ParamSpec] = []
    for field in dataclasses.fields(cls):
        if field.name in skip:
            continue
        annotation = hints.get(field.name, field.type)
        required = (field.default is dataclasses.MISSING
                    and field.default_factory is dataclasses.MISSING)
        default = None
        if not required:
            default = (field.default
                       if field.default is not dataclasses.MISSING
                       else field.default_factory())
        params.append(ParamSpec(
            name=field.name,
            annotation=_annotation_display(annotation),
            types=_acceptable_types(annotation),
            required=required,
            default=default))
    return tuple(params)


def validate_params(owner: str, params: Sequence[ParamSpec],
                    accepts_extra: bool, given: Mapping[str, Any],
                    require: bool = True) -> List[ParamError]:
    """Check ``given`` against the declared ``params`` of ``owner``.

    Returns one :class:`ParamError` per problem (empty list: valid).
    With ``require=False`` the missing-required check is skipped — the
    contract for *partial* parameter sets such as spec overrides.
    """
    by_name = {spec.name: spec for spec in params}
    errors: List[ParamError] = []
    for key in given:
        if key not in by_name:
            if accepts_extra:
                continue
            declared = ", ".join(sorted(by_name)) or "none"
            errors.append(ParamError(
                owner=owner, key=key, kind="unknown",
                message=f"{owner}: unknown parameter {key!r} "
                        f"(declared: {declared})"))
    if require:
        for spec in params:
            if spec.required and spec.name not in given:
                errors.append(ParamError(
                    owner=owner, key=spec.name, kind="missing",
                    message=f"{owner}: missing required parameter "
                            f"{spec.name!r}"))
    for key, value in given.items():
        spec = by_name.get(key)
        if spec is None or spec.types is None:
            continue
        bad_bool = isinstance(value, bool) and bool not in spec.types
        if bad_bool or not isinstance(value, spec.types):
            expected = spec.annotation or \
                "/".join(t.__name__ for t in spec.types)
            errors.append(ParamError(
                owner=owner, key=key, kind="type",
                message=f"{owner}: parameter {key!r} expects {expected}, "
                        f"got {type(value).__name__} ({value!r})"))
    return errors


def format_params(params: Sequence[ParamSpec], accepts_extra: bool) -> str:
    """One-line rendering of a declared-parameter list for ``--list``."""
    parts = [spec.describe() for spec in params]
    if accepts_extra:
        parts.append("**options")
    return ", ".join(parts) if parts else "(none)"


SpecT = TypeVar("SpecT")


class Registry(Generic[SpecT]):
    """Name → spec mapping: the base both plugin registries build on.

    Specs must expose a ``name`` attribute.  Subclasses set ``kind`` (used
    in error messages) and typically add a registration decorator plus a
    validation entry point built on :func:`validate_params`.
    """

    #: Human-readable kind of the registered specs (error messages).
    kind = "spec"

    def __init__(self) -> None:
        self._specs: Dict[str, SpecT] = {}

    def add(self, spec: SpecT) -> SpecT:
        """Register ``spec``; duplicate names are an error."""
        name = spec.name  # type: ignore[attr-defined]
        if name in self._specs:
            raise ValueError(f"{self.kind} {name!r} already registered")
        self._specs[name] = spec
        return spec

    def get(self, name: str) -> SpecT:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(f"unknown {self.kind} {name!r}; "
                           f"registered: {sorted(self._specs)}") from None

    def names(self) -> List[str]:
        return sorted(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[SpecT]:
        return iter(self._specs.values())
