"""Exception graphs and the resolution of concurrently raised exceptions.

Section 3.2 of the paper defines an exception graph ``G(E, R)``:

* each node is an exception; each directed edge ``(ei, ej)`` makes ``ei``
  the *parent* (covering exception) of ``ej``;
* nodes with out-degree 0 are **primitive** exceptions;
* nodes with both in- and out-degree non-zero are **resolving** exceptions;
* the single node with in-degree 0 is the **universal exception**.

When several exceptions are raised concurrently, they are resolved into
"the exception that is the root of the smallest subtree containing all the
raised exceptions" (following Campbell & Randell 1986).  This module
implements that resolution, the automatic generation of the full n-level
graph described in the paper, and the simplification rules listed at the end
of Section 3.2.

Because the Section 3.2 graphs grow combinatorially (level ``k`` holds up to
``C(n, k+1)`` resolving exceptions), the naive resolution scan — recomputing
every candidate's descendant set and walking the unmemoized ``level()``
recursion — does not scale past a handful of primitives.  Resolution
therefore runs against a :class:`CompiledGraphIndex`: an immutable snapshot
holding per-node cover bitsets over a frozen node order (with the primitive
columns exposed as primitive cover sets), cover-set sizes and memoized
levels/descendant counts.  The index is built lazily, cached on the graph,
invalidated by the mutating operations (:meth:`ExceptionGraph.add_exception`
and :meth:`ExceptionGraph.add_cover`), and shared by every participant of an
action that holds the same graph object (see
:class:`~repro.core.state.ActionContext`).  The original scan is kept as
:meth:`ExceptionGraph.resolve_naive` so tests can assert the compiled path
is observably identical.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .exceptions import (
    ExceptionDescriptor,
    ExceptionKind,
    UNIVERSAL,
    internal,
)


class ExceptionGraphError(ValueError):
    """Raised for structurally invalid graphs (cycles, missing root, ...)."""


class CompiledGraphIndex:
    """Immutable resolution index for one :class:`ExceptionGraph` snapshot.

    The index freezes the graph's node insertion order and assigns each node
    a bit position, so that every per-node quantity the resolution tie-break
    needs is available in O(1):

    ``cover_masks``
        ``cover_masks[i]`` is an int bitset with bit ``j`` set iff node ``i``
        covers node ``j`` (reflexively — bit ``i`` is always set).  Masked
        with :attr:`primitive_mask` this yields the node's primitive cover
        set over the frozen primitive order.
    ``cover_sizes``
        ``bin(cover_masks[i]).count("1")`` — the ``len(covered)`` of the
        naive scan (the primary tie-break key).
    ``levels``
        Memoized graph levels (primitives are level 0, every other node is
        one more than the maximum level of its children).  Descendant
        counts are ``cover_sizes[i] - 1``, exposed through
        :meth:`descendant_count`.

    With the index, resolving a raised set is one OR over the raised nodes'
    bits followed by a single pass over the frozen node order testing mask
    containment — no descendant recomputation and no level recursion.
    """

    __slots__ = ("nodes", "positions", "cover_masks", "cover_sizes",
                 "levels", "primitive_mask", "primitives", "version")

    def __init__(self, graph: "ExceptionGraph", version: int) -> None:
        children = graph._children
        self.version = version
        self.nodes: Tuple[ExceptionDescriptor, ...] = tuple(children)
        self.positions: Dict[ExceptionDescriptor, int] = {
            node: index for index, node in enumerate(self.nodes)}

        # Reverse-topological pass: children are fully computed before any
        # of their parents (the graph is a DAG by construction).
        order = self._reverse_topological(children)
        masks: List[int] = [0] * len(self.nodes)
        levels: List[int] = [0] * len(self.nodes)
        for node in order:
            index = self.positions[node]
            mask = 1 << index
            level = 0
            for child in children[node]:
                child_index = self.positions[child]
                mask |= masks[child_index]
                level = max(level, levels[child_index] + 1)
            masks[index] = mask
            levels[index] = level

        self.cover_masks: Tuple[int, ...] = tuple(masks)
        self.levels: Tuple[int, ...] = tuple(levels)
        self.cover_sizes: Tuple[int, ...] = tuple(
            bin(mask).count("1") for mask in masks)
        self.primitives: Tuple[ExceptionDescriptor, ...] = tuple(
            node for node in self.nodes if not children[node])
        primitive_mask = 0
        for primitive in self.primitives:
            primitive_mask |= 1 << self.positions[primitive]
        self.primitive_mask = primitive_mask

    @staticmethod
    def _reverse_topological(
            children: Dict[ExceptionDescriptor, Set[ExceptionDescriptor]]
    ) -> List[ExceptionDescriptor]:
        """Nodes ordered so every node appears after all its children."""
        order: List[ExceptionDescriptor] = []
        state: Dict[ExceptionDescriptor, int] = {}
        for root in children:
            if root in state:
                continue
            stack: List[Tuple[ExceptionDescriptor, bool]] = [(root, False)]
            while stack:
                node, expanded = stack.pop()
                if expanded:
                    state[node] = 2
                    order.append(node)
                    continue
                if state.get(node):
                    continue
                state[node] = 1
                stack.append((node, True))
                for child in children[node]:
                    if not state.get(child):
                        stack.append((child, False))
        return order

    # ------------------------------------------------------------------
    def level(self, exception: ExceptionDescriptor) -> int:
        """Memoized level of ``exception`` (raises ``KeyError`` if unknown)."""
        return self.levels[self.positions[exception]]

    def descendant_count(self, exception: ExceptionDescriptor) -> int:
        """Number of exceptions covered (strictly) by ``exception``."""
        return self.cover_sizes[self.positions[exception]] - 1

    def cover_mask(self, exception: ExceptionDescriptor) -> int:
        """The reflexive cover bitset of ``exception`` over the node order."""
        return self.cover_masks[self.positions[exception]]

    def primitive_cover(self, exception: ExceptionDescriptor
                        ) -> FrozenSet[ExceptionDescriptor]:
        """The primitive exceptions covered by ``exception`` (reflexively)."""
        mask = self.cover_mask(exception) & self.primitive_mask
        return frozenset(p for p in self.primitives
                         if mask & (1 << self.positions[p]))

    def resolve(self, raised_set: Set[ExceptionDescriptor],
                universal: ExceptionDescriptor) -> ExceptionDescriptor:
        """Set-cover lookup equivalent to the naive candidate scan."""
        target = 0
        for exception in raised_set:
            position = self.positions.get(exception)
            if position is None:
                return universal
            target |= 1 << position
        best_key: Optional[Tuple[int, int, str]] = None
        best: ExceptionDescriptor = universal
        for index, mask in enumerate(self.cover_masks):
            if mask & target == target:
                key = (self.cover_sizes[index], self.levels[index],
                       self.nodes[index].name)
                # Strict comparison keeps the first of fully-tied candidates
                # in frozen node order, matching the naive scan's stable sort.
                if best_key is None or key < best_key:
                    best_key = key
                    best = self.nodes[index]
        return best


class ExceptionGraph:
    """A directed acyclic graph of exceptions with covering semantics.

    The graph always contains a universal exception (created automatically
    unless one is supplied); every exception added without an explicit
    parent is covered directly by the universal exception, so resolution is
    total: any non-empty set of declared exceptions has a resolving
    exception.

    Parameters
    ----------
    name:
        Name of the owning CA action (used in error messages only).
    universal:
        Optional custom universal exception descriptor.
    """

    def __init__(self, name: str = "anonymous",
                 universal: ExceptionDescriptor = UNIVERSAL) -> None:
        self.name = name
        self.universal = universal
        self._children: Dict[ExceptionDescriptor, Set[ExceptionDescriptor]] = {
            universal: set()}
        self._parents: Dict[ExceptionDescriptor, Set[ExceptionDescriptor]] = {
            universal: set()}
        #: Cached compiled index; rebuilt lazily after any mutation.
        self._compiled: Optional[CompiledGraphIndex] = None
        #: Mutation counter; lets holders of an index detect staleness.
        self._version = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_exception(self, exception: ExceptionDescriptor,
                      parent: Optional[ExceptionDescriptor] = None) -> ExceptionDescriptor:
        """Add ``exception`` to the graph, covered by ``parent``.

        If ``parent`` is omitted the exception hangs directly below the
        universal exception.  Adding an exception twice is allowed and
        merges the edges.
        """
        if exception not in self._children:
            self._children[exception] = set()
            self._parents[exception] = set()
            self._invalidate()
        effective_parent = parent if parent is not None else self.universal
        if effective_parent not in self._children:
            self.add_exception(effective_parent)
        if effective_parent != exception:
            self.add_cover(effective_parent, exception)
        return exception

    def add_cover(self, parent: ExceptionDescriptor,
                  child: ExceptionDescriptor) -> None:
        """Declare that ``parent`` covers ``child`` (edge parent -> child)."""
        for node in (parent, child):
            if node not in self._children:
                self._children[node] = set()
                self._parents[node] = set()
                self._invalidate()
        if parent == child:
            raise ExceptionGraphError(f"{parent} cannot cover itself")
        if self._reachable(child, parent):
            raise ExceptionGraphError(
                f"adding cover {parent} -> {child} would create a cycle")
        self._children[parent].add(child)
        self._parents[child].add(parent)
        # A node with an explicit parent other than universal no longer needs
        # the implicit universal edge (keeps graphs tidy and levels meaningful).
        if parent != self.universal and self.universal in self._parents[child] \
                and len(self._parents[child]) > 1:
            self._parents[child].discard(self.universal)
            self._children[self.universal].discard(child)
        self._invalidate()

    def declare_hierarchy(self, resolving: ExceptionDescriptor,
                          covered: Sequence[ExceptionDescriptor]) -> ExceptionDescriptor:
        """Declare ``er: e1, e2, ..., ek`` as in the paper's keyword syntax."""
        self.add_exception(resolving)
        for child in covered:
            self.add_exception(child)
            self.add_cover(resolving, child)
        return resolving

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __contains__(self, exception: ExceptionDescriptor) -> bool:
        return exception in self._children

    def __len__(self) -> int:
        return len(self._children)

    @property
    def exceptions(self) -> List[ExceptionDescriptor]:
        """All exceptions in the graph (including the universal one)."""
        return list(self._children)

    def children(self, exception: ExceptionDescriptor) -> Set[ExceptionDescriptor]:
        """Direct lower-level nodes Γ(e)."""
        return set(self._children.get(exception, ()))

    def parents(self, exception: ExceptionDescriptor) -> Set[ExceptionDescriptor]:
        """Direct higher-level nodes Γ⁻¹(e)."""
        return set(self._parents.get(exception, ()))

    def out_degree(self, exception: ExceptionDescriptor) -> int:
        """d_out(e) = |Γ(e)|."""
        return len(self._children.get(exception, ()))

    def in_degree(self, exception: ExceptionDescriptor) -> int:
        """d_in(e) = |Γ⁻¹(e)|."""
        return len(self._parents.get(exception, ()))

    def primitives(self) -> List[ExceptionDescriptor]:
        """Exceptions with out-degree 0 (cover no other exception)."""
        return [e for e in self._children if self.out_degree(e) == 0]

    def resolving_exceptions(self) -> List[ExceptionDescriptor]:
        """Internal nodes: non-zero in-degree and out-degree."""
        return [e for e in self._children
                if self.out_degree(e) != 0 and self.in_degree(e) != 0]

    def descendants(self, exception: ExceptionDescriptor) -> Set[ExceptionDescriptor]:
        """All exceptions covered (directly or transitively) by ``exception``."""
        seen: Set[ExceptionDescriptor] = set()
        stack = [exception]
        while stack:
            current = stack.pop()
            for child in self._children.get(current, ()):
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return seen

    def covers(self, higher: ExceptionDescriptor,
               lower: ExceptionDescriptor) -> bool:
        """True if ``higher`` covers ``lower`` (reflexively)."""
        return higher == lower or lower in self.descendants(higher)

    def level(self, exception: ExceptionDescriptor) -> int:
        """Level of the exception: primitives are level 0.

        The level of a non-primitive node is one more than the maximum level
        of its children, matching Figure 3 of the paper.  Served from the
        compiled index (memoized); :meth:`level_naive` keeps the original
        recursion for equivalence testing.
        """
        if exception not in self._children:
            raise KeyError(exception)
        return self.compiled().level(exception)

    def level_naive(self, exception: ExceptionDescriptor) -> int:
        """The original unmemoized level recursion (reference semantics)."""
        if exception not in self._children:
            raise KeyError(exception)
        children = self._children[exception]
        if not children:
            return 0
        return 1 + max(self.level_naive(child) for child in children)

    def descendant_count(self, exception: ExceptionDescriptor) -> int:
        """Number of exceptions covered (strictly) by ``exception``."""
        if exception not in self._children:
            raise KeyError(exception)
        return self.compiled().descendant_count(exception)

    # ------------------------------------------------------------------
    # Compiled index
    # ------------------------------------------------------------------
    def compiled(self) -> CompiledGraphIndex:
        """The compiled resolution index for the graph's current state.

        Built lazily and cached; :meth:`add_exception` and :meth:`add_cover`
        invalidate the cache, so the returned index always reflects the
        graph.  All participants of an action sharing this graph object
        (through their :class:`~repro.core.state.ActionContext`) share one
        index build.
        """
        if self._compiled is None:
            self._compiled = CompiledGraphIndex(self, self._version)
        return self._compiled

    @property
    def version(self) -> int:
        """Mutation counter (bumped by every structural change)."""
        return self._version

    def _invalidate(self) -> None:
        self._version += 1
        self._compiled = None

    def validate(self) -> None:
        """Check structural invariants; raises :class:`ExceptionGraphError`.

        Invariants: exactly one node with in-degree 0 (the universal
        exception), no cycles (guaranteed by construction, re-checked here),
        and every node reachable from the universal exception.
        """
        roots = [e for e in self._children if self.in_degree(e) == 0]
        if roots != [self.universal] and set(roots) != {self.universal}:
            raise ExceptionGraphError(
                f"graph {self.name!r}: expected the universal exception to be "
                f"the only root, found {roots}")
        reachable = self.descendants(self.universal) | {self.universal}
        unreachable = set(self._children) - reachable
        if unreachable:
            raise ExceptionGraphError(
                f"graph {self.name!r}: unreachable exceptions {unreachable}")
        self._assert_acyclic()

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(self, raised: Iterable[ExceptionDescriptor]) -> ExceptionDescriptor:
        """Resolve a set of concurrently raised exceptions.

        Returns the exception that is the root of the smallest subtree
        containing every raised exception: among all exceptions that cover
        the whole set, the one covering the fewest exceptions in total.
        Ties are broken by graph level (lower level preferred) and then by
        name, so resolution is deterministic and identical on every node —
        a requirement for all participants calling the same handler.

        Unknown exceptions resolve to the universal exception, as do empty
        covers (the paper: "other undefined exceptions ... simply lead to
        the raising of the universal exception").

        This is the hot path of every coordinator's resolution step; it runs
        against the compiled index (one bitset containment pass) and returns
        exactly what :meth:`resolve_naive` would.
        """
        raised_set = {e for e in raised if e is not None}
        if not raised_set:
            raise ValueError("cannot resolve an empty set of exceptions")
        if any(e not in self._children for e in raised_set):
            return self.universal
        if len(raised_set) == 1:
            return next(iter(raised_set))
        return self.compiled().resolve(raised_set, self.universal)

    def resolve_naive(self, raised: Iterable[ExceptionDescriptor]
                      ) -> ExceptionDescriptor:
        """The original O(V·E) candidate scan with unmemoized levels.

        Kept as the reference implementation: property tests assert that
        :meth:`resolve` (the compiled path) picks the identical exception —
        same winner under the size/level/name tie-break — on every graph.
        """
        raised_set = {e for e in raised if e is not None}
        if not raised_set:
            raise ValueError("cannot resolve an empty set of exceptions")
        if any(e not in self._children for e in raised_set):
            return self.universal
        if len(raised_set) == 1:
            return next(iter(raised_set))

        candidates: List[Tuple[int, int, str, ExceptionDescriptor]] = []
        for candidate in self._children:
            covered = self.descendants(candidate) | {candidate}
            if raised_set <= covered:
                candidates.append((len(covered), self.level_naive(candidate),
                                   candidate.name, candidate))
        if not candidates:
            return self.universal
        candidates.sort(key=lambda item: (item[0], item[1], item[2]))
        return candidates[0][3]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _reachable(self, start: ExceptionDescriptor,
                   goal: ExceptionDescriptor) -> bool:
        return goal == start or goal in self.descendants(start)

    def _assert_acyclic(self) -> None:
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {node: WHITE for node in self._children}

        def visit(node: ExceptionDescriptor) -> None:
            colour[node] = GREY
            for child in self._children[node]:
                if colour[child] == GREY:
                    raise ExceptionGraphError(
                        f"graph {self.name!r} contains a cycle through {child}")
                if colour[child] == WHITE:
                    visit(child)
            colour[node] = BLACK

        for node in self._children:
            if colour[node] == WHITE:
                visit(node)

    def __repr__(self) -> str:
        return (f"<ExceptionGraph {self.name!r} nodes={len(self._children)} "
                f"primitives={len(self.primitives())}>")


# ----------------------------------------------------------------------
# Automatic generation and simplification (Section 3.2)
# ----------------------------------------------------------------------
def combination_name(exceptions: Iterable[ExceptionDescriptor],
                     joiner: str = "&") -> str:
    """Canonical name for a resolving exception covering ``exceptions``."""
    return joiner.join(sorted(e.name for e in exceptions))


def generate_full_graph(primitives: Sequence[ExceptionDescriptor],
                        max_level: Optional[int] = None,
                        action_name: str = "generated") -> ExceptionGraph:
    """Generate the complete n-level exception graph of Section 3.2.

    Level 0 holds the ``n`` primitive exceptions; level ``k`` holds one
    resolving exception for every subset of size ``k + 1`` (so level 1 has
    up to n(n−1)/2 nodes, level 2 up to n(n−1)(n−2)/6, and level n−1 the
    single exception covering all primitives).  The universal exception sits
    above everything.

    ``max_level`` truncates generation: combinations larger than
    ``max_level + 1`` primitives are not represented and therefore resolve
    to the universal exception, which is the paper's third simplification
    rule ("an exception graph can be structured to contain only part of
    resolving exceptions").
    """
    primitives = list(primitives)
    if len(set(primitives)) != len(primitives):
        raise ValueError("primitive exceptions must be distinct")
    n = len(primitives)
    if n == 0:
        raise ValueError("need at least one primitive exception")
    highest = n - 1 if max_level is None else min(max_level, n - 1)

    graph = ExceptionGraph(action_name)
    for primitive in primitives:
        graph.add_exception(primitive)

    #: Maps a frozenset of primitives to the node covering exactly that set.
    by_subset: Dict[FrozenSet[ExceptionDescriptor], ExceptionDescriptor] = {
        frozenset([p]): p for p in primitives}

    for level in range(1, highest + 1):
        size = level + 1
        for subset in itertools.combinations(primitives, size):
            subset_key = frozenset(subset)
            node = internal(combination_name(subset),
                            f"resolves concurrent {combination_name(subset, ', ')}")
            graph.add_exception(node)
            by_subset[subset_key] = node
            # Cover every node representing a subset one element smaller.
            for smaller in itertools.combinations(subset, size - 1):
                child = by_subset[frozenset(smaller)]
                graph.add_cover(node, child)

    # Everything not covered by some other node hangs below universal; that
    # is already ensured by add_exception's default parenting, but the top
    # resolving nodes acquired explicit parents only if a larger combination
    # exists, so re-attach the orphans.
    for node in graph.exceptions:
        if node != graph.universal and graph.in_degree(node) == 0:
            graph.add_cover(graph.universal, node)
    graph.validate()
    return graph


def prune_impossible_combinations(
        graph: ExceptionGraph,
        impossible: Iterable[FrozenSet[ExceptionDescriptor]]) -> ExceptionGraph:
    """Simplification rule 1: drop resolving nodes for combinations that
    cannot be raised concurrently.

    ``impossible`` is a collection of primitive-exception sets; any resolving
    node whose covered primitive set is a superset of one of them is removed.
    Children of removed nodes are re-attached to the universal exception if
    they would otherwise become unreachable.  A new graph is returned; the
    input graph is not modified.
    """
    impossible = [frozenset(s) for s in impossible]
    pruned = ExceptionGraph(graph.name + "-pruned", universal=graph.universal)
    removed: Set[ExceptionDescriptor] = set()
    primitive_set = set(graph.primitives())

    for node in graph.exceptions:
        if node == graph.universal or graph.out_degree(node) == 0:
            continue
        covered_primitives = graph.descendants(node) & primitive_set
        if any(bad <= covered_primitives for bad in impossible):
            removed.add(node)

    for node in graph.exceptions:
        if node in removed or node == graph.universal:
            continue
        pruned.add_exception(node)
    for node in graph.exceptions:
        if node in removed or node == graph.universal:
            continue
        for child in graph.children(node):
            if child not in removed:
                pruned.add_cover(node, child)
    for node in pruned.exceptions:
        if node != pruned.universal and pruned.in_degree(node) == 0:
            pruned.add_cover(pruned.universal, node)
    pruned.validate()
    return pruned


def graph_statistics(graph: ExceptionGraph) -> Dict[str, int]:
    """Summary counts used by tests and by the DESIGN/EXPERIMENTS reports."""
    index = graph.compiled()
    return {
        "nodes": len(graph),
        "primitives": len(graph.primitives()),
        "resolving": len(graph.resolving_exceptions()),
        "max_level": max(index.levels, default=0),
    }
