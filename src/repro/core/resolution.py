"""The distributed algorithm for coordinated exception handling and resolution.

This module implements the algorithm of Section 3.3.2 as a per-thread,
message-driven state machine (:class:`ResolutionCoordinator`).  Inputs are
the local events of the algorithm's loop (entering/leaving an action,
raising an exception, receiving a protocol message, completing an abortion);
outputs are :mod:`effects <repro.core.effects>` the runtime executes.

Summary of the algorithm for thread ``Ti`` (states N = normal,
X = exceptional, S = suspended):

* raising ``Ei`` in the active action ``A``: record ``<A, Ti, Ei>`` in
  ``LEi``, broadcast ``Exception(A, Ti, Ei)``, inform external objects;
* receiving ``Exception``/``Suspended`` for ``A*``:

  - if ``A*`` equals the active action: record it; if still normal,
    suspend and broadcast ``Suspended``;
  - if ``A*`` strictly contains the active action: abort every nested
    action up to ``A*``; if the abortion handler signalled ``Eab``, become
    exceptional and broadcast ``Exception(A*, Ti, Eab)``, otherwise suspend
    and broadcast ``Suspended``;
  - if ``A*`` is not on the stack yet: retain the message until the thread
    enters ``A*``;

* when ``Ti`` knows the status (exception or S) of every participant of the
  active action and has the largest identifier among the exceptional
  threads, it resolves the recorded exceptions through the action's
  exception graph, broadcasts ``Commit(A, E)``, empties ``LEi`` and handles
  ``E``;
* receiving ``Commit(A*, E)`` with ``A*`` the active action: empty ``LEi``
  and handle ``E``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from . import effects as fx
from .exceptions import ExceptionDescriptor, RaisedRecord
from .messages import (
    CommitMessage,
    ExceptionMessage,
    ProtocolMessage,
    SuspendedMessage,
)
from .state import (
    ActionContext,
    ContextStack,
    LocalExceptionList,
    ThreadState,
    max_thread,
)


class ProtocolError(RuntimeError):
    """Raised on misuse of the coordinator API (not on remote behaviour)."""


class CoordinatorBase:
    """State shared by the paper's algorithm and the baseline algorithms.

    Subclasses customise how exceptions are propagated and who resolves;
    the bookkeeping of contexts, retained messages and abortions is common
    (the paper's experimental comparison also keeps "the rest of the CA
    action support unchanged").
    """

    def __init__(self, thread_id: str) -> None:
        self.thread_id = thread_id
        self.state = ThreadState.NORMAL
        self.le = LocalExceptionList()
        self.sa = ContextStack()
        #: Messages for actions this thread has not entered yet.
        self.retained: List[ProtocolMessage] = []
        #: Instance keys of action instances this thread has finished
        #: (left or aborted).  A message stamped with one of these is
        #: *stale* — the explorer showed that retaining it either leaks it
        #: forever or replays it into a later instance of the same action
        #: name.  (Grows with the number of instances of a run; a
        #: long-lived deployment would prune it, the simulation need not.)
        self.finished_instances: Set[str] = set()
        #: Action the thread is currently aborting towards (None if not).
        self.pending_abort_target: Optional[str] = None
        #: Resolving exception currently being handled, per action.
        self.handling: Dict[str, ExceptionDescriptor] = {}
        #: Trace of state transitions for debugging and tests.
        self.trace: List[str] = []
        #: Count of local invocations of the resolution procedure.
        self.resolution_calls = 0

    # ------------------------------------------------------------------
    # Context management (common to all algorithms)
    # ------------------------------------------------------------------
    def enter_action(self, context: ActionContext) -> List[fx.Effect]:
        """The thread enters ``context.action``: push it and consume retained
        messages that were waiting for this action."""
        if self.thread_id not in context.participants:
            raise ProtocolError(
                f"{self.thread_id} is not a participant of {context.action}")
        self.sa.push(context)
        self.state = ThreadState.NORMAL
        self._trace(f"enter {context.action}")
        return self._replay_retained(context)

    def leave_action(self, action: str, success: bool = True) -> List[fx.Effect]:
        """The thread leaves ``action`` (after the synchronous exit protocol)."""
        top = self.sa.top()
        if top is None or top.action != action:
            raise ProtocolError(
                f"{self.thread_id} cannot leave {action}: active action is "
                f"{top.action if top else None}")
        self.sa.pop()
        if top.instance:
            self.finished_instances.add(top.instance)
        self.le.remove_other_actions(self.active_action_name() or "")
        self.handling.pop(action, None)
        self._drop_retained(action, top.instance)
        self._clear_action_state(action)
        self.state = ThreadState.NORMAL if success else ThreadState.EXCEPTIONAL
        self._trace(f"leave {action} ({'success' if success else 'failure'})")
        return []

    def abandon_instance(self, instance: str) -> None:
        """The runtime gave up an action attempt before entering it.

        A nested entry barrier interrupted by an enclosing exception leaves
        an allocated instance key that no thread-side ``enter_action`` will
        ever follow; peer messages already stamped for it must not wait for
        an entry that cannot happen (the explorer found them parked
        forever).  Mark the instance finished and drop anything retained
        for it.
        """
        if not instance:
            return
        self.finished_instances.add(instance)
        before = len(self.retained)
        self.retained = [m for m in self.retained
                         if getattr(m, "instance", "") != instance]
        if len(self.retained) != before:
            self._trace(f"drop retained for abandoned {instance}")
        self._trace(f"abandon {instance}")

    def _clear_action_state(self, action: str) -> None:
        """Hook: drop any per-action protocol state when the action is left.

        The base algorithm keeps everything it needs in ``handling``/``le``;
        the baseline algorithms override this to clear their extra per-action
        round state, so a later instance of the same action starts fresh.
        """

    def active_context(self) -> Optional[ActionContext]:
        """The context of the currently active (innermost entered) action."""
        return self.sa.top()

    def active_action_name(self) -> Optional[str]:
        context = self.sa.top()
        return context.action if context else None

    # ------------------------------------------------------------------
    # Inputs that subclasses implement
    # ------------------------------------------------------------------
    def raise_exception(self, exception: ExceptionDescriptor) -> List[fx.Effect]:
        raise NotImplementedError

    def receive(self, message: ProtocolMessage) -> List[fx.Effect]:
        raise NotImplementedError

    def abortion_completed(self, action: str,
                           raised: Optional[ExceptionDescriptor]) -> List[fx.Effect]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _drop_retained(self, action: str, instance: str = "") -> None:
        """Discard retained messages for an action instance that has ended.

        Called when ``action`` is left or aborted: any message still parked
        for it belongs to the finished instance and must not leak into a
        later instance of the same action name.  Messages stamped for a
        *different* instance of the same name (parked for a future
        occurrence the sender already entered) survive; unstamped messages
        are treated as belonging to the ending instance, as before
        instance tracking existed.
        """
        def ends_with(message: ProtocolMessage) -> bool:
            if getattr(message, "action", None) != action:
                return False
            stamp = getattr(message, "instance", "")
            return not stamp or not instance or stamp == instance

        self.retained = [m for m in self.retained if not ends_with(m)]

    def _replay_retained(self, context: ActionContext) -> List[fx.Effect]:
        """Re-deliver messages parked for ``context`` (now the active action).

        Messages stamped with the instance key of an already-finished
        instance are dropped as stale; messages stamped for a *different*
        (not-yet-finished) instance of the same action name stay parked.
        Unstamped messages replay by action name, as always.
        """
        pending: List[ProtocolMessage] = []
        parked: List[ProtocolMessage] = []
        for message in self.retained:
            if getattr(message, "action", None) != context.action:
                parked.append(message)
                continue
            staleness = self._message_staleness(message, context)
            if staleness == "stale":
                self._trace("drop stale retained for "
                            f"{getattr(message, 'instance', '')}")
            elif staleness == "other":
                parked.append(message)
            else:
                pending.append(message)
        self.retained = parked
        effects: List[fx.Effect] = []
        for message in pending:
            effects.extend(self.receive(message))
        return effects

    def _message_staleness(self, message: ProtocolMessage,
                           context: Optional[ActionContext] = None) -> str:
        """Classify a message against the instance bookkeeping.

        Returns ``"stale"`` (belongs to a finished instance), ``"other"``
        (stamped for a different, not-yet-finished instance — e.g. a later
        occurrence the sender already entered) or ``"current"`` (unstamped,
        or matching ``context``).
        """
        instance = getattr(message, "instance", "")
        if not instance:
            return "current"
        if instance in self.finished_instances:
            return "stale"
        if context is not None and context.instance and \
                instance != context.instance:
            return "other"
        return "current"

    def _guard_round_message(self, message,
                             kind: str = "round") -> Optional[List[fx.Effect]]:
        """Instance hygiene for algorithm-specific round messages.

        Returns ``None`` when the message belongs to the current instance
        and should be processed.  A message stamped for a finished
        instance is dropped; one stamped for a different, not-yet-finished
        occurrence of an action this thread is currently in is retained
        (``_replay_retained`` feeds retained messages back through
        :meth:`receive` when that occurrence is entered).  The baselines'
        extra rounds (CR forward/resolved/confirm, R96 agreement/confirm)
        share this rule so their instance handling cannot diverge.
        """
        if self._message_staleness(message) == "stale":
            self._trace(f"drop stale {kind} message for {message.instance}")
            return [fx.LogEvent(f"{self.thread_id} dropped stale {kind} "
                                f"message for {message.instance}")]
        target = self.sa.find(message.action)
        if target is not None and \
                self._message_staleness(message, target) == "other":
            self.retained.append(message)
            self._trace(f"retain {kind} message for {message.instance}")
            return [fx.LogEvent(f"{self.thread_id} retained {kind} message "
                                f"for {message.instance}")]
        return None

    def _trace(self, text: str) -> None:
        self.trace.append(f"{self.thread_id}: {text}")

    def _record(self, action: str, thread: str,
                exception: Optional[ExceptionDescriptor],
                instance: str = "") -> RaisedRecord:
        record = RaisedRecord(action=action, thread=thread, exception=exception,
                              instance=instance)
        self.le.add(record)
        return record

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.thread_id} state={self.state.value} "
                f"active={self.active_action_name()}>")


class ResolutionCoordinator(CoordinatorBase):
    """The paper's new algorithm (Section 3.3.2).

    Exactly one thread — the one with the largest identifier among the
    exceptional (state X) threads — performs resolution and sends the
    ``Commit`` message, which is what gives the algorithm its
    ``n_max × (N² − 1)`` worst-case message complexity (Theorem 2).
    """

    # ------------------------------------------------------------------
    # Local exception
    # ------------------------------------------------------------------
    def raise_exception(self, exception: ExceptionDescriptor) -> List[fx.Effect]:
        """The role running on this thread raised ``exception`` locally."""
        context = self.active_context()
        if context is None:
            raise ProtocolError(
                f"{self.thread_id} raised {exception} outside any action")
        action = context.action
        self.state = ThreadState.EXCEPTIONAL
        self._record(action, self.thread_id, exception,
                     instance=context.instance)
        self._trace(f"raise {exception.name} in {action}")

        effects: List[fx.Effect] = [
            fx.SendTo(context.others(self.thread_id),
                   ExceptionMessage(action, self.thread_id, exception,
                                    instance=context.instance)),
            fx.InformObjects(action, exception),
        ]
        effects.extend(self._check_resolution())
        return effects

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def receive(self, message: ProtocolMessage) -> List[fx.Effect]:
        """Process one incoming protocol message."""
        if isinstance(message, (ExceptionMessage, SuspendedMessage)):
            return self._receive_exception_or_suspended(message)
        if isinstance(message, CommitMessage):
            return self._receive_commit(message)
        raise ProtocolError(f"unexpected message {message!r}")

    def _receive_exception_or_suspended(self, message) -> List[fx.Effect]:
        target_action = message.action
        context = self.active_context()

        if self._message_staleness(message) == "stale":
            # The instance this message belongs to has already ended here;
            # retaining it would leak it (or poison a later instance).
            self._trace(f"drop stale message for {message.instance}")
            return [fx.LogEvent(f"{self.thread_id} dropped stale message "
                             f"for {message.instance}")]

        if context is None or not self.sa.contains(target_action):
            # "retain the Exception or Suspended message till Ti enters A*"
            self.retained.append(message)
            self._trace(f"retain message for {target_action}")
            return [fx.LogEvent(f"{self.thread_id} retained message for "
                             f"{target_action}")]

        target_context = self.sa.find(target_action)
        if self._message_staleness(message, target_context) == "other":
            # Stamped for a different occurrence of this action name that
            # has not ended here (e.g. the sender already re-entered it):
            # park it for that instance.
            self.retained.append(message)
            self._trace(f"retain message for {message.instance}")
            return [fx.LogEvent(f"{self.thread_id} retained message for "
                             f"{message.instance}")]

        exception = (message.exception
                     if isinstance(message, ExceptionMessage) else None)
        record = self._record(target_action, message.thread, exception,
                              instance=getattr(message, "instance", ""))
        effects: List[fx.Effect] = []
        if exception is not None:
            # "exception information ⇒ uninformed external objects"
            effects.append(fx.InformObjects(target_action, exception))

        if target_action != context.action:
            # A* strictly contains the active action: abort nested actions.
            effects.extend(self._begin_abort(target_action, record, exception))
            return effects

        # A* equals the active action.
        if self.state is ThreadState.NORMAL:
            self.state = ThreadState.SUSPENDED
            self._record(target_action, self.thread_id, None,
                         instance=target_context.instance)
            self._trace(f"suspend in {target_action}")
            effects.append(fx.InterruptRole(target_action,
                                         exception if exception is not None
                                         else ExceptionDescriptor("suspended-peer")))
            effects.append(fx.SendTo(
                target_context.others(self.thread_id),
                SuspendedMessage(target_action, self.thread_id,
                                 instance=target_context.instance)))
        effects.extend(self._check_resolution())
        return effects

    def _receive_commit(self, message: CommitMessage) -> List[fx.Effect]:
        context = self.active_context()
        if self._message_staleness(message) == "stale":
            self._trace(f"drop stale Commit for {message.instance}")
            return [fx.LogEvent(f"{self.thread_id} dropped stale Commit "
                             f"for {message.instance}")]
        if context is None or not self.sa.contains(message.action):
            # The action was never entered or has already ended on this
            # thread; a Commit for it is stale and safe to drop.
            self._trace(f"ignore Commit for {message.action}")
            return [fx.LogEvent(f"{self.thread_id} ignored Commit for "
                             f"{message.action}")]
        if self._message_staleness(message,
                                   self.sa.find(message.action)) == "other":
            # A Commit stamped for a different, not-yet-finished occurrence
            # of this action name: park it for that instance.
            self.retained.append(message)
            self._trace(f"retain Commit for {message.instance}")
            return [fx.LogEvent(f"{self.thread_id} retained Commit for "
                             f"{message.instance}")]
        if context.action != message.action:
            # The action is on the stack but not active — e.g. the Commit
            # arrived while this thread is still aborting nested actions
            # toward it.  Dropping it would strand the thread suspended
            # forever (the resolver commits exactly once), so retain it,
            # like Exception/Suspended messages, and replay it when the
            # action becomes active again (see abortion_completed).
            self.retained.append(message)
            self._trace(f"retain Commit for {message.action}")
            return [fx.LogEvent(f"{self.thread_id} retained Commit for "
                             f"{message.action}")]
        if self.pending_abort_target is not None:
            # The Commit is for the active action, but that action is being
            # aborted by an enclosing exception: the resolution it announces
            # is for a dying instance.  It must not clear LEi — the list
            # holds the enclosing action's records ("remove all elements
            # except <A*, Tj, Ej>"), and wiping them would lose the very
            # exception the abortion is resolving.
            self._trace(f"ignore Commit for aborting {message.action}")
            return [fx.LogEvent(f"{self.thread_id} ignored Commit for "
                             f"aborting {message.action}")]
        self.le.clear()
        self.handling[message.action] = message.exception
        self._trace(f"commit {message.exception.name} in {message.action}")
        return [fx.HandleResolved(message.action, message.exception,
                               resolver=message.resolver)]

    # ------------------------------------------------------------------
    # Abortion of nested actions
    # ------------------------------------------------------------------
    def _begin_abort(self, target_action: str, record: RaisedRecord,
                     cause: Optional[ExceptionDescriptor]) -> List[fx.Effect]:
        if self.pending_abort_target is not None:
            # Already aborting; if the new target is even higher, extend it.
            if self.sa.contains(target_action) and \
                    self._is_strictly_higher(target_action,
                                             self.pending_abort_target):
                self.pending_abort_target = target_action
                self._trace(f"extend abort target to {target_action}")
            return [fx.LogEvent(f"{self.thread_id} already aborting")]

        nested = self.sa.actions_between_top_and(target_action)
        self.pending_abort_target = target_action
        # "remove all elements except <A*, Tj, Ej> in LEi"
        self.le.keep_only(record)
        self._trace(f"abort nested {nested} up to {target_action}")
        return [
            fx.InterruptRole(self.active_action_name() or target_action,
                          cause if cause is not None
                          else ExceptionDescriptor("enclosing-exception")),
            fx.AbortNested(tuple(nested), resume_action=target_action, cause=cause),
        ]

    def abortion_completed(self, action: str,
                           raised: Optional[ExceptionDescriptor]) -> List[fx.Effect]:
        """The runtime finished aborting nested actions down to ``action``.

        ``raised`` is ``Eab``, the exception signalled by the abortion
        handler of the outermost aborted action (or None if the handlers
        completed silently).
        """
        if self.pending_abort_target is None:
            raise ProtocolError(
                f"{self.thread_id}: abortion_completed with no abort pending")
        target = self.pending_abort_target

        # Pop the aborted contexts so that ``target`` becomes the active one.
        for popped in self.sa.pop_until(target):
            self.handling.pop(popped.action, None)
            self._drop_retained(popped.action, popped.instance)
            self._clear_action_state(popped.action)
            if popped.instance:
                self.finished_instances.add(popped.instance)
        context = self.sa.top()
        effects: List[fx.Effect] = []

        if target != action and self.sa.contains(target):
            # The abort target was extended while the runtime was aborting;
            # keep aborting the remaining chain.
            remaining = self.sa.actions_between_top_and(target)
            self._trace(f"continue aborting {remaining} up to {target}")
            effects.append(fx.AbortNested(tuple(remaining), resume_action=target,
                                       cause=raised))
            return effects

        self.pending_abort_target = None
        if raised is not None:
            self.state = ThreadState.EXCEPTIONAL
            self._record(target, self.thread_id, raised,
                         instance=context.instance)
            self._trace(f"abortion handler raised {raised.name} in {target}")
            effects.append(fx.SendTo(context.others(self.thread_id),
                                  ExceptionMessage(target, self.thread_id,
                                                   raised,
                                                   instance=context.instance)))
            effects.append(fx.InformObjects(target, raised))
        else:
            self.state = ThreadState.SUSPENDED
            self._record(target, self.thread_id, None,
                         instance=context.instance)
            self._trace(f"suspended after abortion in {target}")
            effects.append(fx.SendTo(context.others(self.thread_id),
                                  SuspendedMessage(target, self.thread_id,
                                                   instance=context.instance)))
        # ``target`` is the active action again: replay messages retained
        # for it — in particular a Commit that arrived mid-abortion, which
        # would otherwise be lost and leave this thread suspended forever.
        effects.extend(self._replay_retained(context))
        effects.extend(self._check_resolution())
        return effects

    def _is_strictly_higher(self, candidate: str, reference: str) -> bool:
        """True if ``candidate`` encloses ``reference`` on this thread's stack."""
        names = self.sa.as_names()
        if candidate not in names or reference not in names:
            return False
        return names.index(candidate) < names.index(reference)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _check_resolution(self) -> List[fx.Effect]:
        """The algorithm's resolution guard, evaluated after each transition."""
        context = self.active_context()
        if context is None or self.pending_abort_target is not None:
            return []
        action = context.action
        if action in self.handling:
            return []
        if self.state is not ThreadState.EXCEPTIONAL:
            # Only a thread in state X can be the resolver.
            return []

        # The guard counts only reports of the *instance* this thread is in:
        # under overlapping instances of one action name (the workload
        # driver's shared partition pool) a late report of a previous
        # instance must never complete the current instance's census.
        reported = self.le.threads_reported(action, context.instance)
        if reported != set(context.participants):
            return []
        exceptional = self.le.exceptional_threads(action, context.instance)
        # "Largest identifier" is the paper's numeric ordering: with ids
        # T1…T64 the resolver must be T64, not the lexicographic max T9.
        if not exceptional or max_thread(exceptional) != self.thread_id:
            return []

        raised = self.le.exceptions_for(action, context.instance)
        self.resolution_calls += 1
        resolved = context.resolve(raised)
        self.le.clear()
        self.handling[action] = resolved
        self._trace(f"resolve {sorted(e.name for e in raised)} -> "
                    f"{resolved.name} in {action}")
        return [
            fx.ChargeTime("resolution", 1),
            fx.SendTo(context.others(self.thread_id),
                   CommitMessage(action, self.thread_id, resolved,
                                 instance=context.instance)),
            fx.HandleResolved(action, resolved, resolver=self.thread_id),
        ]
