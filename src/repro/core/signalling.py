"""The distributed exception-signalling algorithm (Section 3.4).

After the participating threads of a nested action have handled the
resolving exception, each may need to signal an interface exception ε to the
enclosing action.  Different roles may signal different exceptions, but two
special cases require coordination:

* if any role signals the failure exception ``ƒ``, every role must signal
  ``ƒ``;
* roles may only signal the undo exception ``µ`` if *all* of them signal
  ``µ`` — which requires every role to first execute its undo operations,
  and if any undo fails the whole group falls back to ``ƒ``.

The algorithm uses ``toBeSignalled(Ti, ε)`` messages, ``N(N−1)`` of them in
the simple case and ``2N(N−1)`` in the worst case (a second round after the
undo operations).  Lost or corrupted messages can be treated as ``ƒ``, which
is how the algorithm extends to node/link crashes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .effects import Effect, LogEvent, SendTo
from .exceptions import (
    ExceptionDescriptor,
    ExceptionKind,
    FAILURE,
    NO_EXCEPTION,
    UNDO,
)
from .messages import ToBeSignalledMessage
from .state import ActionContext


@dataclass(frozen=True)
class SignalOutcome(Effect):
    """Final decision: this thread signals ``exception`` to the enclosing action.

    ``exception`` may be :data:`~repro.core.exceptions.NO_EXCEPTION` (φ),
    meaning the thread signals nothing and the action completes normally
    from its point of view.
    """

    action: str
    exception: ExceptionDescriptor


@dataclass(frozen=True)
class PerformUndo(Effect):
    """The thread must execute its undo operations, then call
    :meth:`SignalCoordinator.undo_completed` with the result."""

    action: str


class SignalProtocolError(RuntimeError):
    """Raised on misuse of the signalling coordinator API."""


class SignalCoordinator:
    """Per-thread state machine of the signalling algorithm.

    Life-cycle: construct with the thread id and the action context, call
    :meth:`propose` with the exception the local role wants to signal, feed
    every incoming :class:`ToBeSignalledMessage` to :meth:`receive`, and —
    if a :class:`PerformUndo` effect is returned — call
    :meth:`undo_completed` after the undo operations finish.  Exactly one
    :class:`SignalOutcome` effect is eventually produced.
    """

    def __init__(self, thread_id: str, context: ActionContext) -> None:
        self.thread_id = thread_id
        self.context = context
        self.round_number = 1
        self.undo_round_entered = False
        self.decided: Optional[ExceptionDescriptor] = None
        #: listSignal_i — proposals received this round, keyed by thread.
        self.proposals: Dict[str, ExceptionDescriptor] = {}
        self._own_proposal: Optional[ExceptionDescriptor] = None
        self.messages_sent = 0
        self.trace: List[str] = []

    # ------------------------------------------------------------------
    def propose(self, exception: Optional[ExceptionDescriptor]) -> List[Effect]:
        """Announce the exception this thread intends to signal.

        ``None`` is interpreted as φ (nothing to signal).
        """
        if self.decided is not None:
            raise SignalProtocolError(f"{self.thread_id} has already decided")
        if self._own_proposal is not None and not self.undo_round_entered:
            raise SignalProtocolError(
                f"{self.thread_id} already proposed in round {self.round_number}")
        proposal = exception if exception is not None else NO_EXCEPTION
        self._own_proposal = proposal
        self.proposals[self.thread_id] = proposal
        self.trace.append(f"propose {proposal.name} (round {self.round_number})")

        others = self.context.others(self.thread_id)
        self.messages_sent += len(others)
        effects: List[Effect] = [
            SendTo(others, ToBeSignalledMessage(self.context.action,
                                                self.thread_id, proposal,
                                                self.round_number,
                                                instance=self.context.instance)),
        ]
        effects.extend(self._maybe_decide())
        return effects

    def receive(self, message: ToBeSignalledMessage) -> List[Effect]:
        """Process a ``toBeSignalled`` message from a peer."""
        if message.action != self.context.action:
            return [LogEvent(f"{self.thread_id} ignored toBeSignalled for "
                             f"{message.action}")]
        if message.instance and self.context.instance and \
                message.instance != self.context.instance:
            # A proposal from a different instance of the same action name
            # (e.g. delayed past the end of its own instance) must not be
            # counted into this instance's agreement.
            return [LogEvent(f"{self.thread_id} ignored toBeSignalled for "
                             f"instance {message.instance}")]
        if message.round_number != self.round_number:
            # A round-2 message can only arrive after this thread also moved
            # to round 2 (FIFO + the round is entered by everyone before any
            # round-2 proposal is sent); an old round-1 duplicate is ignored.
            if message.round_number < self.round_number:
                return [LogEvent(f"{self.thread_id} ignored stale proposal")]
            # Early round-2 message: remember it for when we enter round 2.
            self.proposals.setdefault("_early:" + message.thread,
                                      message.exception)
            return []
        self.proposals[message.thread] = message.exception
        self.trace.append(f"recv {message.exception.name} from {message.thread}")
        return self._maybe_decide()

    def peer_failed(self, thread: str) -> List[Effect]:
        """Record a crashed/unreachable peer as proposing ƒ.

        "The corrupted message or lost message can be simply treated as a
        failure exception and ƒ is then recorded in listSignal_i."
        """
        self.proposals[thread] = FAILURE
        self.trace.append(f"peer {thread} treated as failure")
        return self._maybe_decide()

    def undo_completed(self, successful: bool) -> List[Effect]:
        """Report the result of this thread's undo operations (round 2).

        A successful undo re-proposes µ; a failed undo proposes ƒ, which
        forces every thread to signal ƒ.
        """
        if not self.undo_round_entered:
            raise SignalProtocolError(
                f"{self.thread_id}: undo_completed outside the undo round")
        return self.propose(UNDO if successful else FAILURE)

    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        """True once every participant's proposal for this round is known."""
        known = {thread for thread in self.proposals if not thread.startswith("_early:")}
        return known == set(self.context.participants)

    def _maybe_decide(self) -> List[Effect]:
        if self.decided is not None or not self.complete:
            return []
        values = [self.proposals[t] for t in self.context.participants]
        kinds = {value.kind for value in values}

        if ExceptionKind.FAILURE in kinds:
            # Case 3: ƒ anywhere forces ƒ everywhere.
            return self._decide(FAILURE)

        if ExceptionKind.UNDO in kinds:
            # Case 2: µ proposed but no ƒ.
            if self.undo_round_entered:
                return self._decide(UNDO)
            return self._enter_undo_round()

        # Case 1: no µ and no ƒ — every thread signals its own exception.
        return self._decide(self._own_proposal or NO_EXCEPTION)

    def _decide(self, exception: ExceptionDescriptor) -> List[Effect]:
        self.decided = exception
        self.trace.append(f"decide {exception.name}")
        return [SignalOutcome(self.context.action, exception)]

    def _enter_undo_round(self) -> List[Effect]:
        self.undo_round_entered = True
        self.round_number = 2
        self._own_proposal = None
        early = {key.split(":", 1)[1]: value
                 for key, value in self.proposals.items()
                 if key.startswith("_early:")}
        self.proposals = dict(early)
        self.trace.append("enter undo round")
        return [PerformUndo(self.context.action)]
