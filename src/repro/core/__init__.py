"""Core CA-action exception model and coordination algorithms.

This package contains the paper's primary contribution, independent of any
particular transport or simulator:

* the exception vocabulary (internal, interface, µ, ƒ, universal, abortion);
* exception graphs with resolution, generation and simplification;
* CA-action and role definitions, handler maps;
* the per-thread protocol state (N/X/S, ``LEi``, ``SAi``);
* the coordinated exception handling and resolution algorithm
  (Section 3.3.2) and the exception signalling algorithm (Section 3.4),
  both as pure message-driven state machines;
* the Campbell–Randell and Romanovsky-96 baseline algorithms.
"""

from .action import (
    ActionDefinitionError,
    ActionRegistry,
    CAActionDefinition,
    RoleDefinition,
)
from .effects import (
    AbortNested,
    ChargeTime,
    Effect,
    HandleResolved,
    InformObjects,
    InterruptRole,
    LogEvent,
    SendTo,
    count_messages,
    sends,
)
from .exception_graph import (
    CompiledGraphIndex,
    ExceptionGraph,
    ExceptionGraphError,
    generate_full_graph,
    graph_statistics,
    prune_impossible_combinations,
)
from .exceptions import (
    ABORTION,
    ActionAborted,
    ActionFailure,
    ExceptionDescriptor,
    ExceptionKind,
    FAILURE,
    NO_EXCEPTION,
    RaisedException,
    RaisedRecord,
    UNDO,
    UNIVERSAL,
    interface,
    internal,
)
from .handlers import (
    Handler,
    HandlerMap,
    HandlerResult,
    HandlerStatus,
    default_abort_handler,
)
from .messages import (
    ApplicationMessage,
    CommitMessage,
    EnterActionMessage,
    ExceptionMessage,
    ExitConfirmMessage,
    ExitReadyMessage,
    ProtocolMessage,
    SuspendedMessage,
    ToBeSignalledMessage,
)
from .resolution import CoordinatorBase, ProtocolError, ResolutionCoordinator
from .signalling import (
    PerformUndo,
    SignalCoordinator,
    SignalOutcome,
    SignalProtocolError,
)
from .state import (
    ActionContext,
    ContextStack,
    LocalExceptionList,
    ThreadState,
    max_thread,
    min_thread,
    thread_order_key,
)

__all__ = [
    "ABORTION",
    "AbortNested",
    "ActionAborted",
    "ActionContext",
    "ActionDefinitionError",
    "ActionFailure",
    "ActionRegistry",
    "ApplicationMessage",
    "CAActionDefinition",
    "ChargeTime",
    "CommitMessage",
    "CompiledGraphIndex",
    "ContextStack",
    "CoordinatorBase",
    "count_messages",
    "default_abort_handler",
    "Effect",
    "EnterActionMessage",
    "ExceptionDescriptor",
    "ExceptionGraph",
    "ExceptionGraphError",
    "ExceptionKind",
    "ExceptionMessage",
    "ExitConfirmMessage",
    "ExitReadyMessage",
    "FAILURE",
    "generate_full_graph",
    "graph_statistics",
    "HandleResolved",
    "Handler",
    "HandlerMap",
    "HandlerResult",
    "HandlerStatus",
    "InformObjects",
    "interface",
    "internal",
    "InterruptRole",
    "LocalExceptionList",
    "LogEvent",
    "max_thread",
    "min_thread",
    "NO_EXCEPTION",
    "PerformUndo",
    "ProtocolError",
    "ProtocolMessage",
    "prune_impossible_combinations",
    "RaisedException",
    "RaisedRecord",
    "ResolutionCoordinator",
    "RoleDefinition",
    "SendTo",
    "sends",
    "SignalCoordinator",
    "SignalOutcome",
    "SignalProtocolError",
    "SuspendedMessage",
    "ThreadState",
    "thread_order_key",
    "ToBeSignalledMessage",
    "UNDO",
    "UNIVERSAL",
]
