"""Exception handlers and their outcomes.

Each role of a CA action has a set of handlers, one per declared internal
exception (different roles may have different handlers for the same
exception).  Under the termination model, "handlers take over the duties of
participating threads in a CA action and complete the action either
successfully or by signalling an exception ε to the enclosing action".

A handler is any callable taking the runtime role context and returning a
:class:`HandlerResult` (or ``None``, which is treated as success).  Handler
bodies may be generator functions when they need to consume virtual time
(e.g. the ``Treso``/handler-duration parameters of the experiments); the
runtime detects this and drives the generator.
"""

from __future__ import annotations

import functools
import inspect
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Iterable, List, Optional

from .exceptions import (
    ABORTION,
    ExceptionDescriptor,
    FAILURE,
    NO_EXCEPTION,
    UNDO,
)

#: Code-object flag marking a generator function (inspect.CO_GENERATOR).
_CO_GENERATOR = inspect.CO_GENERATOR


class HandlerStatus(Enum):
    """How a handler (or a role's primary attempt) finished."""

    SUCCESS = "success"          # the action can exit with a normal outcome
    SIGNAL = "signal"            # an interface exception must be signalled
    ABORT = "abort"              # the action must be undone (µ if undo works)
    FAILED = "failed"            # the handler itself failed (leads to ƒ)


@dataclass(slots=True)
class HandlerResult:
    """Outcome of running a handler.

    ``exception`` is meaningful for ``SIGNAL`` (the interface exception ε to
    signal); for the other statuses it is ignored.
    """

    status: HandlerStatus = HandlerStatus.SUCCESS
    exception: Optional[ExceptionDescriptor] = None
    note: str = ""

    @classmethod
    def success(cls, note: str = "") -> "HandlerResult":
        """The handler recovered the action; it can complete normally."""
        return cls(HandlerStatus.SUCCESS, None, note)

    @classmethod
    def signal(cls, exception: ExceptionDescriptor, note: str = "") -> "HandlerResult":
        """The handler only partially recovered: signal ``exception``."""
        return cls(HandlerStatus.SIGNAL, exception, note)

    @classmethod
    def abort(cls, note: str = "") -> "HandlerResult":
        """The action must be aborted and undone (µ, or ƒ if undo fails)."""
        return cls(HandlerStatus.ABORT, UNDO, note)

    @classmethod
    def failed(cls, note: str = "") -> "HandlerResult":
        """The handler could not recover at all: signal ƒ."""
        return cls(HandlerStatus.FAILED, FAILURE, note)


#: Type of a handler callable (context is the runtime RoleContext; typed as
#: object here to keep the core model independent of the runtime package).
Handler = Callable[[object], Optional[HandlerResult]]


class HandlerMap:
    """The handlers one role provides for its action's internal exceptions.

    The map may also hold a dedicated *abortion handler* (invoked when the
    enclosing action aborts this one) and a *default handler* used for any
    declared exception without an explicit entry — the paper requires every
    role to be able to respond to every declared exception, so lookups for a
    declared exception never fail: in the absence of anything better the
    :func:`default_abort_handler` is returned.
    """

    def __init__(self, handlers: Optional[Dict[ExceptionDescriptor, Handler]] = None,
                 abortion_handler: Optional[Handler] = None,
                 default_handler: Optional[Handler] = None) -> None:
        self._handlers: Dict[ExceptionDescriptor, Handler] = dict(handlers or {})
        self.abortion_handler = abortion_handler
        self.default_handler = default_handler

    def register(self, exception: ExceptionDescriptor, handler: Handler) -> None:
        """Associate ``handler`` with ``exception`` for this role."""
        self._handlers[exception] = handler

    def register_abortion(self, handler: Handler) -> None:
        """Set the handler invoked when the action is aborted from above."""
        self.abortion_handler = handler

    def lookup(self, exception: ExceptionDescriptor) -> Handler:
        """Find the handler for ``exception`` (falls back to the defaults)."""
        if exception in self._handlers:
            return self._handlers[exception]
        if exception == ABORTION and self.abortion_handler is not None:
            return self.abortion_handler
        if self.default_handler is not None:
            return self.default_handler
        return default_abort_handler

    def has_specific(self, exception: ExceptionDescriptor) -> bool:
        """True if a dedicated (non-default) handler exists."""
        return exception in self._handlers

    def declared(self) -> List[ExceptionDescriptor]:
        """Exceptions with dedicated handlers."""
        return list(self._handlers)

    def __len__(self) -> int:
        return len(self._handlers)


def default_abort_handler(_context: object) -> HandlerResult:
    """Fallback handler: give up and request abortion of the action.

    Used when a role has no handler for the resolved exception — the safest
    interpretation of the model is that the action cannot be recovered and
    must be undone.
    """
    return HandlerResult.abort("no specific handler; aborting the action")


def is_generator_handler(handler: Handler) -> bool:
    """True if ``handler`` is a generator function (consumes virtual time).

    The runtime asks this on every body/handler invocation, so the common
    case (a plain function or method) reads the generator flag off the
    code object directly — O(1), no caching, and therefore no retention
    of per-run closures.  Anything without a code object (callable
    instances, odd wrappers) falls back to :mod:`inspect`.
    """
    while isinstance(handler, functools.partial):
        handler = handler.func
    code = getattr(handler, "__code__", None)
    if code is not None:
        return bool(code.co_flags & _CO_GENERATOR)
    return inspect.isgeneratorfunction(handler)


def normalise_result(value: object) -> HandlerResult:
    """Coerce a handler return value into a :class:`HandlerResult`."""
    if value is None:
        return HandlerResult.success()
    if isinstance(value, HandlerResult):
        return value
    if isinstance(value, ExceptionDescriptor):
        return HandlerResult.signal(value)
    raise TypeError(f"handler returned unsupported value {value!r}")
