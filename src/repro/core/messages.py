"""Protocol messages of the coordination algorithms.

Section 3.3.1 defines three messages for the resolution algorithm and
Section 3.4 adds one for the signalling algorithm:

* ``Exception(A, Ti, E)`` — sent by thread ``Ti`` to all other threads of
  action ``A`` when it raises exception ``E``;
* ``Suspended(A, Ti, S)`` — sent by a thread that raised no exception but
  has received Exception/Suspended messages from others;
* ``Commit(A, E)`` — sent by the resolving thread after it resolves the
  concurrent exceptions into ``E``;
* ``toBeSignalled(Ti, ε)`` — sent during exception signalling to agree on
  the interface exceptions the roles will signal to the enclosing action.

The runtime adds a few auxiliary messages for action entry/exit
coordination; they are application-level from the algorithm's point of view
and are therefore kept in a separate section and never counted as protocol
messages by the complexity benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .exceptions import ExceptionDescriptor


@dataclass(frozen=True, slots=True)
class ProtocolMessage:
    """Base class for all coordination messages (marker type)."""


# ----------------------------------------------------------------------
# Resolution algorithm messages (Section 3.3)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ExceptionMessage(ProtocolMessage):
    """``Exception(A, Ti, E)``: ``thread`` raised ``exception`` in ``action``.

    ``instance`` identifies the particular action *instance* the message
    belongs to (empty when the sender predates instance tracking).  The
    fault-space explorer demonstrated why the name alone is ambiguous: a
    message delayed past the end of its instance would otherwise be
    retained forever — or worse, replayed into a later instance of the
    same action name.
    """

    action: str
    thread: str
    exception: ExceptionDescriptor
    instance: str = ""


@dataclass(frozen=True, slots=True)
class SuspendedMessage(ProtocolMessage):
    """``Suspended(A, Ti, S)``: ``thread`` halted normal computation in ``action``."""

    action: str
    thread: str
    instance: str = ""


@dataclass(frozen=True, slots=True)
class CommitMessage(ProtocolMessage):
    """``Commit(A, E)``: the resolver fixed ``exception`` as the resolving exception."""

    action: str
    resolver: str
    exception: ExceptionDescriptor
    instance: str = ""


# ----------------------------------------------------------------------
# Signalling algorithm message (Section 3.4)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ToBeSignalledMessage(ProtocolMessage):
    """``toBeSignalled(Ti, ε)``: ``thread`` intends to signal ``exception``.

    ``round_number`` distinguishes the optional second round triggered when
    some thread intends to signal µ and every role must first perform its
    undo operations (Section 3.4, "after the second round of message passing
    no more operations will be executed").  ``instance`` identifies the
    particular action instance, like the resolution messages' stamp: under
    overlapping instances of one action name a proposal parked for (or
    delivered into) the wrong instance's signalling phase would poison its
    agreement.
    """

    action: str
    thread: str
    exception: ExceptionDescriptor
    round_number: int = 1
    instance: str = ""


# ----------------------------------------------------------------------
# Runtime coordination messages (not counted as protocol messages)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class EnterActionMessage:
    """A thread announces that it has reached the entry point of an action.

    ``instance`` identifies the particular action instance (the enclosing
    instance chain plus a per-parent occurrence number), so that entry
    barriers of successive instances of the same action never get confused —
    even when some threads abandoned an earlier attempt because the
    enclosing action was recovering.
    """

    action: str
    thread: str
    role: str
    instance: str = ""


@dataclass(frozen=True, slots=True)
class ExitReadyMessage:
    """A thread is ready to leave the action (synchronous exit protocol)."""

    action: str
    thread: str
    outcome: str  # "success" or "failure"
    instance: str = ""


@dataclass(frozen=True, slots=True)
class ExitConfirmMessage:
    """The exit coordinator confirms all threads may leave the action."""

    action: str
    outcome: str


@dataclass(frozen=True, slots=True)
class ApplicationMessage:
    """Cooperation traffic between roles inside an action (user payload)."""

    action: str
    sender: str
    recipient: str
    tag: str
    body: object = None


#: Message type names counted by the complexity benchmarks as belonging to
#: the resolution algorithm (Theorem 2 and the Section 3.2.3 enumerations).
RESOLUTION_MESSAGE_TYPES: Tuple[str, ...] = (
    "ExceptionMessage", "SuspendedMessage", "CommitMessage")

#: Message type names counted as belonging to the signalling algorithm.
SIGNALLING_MESSAGE_TYPES: Tuple[str, ...] = ("ToBeSignalledMessage",)
