"""CA-action and role definitions.

A CA action "provides a mechanism for performing a group of operations on a
collection of, local or external atomic, objects.  These operations are
performed cooperatively by one or more roles executing in parallel within
the CA action.  The interface to a CA action specifies the objects that are
to be manipulated by the CA action and the roles that are to manipulate
these objects."  (Section 3.1.)

This module holds the *static* definitions — what a designer writes: roles,
declared internal exceptions ``e``, interface exceptions ``ε``, the
exception graph, the external objects, and nesting.  The dynamic behaviour
(threads entering, exceptions propagating) lives in :mod:`repro.runtime`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from .exception_graph import ExceptionGraph
from .exceptions import (
    ABORTION,
    ExceptionDescriptor,
    ExceptionKind,
    FAILURE,
    UNDO,
)
from .handlers import Handler, HandlerMap


class ActionDefinitionError(ValueError):
    """Raised when an action definition violates the model's constraints."""


@dataclass
class RoleDefinition:
    """One role of a CA action.

    Attributes
    ----------
    name:
        Role name, unique within the action.
    body:
        The role's primary-attempt code: a generator function taking the
        runtime role context.  ``None`` is allowed for definitions used only
        by the pure protocol tests.
    handlers:
        The role's :class:`HandlerMap` for the action's internal exceptions.
    """

    name: str
    body: Optional[Callable] = None
    handlers: HandlerMap = field(default_factory=HandlerMap)

    def handler_for(self, exception: ExceptionDescriptor) -> Handler:
        """Return the handler this role uses for ``exception``."""
        return self.handlers.lookup(exception)


class CAActionDefinition:
    """Static definition of a CA action.

    Parameters
    ----------
    name:
        Unique action name.
    roles:
        The role definitions; exactly one thread per role performs the
        action.
    internal_exceptions:
        The set ``e`` of exceptions that can be raised within the action.
        The abortion exception is always included implicitly.
    interface_exceptions:
        The set ``ε`` of exceptions that can be signalled to the enclosing
        action.  ``µ`` and ``ƒ`` are always included implicitly.
    graph:
        The action's exception graph.  If omitted, a flat graph (every
        internal exception directly below the universal exception) is built.
    external_objects:
        Names of the external atomic objects the action manipulates.
    parent:
        Name of the direct-enclosing action, for statically declared
        nesting.  The model requires ``ε_nested ⊆ e_enclosing``; this is
        checked by :meth:`validate_nesting`.
    """

    def __init__(self, name: str,
                 roles: Sequence[RoleDefinition],
                 internal_exceptions: Iterable[ExceptionDescriptor] = (),
                 interface_exceptions: Iterable[ExceptionDescriptor] = (),
                 graph: Optional[ExceptionGraph] = None,
                 external_objects: Iterable[str] = (),
                 parent: Optional[str] = None) -> None:
        if not name:
            raise ActionDefinitionError("action name must be non-empty")
        if not roles:
            raise ActionDefinitionError(f"action {name!r} needs at least one role")
        role_names = [role.name for role in roles]
        if len(set(role_names)) != len(role_names):
            raise ActionDefinitionError(f"action {name!r} has duplicate role names")

        self.name = name
        self.roles: Dict[str, RoleDefinition] = {role.name: role for role in roles}
        self.internal_exceptions: Set[ExceptionDescriptor] = set(internal_exceptions)
        self.internal_exceptions.add(ABORTION)
        self.interface_exceptions: Set[ExceptionDescriptor] = set(interface_exceptions)
        self.interface_exceptions.update({UNDO, FAILURE})
        self.external_objects: List[str] = list(external_objects)
        self.parent = parent

        if graph is None:
            graph = ExceptionGraph(name)
            for exception in sorted(self.internal_exceptions, key=lambda e: e.name):
                graph.add_exception(exception)
        self.graph = graph
        # Every internal exception must be resolvable, i.e. present in the
        # graph (the algorithm looks each raised exception up in the graph).
        for exception in self.internal_exceptions:
            if exception not in self.graph:
                self.graph.add_exception(exception)
        self.graph.validate()

    # ------------------------------------------------------------------
    @property
    def role_names(self) -> List[str]:
        """Role names in sorted order (the ordering used for thread IDs)."""
        return sorted(self.roles)

    def role(self, name: str) -> RoleDefinition:
        """Look up a role by name."""
        try:
            return self.roles[name]
        except KeyError:
            raise ActionDefinitionError(
                f"action {self.name!r} has no role {name!r}") from None

    def declares_internal(self, exception: ExceptionDescriptor) -> bool:
        """True if ``exception`` is in the action's internal set ``e``."""
        return exception in self.internal_exceptions

    def declares_interface(self, exception: ExceptionDescriptor) -> bool:
        """True if ``exception`` may be signalled from this action."""
        return exception in self.interface_exceptions

    def validate_nesting(self, enclosing: "CAActionDefinition") -> None:
        """Check ``ε_nested ⊆ e_enclosing`` (fully recursive definitions).

        µ and ƒ are exempt: the enclosing action is always required to be
        able to handle them (they are part of the model itself, not of any
        one action's declaration).
        """
        if self.parent is not None and self.parent != enclosing.name:
            raise ActionDefinitionError(
                f"action {self.name!r} declares parent {self.parent!r}, "
                f"not {enclosing.name!r}")
        missing = {
            exception for exception in self.interface_exceptions
            if exception not in (UNDO, FAILURE)
            and not enclosing.declares_internal(exception)
        }
        if missing:
            raise ActionDefinitionError(
                f"interface exceptions {sorted(e.name for e in missing)} of "
                f"{self.name!r} are not internal exceptions of {enclosing.name!r}")

    def __repr__(self) -> str:
        return (f"<CAAction {self.name} roles={self.role_names} "
                f"e={len(self.internal_exceptions)} "
                f"eps={len(self.interface_exceptions)}>")


class ActionRegistry:
    """A collection of action definitions with nesting validation.

    The registry is what a "program" is, statically: the set of CA actions
    it may execute, with their nesting relationships.  The runtime reads
    definitions from here when threads enter actions.
    """

    def __init__(self) -> None:
        self._actions: Dict[str, CAActionDefinition] = {}

    def register(self, definition: CAActionDefinition) -> CAActionDefinition:
        """Add a definition; validates nesting against its parent if known."""
        if definition.name in self._actions:
            raise ActionDefinitionError(
                f"action {definition.name!r} already registered")
        if definition.parent is not None and definition.parent in self._actions:
            definition.validate_nesting(self._actions[definition.parent])
        self._actions[definition.name] = definition
        return definition

    def get(self, name: str) -> CAActionDefinition:
        """Look up a definition by action name."""
        try:
            return self._actions[name]
        except KeyError:
            raise ActionDefinitionError(f"unknown action {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._actions

    def __len__(self) -> int:
        return len(self._actions)

    def children_of(self, name: str) -> List[CAActionDefinition]:
        """All registered actions that declare ``name`` as their parent."""
        return [definition for definition in self._actions.values()
                if definition.parent == name]

    def nesting_depth(self, name: str) -> int:
        """Number of ancestors of ``name`` (0 for a top-level action)."""
        depth = 0
        current = self.get(name)
        while current.parent is not None:
            current = self.get(current.parent)
            depth += 1
        return depth

    def max_nesting(self) -> int:
        """``n_max``: the maximum nesting depth over all registered actions."""
        if not self._actions:
            return 0
        return max(self.nesting_depth(name) for name in self._actions)
