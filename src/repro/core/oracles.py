"""Correctness oracles over protocol state: the paper's claims as predicates.

The paper argues three properties of the combined resolution + signalling
algorithms (Sections 3.3–3.4):

* **agreement** — every participant of an action instance that handles a
  resolving exception handles the *same* one (the resolver commits exactly
  once, Commit is what everyone else obeys);
* **exactly-one outcome** — each participating thread concludes each action
  instance exactly once (no duplicated or lost conclusions);
* **no stranded thread** — under the stated assumptions (dependable FIFO
  communication), no thread is left suspended forever: at quiescence every
  thread is idle, has no pending abortion and retains no undelivered
  protocol messages.

This module states those properties as pure predicates over plain data
(records collected by the explorer's
:class:`~repro.explore.monitor.InvariantMonitor` probes, and coordinator /
partition state inspected at quiescence).  Keeping them here — next to the
state machines whose guarantees they express — lets both the mechanized
fault-space explorer and hand-written tests share one oracle catalogue.

Every predicate returns a list of :class:`OracleViolation` (empty means the
property holds), so callers can aggregate across predicates and runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Mapping, Sequence, Tuple

from .state import ThreadState

#: Invariant names, as reported in violations (the catalogue).
AGREEMENT = "agreement"
EXACTLY_ONE_OUTCOME = "exactly_one_outcome"
NO_STRANDED_THREAD = "no_stranded_thread"
ABORTION_ATOMIC = "abortion_atomic"
DIFFERENTIAL_AGREEMENT = "differential_agreement"
NO_CRASH = "no_crash"
NO_LOST_UPDATE = "no_lost_update"
LOCKS_RELEASED = "locks_released"

INVARIANTS = (AGREEMENT, EXACTLY_ONE_OUTCOME, NO_STRANDED_THREAD,
              ABORTION_ATOMIC, DIFFERENTIAL_AGREEMENT, NO_CRASH,
              NO_LOST_UPDATE, LOCKS_RELEASED)


@dataclass(frozen=True)
class OracleViolation:
    """One observed violation of one invariant."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.detail}"


def check_agreement(resolutions: Mapping[Tuple[str, str], Sequence[Tuple[str, str]]]
                    ) -> List[OracleViolation]:
    """All participants of one instance resolved to the same exception.

    ``resolutions`` maps ``(action, instance_key)`` to the list of
    ``(thread, resolved_exception_name)`` pairs observed for that instance —
    one entry per resolution *delivery*, so a duplicated Commit shows up
    as the same thread appearing twice and is flagged even when the
    duplicate announces the same exception (the resolver commits exactly
    once per instance).  Threads that never resolved (e.g. the instance
    was aborted before its resolution reached them) are simply absent;
    agreement is required among those that did.
    """
    violations: List[OracleViolation] = []
    for (action, instance), seen in sorted(resolutions.items()):
        names = sorted({name for _, name in seen})
        if len(names) > 1:
            by_thread = ", ".join(f"{thread}:{name}"
                                  for thread, name in sorted(seen))
            violations.append(OracleViolation(
                AGREEMENT,
                f"{action} instance {instance} resolved divergently "
                f"({by_thread})"))
        threads = [thread for thread, _ in seen]
        for thread in sorted(set(threads)):
            count = threads.count(thread)
            if count > 1:
                violations.append(OracleViolation(
                    AGREEMENT,
                    f"{action} instance {instance} delivered {count} "
                    f"resolutions to {thread}"))
    return violations


def check_exactly_one_outcome(outcomes: Mapping[Tuple[str, str, str], int],
                              require_completion: bool = True
                              ) -> List[OracleViolation]:
    """Each (instance, thread) participation concluded exactly once.

    ``outcomes`` maps ``(action, instance_key, thread)`` to the number of
    conclusions observed for that participation (zero for participations
    that were entered but never concluded).  More than one conclusion is
    a safety violation unconditionally; a *missing* conclusion is the
    liveness half — under assumption-violating fault plans a participation
    may legitimately never conclude, so callers waive it by passing
    ``require_completion=False``.
    """
    violations: List[OracleViolation] = []
    for (action, instance, thread), count in sorted(outcomes.items()):
        if count > 1 or (count == 0 and require_completion):
            violations.append(OracleViolation(
                EXACTLY_ONE_OUTCOME,
                f"{thread} concluded {action} instance {instance} "
                f"{count} times"))
    return violations


@dataclass(frozen=True)
class ThreadQuiescence:
    """The explorer-visible state of one thread at quiescence."""

    thread: str
    program_finished: bool
    status: str
    coordinator_state: ThreadState
    pending_abort: bool
    pending_abort_target: Any
    retained_messages: int
    stack_depth: int


def check_no_stranded_thread(threads: Iterable[ThreadQuiescence]
                             ) -> List[OracleViolation]:
    """No thread is left suspended/waiting once the simulation went quiet."""
    violations: List[OracleViolation] = []
    for snap in threads:
        problems: List[str] = []
        if not snap.program_finished:
            problems.append("program never finished")
        if snap.status != "idle":
            problems.append(f"status={snap.status!r}")
        if snap.coordinator_state is ThreadState.SUSPENDED:
            problems.append("coordinator suspended")
        if snap.stack_depth:
            problems.append(f"{snap.stack_depth} contexts still on SA")
        if snap.retained_messages:
            problems.append(f"{snap.retained_messages} retained messages")
        if problems:
            violations.append(OracleViolation(
                NO_STRANDED_THREAD,
                f"{snap.thread} stranded at quiescence: "
                + "; ".join(problems)))
    return violations


def check_abortion_atomic(threads: Iterable[ThreadQuiescence]
                          ) -> List[OracleViolation]:
    """Nested abortion ran to completion wherever it started."""
    violations: List[OracleViolation] = []
    for snap in threads:
        if snap.pending_abort or snap.pending_abort_target is not None:
            target = snap.pending_abort_target
            violations.append(OracleViolation(
                ABORTION_ATOMIC,
                f"{snap.thread} still mid-abortion at quiescence "
                f"(target={target!r})"))
    return violations


def check_no_lost_updates(counters: Iterable[Mapping[str, Any]]
                          ) -> List[OracleViolation]:
    """Tracked counters reflect every committed increment exactly once.

    The transactional workload's contract: each committed transaction
    that wrote a tracked counter field incremented it by exactly one
    (read under an exclusive lock, write value+1).  ``counters`` holds one
    record per tracked field::

        {"object": name, "key": field, "initial": v0, "final": v1,
         "committed_writers": n}

    where ``committed_writers`` counts the distinct *committed*
    transactions that wrote the field.  A final value below
    ``initial + committed_writers`` means a committed write was built on
    a stale read (the classic lost update); a value above it means an
    aborted transaction's write leaked into the committed state.
    """
    violations: List[OracleViolation] = []
    for record in counters:
        expected = record["initial"] + record["committed_writers"]
        if record["final"] != expected:
            violations.append(OracleViolation(
                NO_LOST_UPDATE,
                f"{record['object']}.{record['key']} ended at "
                f"{record['final']} but {record['committed_writers']} "
                f"committed writers over initial {record['initial']} "
                f"require {expected}"))
    return violations


def check_locks_released(held: Mapping[str, Sequence[Tuple[str, str]]],
                         waiting: Mapping[str, Sequence[str]],
                         finished: Iterable[str]) -> List[OracleViolation]:
    """No finished transaction still holds or awaits a lock at quiescence.

    Strict two-phase locking releases everything at commit/abort time —
    including after an *abort* (the recovery path must not leak locks).
    ``held`` and ``waiting`` are the lock manager's plain-data views
    (:meth:`~repro.objects.locks.LockManager.all_holders` /
    :meth:`~repro.objects.locks.LockManager.all_waiters`); ``finished``
    is the set of committed/aborted transaction ids.  At quiescence every
    transaction is finished, so any surviving grant or queued request is
    a leak.
    """
    finished_ids = set(finished)
    violations: List[OracleViolation] = []
    for object_name, grants in sorted(held.items()):
        for transaction_id, mode in grants:
            if transaction_id in finished_ids:
                violations.append(OracleViolation(
                    LOCKS_RELEASED,
                    f"finished transaction {transaction_id} still holds a "
                    f"{mode} lock on {object_name}"))
    for object_name, queue in sorted(waiting.items()):
        for transaction_id in queue:
            if transaction_id in finished_ids:
                violations.append(OracleViolation(
                    LOCKS_RELEASED,
                    f"finished transaction {transaction_id} still queued "
                    f"for a lock on {object_name}"))
    return violations


def check_differential_agreement(reference: Mapping[str, str],
                                 candidate: Mapping[str, str],
                                 reference_name: str,
                                 candidate_name: str) -> List[OracleViolation]:
    """Two algorithms resolved the same instances to the same exceptions.

    Both arguments map ``"action#instance/thread"`` keys to resolved
    exception names.  The baselines implement the *same specification* with
    different message patterns, so on an identical deterministic workload
    they must agree on what each instance resolved to.
    """
    violations: List[OracleViolation] = []
    for key in sorted(set(reference) | set(candidate)):
        ours = reference.get(key)
        theirs = candidate.get(key)
        if ours != theirs:
            violations.append(OracleViolation(
                DIFFERENTIAL_AGREEMENT,
                f"{key}: {reference_name} resolved {ours!r} but "
                f"{candidate_name} resolved {theirs!r}"))
    return violations
