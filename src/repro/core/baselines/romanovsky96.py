"""Model of the authors' earlier algorithm (Romanovsky, Xu & Randell 1996).

The paper positions its new algorithm against its predecessor from ICDCS'96,
which "could use ``n_max × 3N × (N−1)`` messages": instead of a single
resolver and a single ``Commit``, *every* thread gathers the full picture,
resolves locally, and the group runs an extra all-to-all agreement round
before handling.

Protocol shape implemented here (per nesting level):

1. every thread broadcasts its exception or suspension, as in the new
   algorithm — up to ``N(N−1)`` messages;
2. once a thread knows everyone's status it resolves locally (each thread
   charges ``Treso`` once) and broadcasts the result in an
   :class:`AgreementMessage` — another ``N(N−1)`` messages;
3. once a thread has everyone's resolution it broadcasts a confirmation
   (:class:`ConfirmMessage`) and starts handling after receiving all
   confirmations — the third ``N(N−1)`` messages.

The nesting/abortion machinery is inherited unchanged from the shared base.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from .. import effects as fx
from ..exceptions import ExceptionDescriptor
from ..messages import CommitMessage, ProtocolMessage
from ..resolution import ResolutionCoordinator
from ..state import ThreadState


@dataclass(frozen=True)
class AgreementMessage(ProtocolMessage):
    """Round-2 message: the resolution this thread computed locally.

    ``instance`` stamps the action instance, like the base algorithm's
    messages: under overlapping instances of one action name (the workload
    driver's pool) a delayed agreement must not leak into a later
    instance's round state.
    """

    action: str
    thread: str
    exception: ExceptionDescriptor
    instance: str = ""


@dataclass(frozen=True)
class ConfirmMessage(ProtocolMessage):
    """Round-3 message: this thread confirms the agreed resolving exception."""

    action: str
    thread: str
    exception: ExceptionDescriptor
    instance: str = ""


class Romanovsky96Coordinator(ResolutionCoordinator):
    """Baseline coordinator following the 1996 three-round scheme."""

    def __init__(self, thread_id: str) -> None:
        super().__init__(thread_id)
        self._agreements: Dict[str, Dict[str, ExceptionDescriptor]] = {}
        self._confirms: Dict[str, Set[str]] = {}
        self._own_agreement: Dict[str, ExceptionDescriptor] = {}
        self._own_confirmed: Dict[str, ExceptionDescriptor] = {}

    def _clear_action_state(self, action: str) -> None:
        self._agreements.pop(action, None)
        self._confirms.pop(action, None)
        self._own_agreement.pop(action, None)
        self._own_confirmed.pop(action, None)

    # ------------------------------------------------------------------
    def receive(self, message: ProtocolMessage) -> List[fx.Effect]:
        if isinstance(message, (AgreementMessage, ConfirmMessage)):
            misdirected = self._guard_round_message(message, kind="R96")
            if misdirected is not None:
                return misdirected
        if isinstance(message, AgreementMessage):
            return self._receive_agreement(message)
        if isinstance(message, ConfirmMessage):
            return self._receive_confirm(message)
        if isinstance(message, CommitMessage):
            return [fx.LogEvent(f"{self.thread_id} ignored Commit (R96 mode)")]
        return super().receive(message)

    # ------------------------------------------------------------------
    def _check_resolution(self) -> List[fx.Effect]:
        """Round 2 trigger: resolve locally and broadcast the agreement."""
        context = self.active_context()
        if context is None or self.pending_abort_target is not None:
            return []
        action = context.action
        if action in self.handling or action in self._own_agreement:
            return []
        if self.state not in (ThreadState.EXCEPTIONAL, ThreadState.SUSPENDED):
            return []
        reported = self.le.threads_reported(action, context.instance)
        if reported != set(context.participants):
            return []
        raised = self.le.exceptions_for(action, context.instance)
        if not raised:
            return []
        self.resolution_calls += 1
        resolved = context.resolve(raised)
        self._own_agreement[action] = resolved
        self._trace(f"R96 agree {resolved.name} in {action}")
        effects: List[fx.Effect] = [
            fx.ChargeTime("resolution", 1),
            fx.SendTo(context.others(self.thread_id),
                   AgreementMessage(action, self.thread_id, resolved,
                                    instance=context.instance)),
        ]
        effects.extend(self._maybe_confirm(action))
        return effects

    def _receive_agreement(self, message: AgreementMessage) -> List[fx.Effect]:
        self._agreements.setdefault(message.action, {})[message.thread] = \
            message.exception
        return self._maybe_confirm(message.action)

    def _maybe_confirm(self, action: str) -> List[fx.Effect]:
        """Round 3 trigger: all agreements known -> broadcast confirmation."""
        context = self.sa.find(action)
        if context is None or action in self._own_confirmed:
            return []
        if action not in self._own_agreement:
            return []
        agreements = dict(self._agreements.get(action, {}))
        agreements[self.thread_id] = self._own_agreement[action]
        if set(agreements) != set(context.participants):
            return []
        final = context.resolve(set(agreements.values()))
        self._own_confirmed[action] = final
        self._confirms.setdefault(action, set()).add(self.thread_id)
        self._trace(f"R96 confirm {final.name} in {action}")
        effects: List[fx.Effect] = [
            fx.SendTo(context.others(self.thread_id),
                   ConfirmMessage(action, self.thread_id, final,
                                  instance=context.instance)),
        ]
        effects.extend(self._maybe_handle(action))
        return effects

    def _receive_confirm(self, message: ConfirmMessage) -> List[fx.Effect]:
        self._confirms.setdefault(message.action, set()).add(message.thread)
        return self._maybe_handle(message.action)

    def _maybe_handle(self, action: str) -> List[fx.Effect]:
        context = self.sa.find(action)
        if context is None or action in self.handling:
            return []
        if action not in self._own_confirmed:
            return []
        if self._confirms.get(action, set()) != set(context.participants):
            return []
        final = self._own_confirmed[action]
        self.le.clear()
        self.handling[action] = final
        self._trace(f"R96 handle {final.name} in {action}")
        return [fx.HandleResolved(action, final, resolver=self.thread_id)]
