"""Baseline resolution algorithms used for the experimental comparison.

Both baselines share the coordinator interface of
:class:`repro.core.resolution.ResolutionCoordinator`, so the runtime (and
the comparison benchmark of Figures 12/13) can swap the algorithm while
keeping every other part of the CA-action support unchanged.
"""

from .campbell_randell import (
    CampbellRandellCoordinator,
    CRConfirmMessage,
    CRForwardMessage,
    CRResolvedMessage,
)
from .romanovsky96 import (
    AgreementMessage,
    ConfirmMessage,
    Romanovsky96Coordinator,
)

#: Payload class names that count as resolution-protocol traffic for each
#: algorithm (used by the message-complexity benchmarks).
PROTOCOL_MESSAGE_TYPES = {
    "ours": ("ExceptionMessage", "SuspendedMessage", "CommitMessage"),
    "campbell-randell": ("ExceptionMessage", "SuspendedMessage",
                         "CRForwardMessage", "CRResolvedMessage",
                         "CRConfirmMessage"),
    "romanovsky96": ("ExceptionMessage", "SuspendedMessage",
                     "AgreementMessage", "ConfirmMessage"),
}

__all__ = [
    "AgreementMessage",
    "CRConfirmMessage",
    "CampbellRandellCoordinator",
    "ConfirmMessage",
    "CRForwardMessage",
    "CRResolvedMessage",
    "PROTOCOL_MESSAGE_TYPES",
    "Romanovsky96Coordinator",
]
