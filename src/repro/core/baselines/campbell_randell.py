"""Model of the Campbell & Randell (1986) resolution algorithm.

Used as the comparison baseline of Section 5.3.  The paper characterises it
by two costs that dominate its behaviour:

* message complexity ``O(n_max × N³)`` — exception information diffuses by
  *every* participant re-distributing what it has learned, instead of a
  single originator broadcast plus a single Commit;
* the resolution procedure is invoked ``N × (N−1) × (N−2)`` times in total
  (every thread resolves repeatedly as its view of the concurrently raised
  exceptions grows), against exactly once in the new algorithm.

This implementation keeps the rest of the CA-action support identical (it
subclasses the shared coordinator base and reuses the nesting/abortion
machinery), mirroring the paper's methodology: "We modelled the CR algorithm
by updating our algorithm and kept the rest of the CA action support
unchanged."

Protocol shape implemented here:

1. a thread raising ``Ei`` broadcasts ``Exception`` (as in the new
   algorithm) and informs external objects;
2. every thread that learns of an exception it had not seen before
   *re-distributes* it to all other participants
   (:class:`CRForwardMessage`), and — if it was still normal — suspends and
   broadcasts ``Suspended``;
3. every time a thread's set of known exceptions grows beyond one, it
   re-runs the resolution procedure locally (charging ``Treso`` each time);
4. once a thread knows the status of every participant it broadcasts its
   resolved exception (:class:`CRResolvedMessage`) and, after seeing the
   resolved exception of every exceptional participant, starts handling the
   cover of all of them (no ``Commit`` message, no designated resolver).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from .. import effects as fx
from ..exceptions import ExceptionDescriptor
from ..messages import (
    CommitMessage,
    ExceptionMessage,
    ProtocolMessage,
    SuspendedMessage,
)
from ..resolution import ResolutionCoordinator
from ..state import ThreadState


@dataclass(frozen=True)
class CRForwardMessage(ProtocolMessage):
    """Re-distribution of a learned exception to the other participants.

    ``instance`` stamps the action instance, like the new algorithm's
    messages: under overlapping instances of one action name a forward
    delayed past the end of its instance must not enter a later
    instance's exception census.
    """

    action: str
    forwarder: str
    origin: str
    exception: ExceptionDescriptor
    instance: str = ""


@dataclass(frozen=True)
class CRResolvedMessage(ProtocolMessage):
    """A participant announces the resolving exception it computed."""

    action: str
    thread: str
    exception: ExceptionDescriptor
    instance: str = ""


@dataclass(frozen=True)
class CRConfirmMessage(ProtocolMessage):
    """Final agreement round: a participant confirms the common resolution.

    The CR scheme has no designated resolver, so before any thread may start
    its handler the group must agree that everybody computed the same root
    of the exception tree; this confirmation exchange is the extra round
    that makes the scheme's critical path one message hop longer than the
    new algorithm's single ``Commit``.
    """

    action: str
    thread: str
    exception: ExceptionDescriptor
    instance: str = ""


class CampbellRandellCoordinator(ResolutionCoordinator):
    """Baseline coordinator following the Campbell–Randell scheme."""

    def __init__(self, thread_id: str) -> None:
        super().__init__(thread_id)
        #: Exceptions already re-distributed, to avoid forwarding loops.
        self._forwarded: Set[tuple] = set()
        #: Resolved announcements received, per action.
        self._announced: Dict[str, Dict[str, ExceptionDescriptor]] = {}
        #: Whether this thread has announced its own resolution, per action.
        self._own_announced: Dict[str, ExceptionDescriptor] = {}
        #: Confirmation round bookkeeping, per action.
        self._confirms: Dict[str, Set[str]] = {}
        self._own_confirmed: Dict[str, ExceptionDescriptor] = {}

    def _clear_action_state(self, action: str) -> None:
        self._announced.pop(action, None)
        self._own_announced.pop(action, None)
        self._confirms.pop(action, None)
        self._own_confirmed.pop(action, None)
        self._forwarded = {key for key in self._forwarded if key[0] != action}

    # ------------------------------------------------------------------
    def receive(self, message: ProtocolMessage) -> List[fx.Effect]:
        if isinstance(message, (CRForwardMessage, CRResolvedMessage,
                                CRConfirmMessage)):
            misdirected = self._guard_round_message(message, kind="CR")
            if misdirected is not None:
                return misdirected
        if isinstance(message, CRForwardMessage):
            return self._receive_forward(message)
        if isinstance(message, CRResolvedMessage):
            return self._receive_resolved(message)
        if isinstance(message, CRConfirmMessage):
            return self._receive_confirm(message)
        if isinstance(message, CommitMessage):
            # The CR scheme has no Commit; tolerate and ignore.
            return [fx.LogEvent(f"{self.thread_id} ignored Commit (CR mode)")]
        return super().receive(message)

    # ------------------------------------------------------------------
    def _receive_exception_or_suspended(self, message) -> List[fx.Effect]:
        known_before = set(self.le.exceptions_for(message.action))
        effects = super()._receive_exception_or_suspended(message)
        effects.extend(self._maybe_forward(message, known_before))
        return effects

    def _maybe_forward(self, message, known_before) -> List[fx.Effect]:
        if not isinstance(message, ExceptionMessage):
            return []
        context = self.active_context()
        if context is None or context.action != message.action:
            return []
        key = (message.action, message.thread, message.exception)
        if key in self._forwarded or message.exception in known_before:
            return []
        self._forwarded.add(key)
        effects: List[fx.Effect] = [
            fx.SendTo(context.others(self.thread_id),
                   CRForwardMessage(message.action, self.thread_id,
                                    message.thread, message.exception,
                                    instance=context.instance)),
        ]
        effects.extend(self._charge_incremental_resolution(message.action))
        return effects

    def _receive_forward(self, message: CRForwardMessage) -> List[fx.Effect]:
        context = self.active_context()
        if context is None or not self.sa.contains(message.action):
            self.retained.append(message)
            return [fx.LogEvent(f"{self.thread_id} retained CR forward")]
        known_before = set(self.le.exceptions_for(message.action))
        self._record(message.action, message.origin, message.exception,
                     instance=getattr(message, "instance", ""))
        effects: List[fx.Effect] = []
        if self.state is ThreadState.NORMAL and context.action == message.action:
            self.state = ThreadState.SUSPENDED
            self._record(message.action, self.thread_id, None,
                         instance=context.instance)
            effects.append(fx.InterruptRole(message.action, message.exception))
            effects.append(fx.SendTo(context.others(self.thread_id),
                                  SuspendedMessage(message.action,
                                                   self.thread_id,
                                                   instance=context.instance)))
        if message.exception not in known_before:
            effects.extend(self._charge_incremental_resolution(message.action))
        effects.extend(self._check_resolution())
        return effects

    def _charge_incremental_resolution(self, action: str) -> List[fx.Effect]:
        """Each new exception beyond the first triggers a local re-resolution."""
        known = self.le.exceptions_for(action)
        if len(known) < 2:
            return []
        context = self.sa.find(action)
        if context is None:
            return []
        self.resolution_calls += 1
        context.resolve(known)
        return [fx.ChargeTime("resolution", 1)]

    # ------------------------------------------------------------------
    def _check_resolution(self) -> List[fx.Effect]:
        """Every thread resolves once it knows everyone's status (no resolver)."""
        context = self.active_context()
        if context is None or self.pending_abort_target is not None:
            return []
        action = context.action
        if action in self.handling or action in self._own_announced:
            return []
        if self.state not in (ThreadState.EXCEPTIONAL, ThreadState.SUSPENDED):
            return []
        reported = self.le.threads_reported(action, context.instance)
        if reported != set(context.participants):
            return []
        raised = self.le.exceptions_for(action, context.instance)
        if not raised:
            return []
        self.resolution_calls += 1
        resolved = context.resolve(raised)
        self._own_announced[action] = resolved
        self._trace(f"CR resolve -> {resolved.name} in {action}")
        effects: List[fx.Effect] = [
            fx.ChargeTime("resolution", 1),
            fx.SendTo(context.others(self.thread_id),
                   CRResolvedMessage(action, self.thread_id, resolved,
                                     instance=context.instance)),
        ]
        effects.extend(self._maybe_handle(action))
        return effects

    def _receive_resolved(self, message: CRResolvedMessage) -> List[fx.Effect]:
        self._announced.setdefault(message.action, {})[message.thread] = \
            message.exception
        return self._maybe_confirm(message.action)

    def _maybe_confirm(self, action: str) -> List[fx.Effect]:
        """Once every announcement is in, run the final agreement round."""
        context = self.sa.find(action)
        if context is None or action in self._own_confirmed:
            return []
        if action not in self._own_announced:
            return []
        announced = dict(self._announced.get(action, {}))
        announced[self.thread_id] = self._own_announced[action]
        if set(announced) != set(context.participants):
            return []
        # Agreement value: the cover of every announced resolution (they
        # normally coincide; the cover makes disagreement safe).
        final = context.resolve(set(announced.values()))
        self._own_confirmed[action] = final
        self._confirms.setdefault(action, set()).add(self.thread_id)
        self._trace(f"CR confirm {final.name} in {action}")
        effects: List[fx.Effect] = [
            fx.SendTo(context.others(self.thread_id),
                   CRConfirmMessage(action, self.thread_id, final,
                                    instance=context.instance)),
        ]
        effects.extend(self._maybe_handle(action))
        return effects

    def _receive_confirm(self, message: CRConfirmMessage) -> List[fx.Effect]:
        self._confirms.setdefault(message.action, set()).add(message.thread)
        return self._maybe_handle(message.action)

    def _maybe_handle(self, action: str) -> List[fx.Effect]:
        context = self.sa.find(action)
        if context is None or action in self.handling:
            return []
        if action not in self._own_confirmed:
            return []
        if self._confirms.get(action, set()) != set(context.participants):
            return []
        final = self._own_confirmed[action]
        self.le.clear()
        self.handling[action] = final
        self._trace(f"CR handle {final.name} in {action}")
        return [fx.HandleResolved(action, final, resolver=self.thread_id)]
