"""Exception vocabulary of the CA-action model.

The paper's model (Section 3.1) distinguishes:

* **internal exceptions** ``e = {e1, e2, ...}`` — declared with the CA
  action, raised and handled inside it;
* **interface (signalled) exceptions** ``ε = {ε1, ε2, ...}`` — declared in
  the action's interface and signalled to the enclosing action when internal
  handling is not fully successful;
* two **special interface exceptions**: the *undo* exception ``µ`` (the
  action aborted and all its effects were undone) and the *failure*
  exception ``ƒ`` (the action aborted but its effects may not have been
  undone completely);
* the **universal exception** at the root of every exception graph; raising
  it "usually leads to the signalling of an undo or failure exception to the
  enclosing action";
* an **abortion exception** raised inside a nested action when its
  enclosing action needs to abort it.

Exceptions are modelled as *descriptors* (named, hashable values used in
declarations, graphs and protocol messages) rather than Python exception
classes, because they travel across simulated nodes in messages;
:class:`RaisedException` wraps a descriptor when one needs to be thrown
through Python control flow inside a role body.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional


class ExceptionKind(Enum):
    """Classification of exception descriptors."""

    INTERNAL = "internal"        # member of the action's set e
    INTERFACE = "interface"      # member of the action's set ε
    UNIVERSAL = "universal"      # root of an exception graph
    UNDO = "undo"                # the special exception µ
    FAILURE = "failure"          # the special exception ƒ
    ABORTION = "abortion"        # raised to abort a nested action
    NONE = "none"                # the φ placeholder ("signals nothing")


@dataclass(frozen=True)
class ExceptionDescriptor:
    """A named exception in the CA-action model.

    Descriptors compare and hash by ``name`` and ``kind`` only, so the same
    logical exception created independently on two nodes is equal — exactly
    what the distributed protocols need.
    """

    name: str
    kind: ExceptionKind = ExceptionKind.INTERNAL
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("exception name must be non-empty")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExceptionDescriptor):
            return NotImplemented
        return self.name == other.name and self.kind == other.kind

    def __hash__(self) -> int:
        return hash((self.name, self.kind))

    @property
    def is_special(self) -> bool:
        """True for µ, ƒ, the universal exception and the φ placeholder."""
        return self.kind in (ExceptionKind.UNDO, ExceptionKind.FAILURE,
                             ExceptionKind.UNIVERSAL, ExceptionKind.NONE)

    def __repr__(self) -> str:
        return f"Exception({self.name!r}, {self.kind.value})"

    def __str__(self) -> str:
        return self.name


def internal(name: str, description: str = "") -> ExceptionDescriptor:
    """Create an internal exception descriptor."""
    return ExceptionDescriptor(name, ExceptionKind.INTERNAL, description)


def interface(name: str, description: str = "") -> ExceptionDescriptor:
    """Create an interface (signalled) exception descriptor."""
    return ExceptionDescriptor(name, ExceptionKind.INTERFACE, description)


#: The undo exception µ: the action aborted and all effects were undone.
UNDO = ExceptionDescriptor("mu", ExceptionKind.UNDO,
                           "action aborted, all effects undone")

#: The failure exception ƒ: the action aborted, undo may be incomplete.
FAILURE = ExceptionDescriptor("failure", ExceptionKind.FAILURE,
                              "action aborted, effects possibly not undone")

#: The universal exception at the root of every exception graph.
UNIVERSAL = ExceptionDescriptor("universal", ExceptionKind.UNIVERSAL,
                                "covers every exception of the action")

#: The abortion exception, raised within a nested action to abort it.
ABORTION = ExceptionDescriptor("abortion", ExceptionKind.ABORTION,
                               "enclosing action aborts this nested action")

#: The φ placeholder recorded when a role has nothing to signal.
NO_EXCEPTION = ExceptionDescriptor("phi", ExceptionKind.NONE,
                                   "role signals no exception")


class RaisedException(Exception):
    """Python-level carrier used to raise a descriptor inside a role body.

    Role code raises ``RaisedException(descriptor)`` (or calls the runtime's
    ``raise_exception``); the runtime catches it and feeds the descriptor
    into the coordination protocol.
    """

    def __init__(self, descriptor: ExceptionDescriptor,
                 detail: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(descriptor.name)
        self.descriptor = descriptor
        self.detail = dict(detail or {})

    def __repr__(self) -> str:
        return f"RaisedException({self.descriptor!r})"


class ActionAborted(Exception):
    """Raised inside a role when its enclosing action aborts the nested one."""

    def __init__(self, action_name: str,
                 cause: Optional[ExceptionDescriptor] = None) -> None:
        super().__init__(action_name)
        self.action_name = action_name
        self.cause = cause


class ActionFailure(Exception):
    """Raised to the caller when an outermost action signals ƒ (or µ)."""

    def __init__(self, action_name: str, signalled: ExceptionDescriptor) -> None:
        super().__init__(f"{action_name} signalled {signalled.name}")
        self.action_name = action_name
        self.signalled = signalled


@dataclass(frozen=True)
class RaisedRecord:
    """An entry of the local exception list ``LEi``.

    Records either an exception raised by ``thread`` within ``action`` or
    (when ``exception`` is None) the fact that ``thread`` has suspended its
    normal computation.  ``instance`` carries the key of the particular
    action *instance* the record belongs to (empty when the recording
    coordinator predates instance tracking), so that the resolution guard
    of a thread serving many overlapping instances of one action name can
    count only the reports of the instance it is actually in.
    """

    action: str
    thread: str
    exception: Optional[ExceptionDescriptor] = None
    instance: str = ""

    @property
    def is_suspension(self) -> bool:
        """True when this entry records a suspended thread, not an exception."""
        return self.exception is None

    def __repr__(self) -> str:
        what = "S" if self.is_suspension else self.exception.name
        return f"<LE {self.action}:{self.thread}={what}>"
