"""Effects emitted by the coordination state machines.

The resolution and signalling algorithms are implemented as *pure* state
machines: they never touch the network or the clock themselves.  Every call
into a coordinator returns a list of :class:`Effect` objects describing what
the surrounding runtime must now do — send messages, abort nested actions,
invoke a handler, inform external objects.  This keeps the algorithms
unit-testable without a simulator and lets the same implementation run on
any transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .exceptions import ExceptionDescriptor
from .messages import ProtocolMessage


@dataclass(frozen=True)
class Effect:
    """Base class for all effects (marker type)."""


@dataclass(frozen=True)
class SendTo(Effect):
    """Send ``message`` to every thread named in ``recipients``."""

    recipients: Tuple[str, ...]
    message: ProtocolMessage

    def __post_init__(self) -> None:
        object.__setattr__(self, "recipients", tuple(self.recipients))


@dataclass(frozen=True)
class InformObjects(Effect):
    """Inform the external objects used within ``action`` of ``exception``."""

    action: str
    exception: ExceptionDescriptor


@dataclass(frozen=True)
class AbortNested(Effect):
    """Abort the nested actions in ``actions`` (innermost first).

    After the abortion handlers have run, the runtime must call
    ``coordinator.abortion_completed(resume_action, raised)`` where
    ``raised`` is the exception signalled by the abortion handler of the
    outermost aborted action, or ``None``.
    """

    actions: Tuple[str, ...]
    resume_action: str
    cause: Optional[ExceptionDescriptor] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "actions", tuple(self.actions))


@dataclass(frozen=True)
class HandleResolved(Effect):
    """Invoke this thread's handler for the resolving exception."""

    action: str
    exception: ExceptionDescriptor
    resolver: str


@dataclass(frozen=True)
class InterruptRole(Effect):
    """Interrupt the role's normal computation (ATC analogue).

    Emitted when a thread moves from state N to S or X because of an
    exception raised elsewhere — the runtime must stop the role's primary
    attempt at the next interruption point.
    """

    action: str
    reason: ExceptionDescriptor


@dataclass(frozen=True)
class ChargeTime(Effect):
    """Ask the runtime to let virtual time pass before the next effect.

    ``kind`` names a configured duration (``"resolution"`` maps to the
    experiment parameter ``Treso``); ``count`` multiplies it.  The pure
    state machines cannot know the configured durations, so they emit this
    effect and the runtime converts it into a timeout.
    """

    kind: str
    count: int = 1


@dataclass(frozen=True)
class LogEvent(Effect):
    """Diagnostic trace entry (never affects behaviour)."""

    text: str


def sends(effects: Sequence[Effect]) -> List[SendTo]:
    """Filter helper: the SendTo effects in ``effects`` (used by tests)."""
    return [effect for effect in effects if isinstance(effect, SendTo)]


def count_messages(effects: Sequence[Effect]) -> int:
    """Total number of point-to-point messages implied by ``effects``."""
    return sum(len(effect.recipients) for effect in sends(effects))
