"""Effects emitted by the coordination state machines.

The resolution and signalling algorithms are implemented as *pure* state
machines: they never touch the network or the clock themselves.  Every call
into a coordinator returns a list of :class:`Effect` objects describing what
the surrounding runtime must now do — send messages, abort nested actions,
invoke a handler, inform external objects.  This keeps the algorithms
unit-testable without a simulator and lets the same implementation run on
any transport.
"""

from __future__ import annotations

import inspect
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Type

from .exceptions import ExceptionDescriptor
from .messages import ProtocolMessage


@dataclass(frozen=True, slots=True)
class Effect:
    """Base class for all effects (marker type)."""


@dataclass(frozen=True, slots=True)
class SendTo(Effect):
    """Send ``message`` to every thread named in ``recipients``."""

    recipients: Tuple[str, ...]
    message: ProtocolMessage

    def __post_init__(self) -> None:
        object.__setattr__(self, "recipients", tuple(self.recipients))


@dataclass(frozen=True, slots=True)
class InformObjects(Effect):
    """Inform the external objects used within ``action`` of ``exception``."""

    action: str
    exception: ExceptionDescriptor


@dataclass(frozen=True, slots=True)
class AbortNested(Effect):
    """Abort the nested actions in ``actions`` (innermost first).

    After the abortion handlers have run, the runtime must call
    ``coordinator.abortion_completed(resume_action, raised)`` where
    ``raised`` is the exception signalled by the abortion handler of the
    outermost aborted action, or ``None``.
    """

    actions: Tuple[str, ...]
    resume_action: str
    cause: Optional[ExceptionDescriptor] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "actions", tuple(self.actions))


@dataclass(frozen=True, slots=True)
class HandleResolved(Effect):
    """Invoke this thread's handler for the resolving exception."""

    action: str
    exception: ExceptionDescriptor
    resolver: str


@dataclass(frozen=True, slots=True)
class InterruptRole(Effect):
    """Interrupt the role's normal computation (ATC analogue).

    Emitted when a thread moves from state N to S or X because of an
    exception raised elsewhere — the runtime must stop the role's primary
    attempt at the next interruption point.
    """

    action: str
    reason: ExceptionDescriptor


@dataclass(frozen=True, slots=True)
class ChargeTime(Effect):
    """Ask the runtime to let virtual time pass before the next effect.

    ``kind`` names a configured duration (``"resolution"`` maps to the
    experiment parameter ``Treso``); ``count`` multiplies it.  The pure
    state machines cannot know the configured durations, so they emit this
    effect and the runtime converts it into a timeout.
    """

    kind: str
    count: int = 1


@dataclass(frozen=True, slots=True)
class LogEvent(Effect):
    """Diagnostic trace entry (never affects behaviour)."""

    text: str


_CAMEL_BOUNDARY = re.compile(r"(?<!^)(?=[A-Z])")


def handler_name(effect_type: Type[Effect]) -> str:
    """The interpreter method name handling ``effect_type``.

    ``SendTo`` dispatches to ``on_send_to``, ``ChargeTime`` to
    ``on_charge_time`` and so on.
    """
    return "on_" + _CAMEL_BOUNDARY.sub("_", effect_type.__name__).lower()


class EffectInterpreter:
    """Interface between the pure coordinators and a concrete runtime.

    The coordination state machines only *describe* what must happen, as
    lists of :class:`Effect` objects.  An interpreter turns those
    descriptions into actions on a particular substrate (the simulated
    partition runtime, a test probe, a future real transport).

    Subclasses implement one ``on_<effect>`` method per effect type they
    support (see :func:`handler_name` for the naming rule).  A handler may
    be a plain method or a generator; generators are delegated to, so a
    handler can wait on simulation events (this is how :class:`ChargeTime`
    becomes a timeout).  Effects without a matching handler are routed to
    :meth:`on_unknown`.

    Some effects must not take hold until the whole batch has been
    interpreted — interrupting the running thread mid-batch would race the
    remaining effects.  Handlers can defer such work onto :attr:`batch`;
    :meth:`begin_batch`/:meth:`finish_batch` bracket every :meth:`execute`
    call, and a batch abandoned by an exception is discarded unfinished.

    Each ``execute`` call owns its batch: several ``execute`` generators may
    be suspended concurrently (e.g. a thread and its dispatcher both waiting
    on a :class:`ChargeTime` timeout) and recursive calls nest freely.
    :attr:`batch` is therefore only valid during the *synchronous* part of
    a handler — a generator handler must not touch it after its first
    ``yield``.
    """

    def __init__(self) -> None:
        self._handlers: Dict[Type[Effect], Any] = {}
        self._active_batch: Any = None

    # -- batch hooks ----------------------------------------------------
    def begin_batch(self) -> Any:
        """Create the per-batch deferred-work state (``None`` by default)."""
        return None

    def finish_batch(self, batch: Any) -> None:
        """Apply deferred work once a batch completed normally."""

    @property
    def batch(self) -> Any:
        """The batch of the handler currently being dispatched."""
        return self._active_batch

    # -- dispatch -------------------------------------------------------
    def execute(self, effects: Sequence[Effect]) -> Iterator[Any]:
        """Interpret ``effects`` in order (generator; may yield events)."""
        batch = self.begin_batch()
        for effect in effects:
            handler = self._handler_for(type(effect))
            if handler is None:
                self.on_unknown(effect)
                continue
            # Re-point the active batch before every dispatch: another
            # execute() generator (or a recursive one) may have run while
            # this generator was suspended at a handler's yield.
            self._active_batch = batch
            result = handler(effect)
            if inspect.isgenerator(result):
                yield from result
        self.finish_batch(batch)

    def on_unknown(self, effect: Effect) -> None:
        """Called for effects without an ``on_<effect>`` handler."""
        raise NotImplementedError(
            f"{type(self).__name__} does not handle {type(effect).__name__}")

    def _handler_for(self, effect_type: Type[Effect]):
        try:
            return self._handlers[effect_type]
        except KeyError:
            handler = getattr(self, handler_name(effect_type), None)
            self._handlers[effect_type] = handler
            return handler


def sends(effects: Sequence[Effect]) -> List[SendTo]:
    """Filter helper: the SendTo effects in ``effects`` (used by tests)."""
    return [effect for effect in effects if isinstance(effect, SendTo)]


def count_messages(effects: Sequence[Effect]) -> int:
    """Total number of point-to-point messages implied by ``effects``."""
    return sum(len(effect.recipients) for effect in sends(effects))
