"""Per-thread protocol state: thread states, the list LEi and the stack SAi.

Section 3.3.1: "each thread Ti keeps the following data structures: list
LEi — records exceptions that have been raised or suspended states of
threads that have halted normal computation; stack SAi — stores the
exception context and the exception graph corresponding to each of nested
CA actions", and each thread is in one of the states N (normal), X
(exceptional) or S (suspended).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .exception_graph import CompiledGraphIndex, ExceptionGraph
from .exceptions import ExceptionDescriptor, RaisedRecord


class ThreadState(Enum):
    """The three states a participating thread can be in."""

    NORMAL = "N"
    EXCEPTIONAL = "X"
    SUSPENDED = "S"


_DIGIT_RUNS = re.compile(r"(\d+)")

#: Memo for :func:`thread_order_key`: the key is a pure function of the
#: identifier and the protocols compute it on every election/ordering, so
#: one regex split per distinct identifier is enough.  Cleared when it
#: grows past a bound so pathological workloads cannot leak memory.
_ORDER_KEY_CACHE: Dict[str, Tuple[Tuple[Union[str, int], ...], str]] = {}
_ORDER_KEY_CACHE_LIMIT = 16384


def thread_order_key(thread_id: str) -> Tuple[Tuple[Union[str, int], ...], str]:
    """Natural-order sort key for thread identifiers.

    The paper elects "the thread with the largest identifier among the
    exceptional threads" as the resolver; with numbered identifiers that
    ordering is numeric, so ``T64`` must outrank ``T9`` (lexicographically
    ``"T9" > "T64"``).  Digit runs compare as integers, everything else as
    text, and the resulting keys alternate text/number chunks so comparisons
    between any two identifiers are well defined.  The raw identifier is
    appended as a final tie-break so distinct ids that naturalise equally
    (``"T9"`` vs ``"T09"``) still have a total order — without it, election
    among such ids would depend on set-iteration order and nodes could
    disagree.  Every place the protocols order thread ids — resolver
    election, participant ordering, designated committer — must use this
    one key so all nodes agree.
    """
    key = _ORDER_KEY_CACHE.get(thread_id)
    if key is None:
        if len(_ORDER_KEY_CACHE) >= _ORDER_KEY_CACHE_LIMIT:
            _ORDER_KEY_CACHE.clear()
        chunks = tuple(int(chunk) if chunk.isdigit() else chunk
                       for chunk in _DIGIT_RUNS.split(thread_id))
        key = _ORDER_KEY_CACHE[thread_id] = (chunks, thread_id)
    return key


def max_thread(thread_ids: Iterable[str]) -> str:
    """The largest thread identifier under the shared natural ordering."""
    return max(thread_ids, key=thread_order_key)


def min_thread(thread_ids: Iterable[str]) -> str:
    """The smallest thread identifier under the shared natural ordering."""
    return min(thread_ids, key=thread_order_key)


@dataclass(slots=True)
class ActionContext:
    """One element of the stack SAi: the exception context of one action.

    Holds everything a thread needs to participate in coordination for that
    action: its name, the ordered participant list ``GA``, the exception
    graph, and the nesting parent's name (None for the outermost action).
    """

    action: str
    participants: Tuple[str, ...]
    graph: ExceptionGraph
    parent: Optional[str] = None
    #: Key of the particular action *instance* (empty in contexts built by
    #: instance-agnostic callers).  Cooperating threads compute identical
    #: keys for the same joint attempt, so protocol messages stamped with
    #: it can be told apart from messages of earlier/later instances of
    #: the same action name.
    instance: str = ""
    #: Single-entry memo for :meth:`others`: a context is overwhelmingly
    #: queried by the one thread that owns it.  compare=False keeps
    #: context equality independent of query history.
    _others_me: Optional[str] = field(default=None, init=False, repr=False,
                                      compare=False)
    _others_value: Tuple[str, ...] = field(default=(), init=False,
                                           repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.participants:
            raise ValueError(f"action {self.action!r} has no participants")
        ordered = tuple(sorted(self.participants, key=thread_order_key))
        object.__setattr__(self, "participants", ordered)

    def others(self, me: str) -> Tuple[str, ...]:
        """All participants except ``me``."""
        if me == self._others_me:
            return self._others_value
        value = tuple(p for p in self.participants if p != me)
        self._others_me = me
        self._others_value = value
        return value

    @property
    def compiled_graph(self) -> CompiledGraphIndex:
        """The action's compiled exception-graph index.

        Every participant of an action holds an :class:`ActionContext` over
        the *same* :class:`ExceptionGraph` object (the one registered with
        the action definition), so the lazily built index is computed once
        and shared by all of them; graph mutations invalidate it.
        """
        return self.graph.compiled()

    def resolve(self, raised) -> ExceptionDescriptor:
        """Resolve ``raised`` through the action's (compiled) graph."""
        return self.graph.resolve(raised)

    def __repr__(self) -> str:
        return f"<ActionContext {self.action} G={list(self.participants)}>"


class ContextStack:
    """The stack SAi of nested action contexts for one thread."""

    def __init__(self) -> None:
        self._stack: List[ActionContext] = []

    def push(self, context: ActionContext) -> None:
        """Enter an action: push its context."""
        self._stack.append(context)

    def pop(self) -> ActionContext:
        """Leave the innermost action: pop its context."""
        if not self._stack:
            raise IndexError("context stack is empty")
        return self._stack.pop()

    def top(self) -> Optional[ActionContext]:
        """The context of the currently active (innermost) action, if any."""
        return self._stack[-1] if self._stack else None

    def find(self, action: str) -> Optional[ActionContext]:
        """Find the context for ``action`` anywhere in the stack."""
        for context in self._stack:
            if context.action == action:
                return context
        return None

    def contains(self, action: str) -> bool:
        """True if ``action`` is somewhere on the stack."""
        return self.find(action) is not None

    def actions_between_top_and(self, action: str) -> List[str]:
        """Names of the nested actions strictly inside ``action``, innermost first.

        These are the actions that must be aborted when an exception arrives
        from the containing action ``action``.
        """
        if not self.contains(action):
            raise KeyError(f"action {action!r} not on the stack")
        inner: List[str] = []
        for context in reversed(self._stack):
            if context.action == action:
                return inner
            inner.append(context.action)
        return inner  # pragma: no cover - unreachable, contains() checked

    def pop_until(self, action: str) -> List[ActionContext]:
        """Pop contexts until ``action`` is on top; returns the popped ones."""
        popped: List[ActionContext] = []
        while self._stack and self._stack[-1].action != action:
            popped.append(self._stack.pop())
        if not self._stack:
            raise KeyError(f"action {action!r} was not on the stack")
        return popped

    def depth(self) -> int:
        """Number of nested contexts currently entered."""
        return len(self._stack)

    def as_names(self) -> List[str]:
        """Action names from outermost to innermost."""
        return [context.action for context in self._stack]

    def __len__(self) -> int:
        return len(self._stack)

    def __repr__(self) -> str:
        return f"<ContextStack {self.as_names()}>"


class LocalExceptionList:
    """The list LEi of exceptions raised / suspensions observed.

    Only entries for the currently relevant action are kept (the algorithm
    removes other entries when an abortion switches the active context).
    """

    def __init__(self) -> None:
        self._records: List[RaisedRecord] = []

    def add(self, record: RaisedRecord) -> None:
        """Append a record, replacing any previous record for the same thread.

        A thread that first suspended and later raised an abortion exception
        (or vice versa) must be represented by its most recent status,
        otherwise the resolver could double-count it.
        """
        self._records = [r for r in self._records
                         if not (r.action == record.action
                                 and r.thread == record.thread)]
        self._records.append(record)

    def remove_other_actions(self, action: str) -> None:
        """Drop every record that does not belong to ``action``."""
        self._records = [r for r in self._records if r.action == action]

    def keep_only(self, record: RaisedRecord) -> None:
        """Algorithm step: "remove all elements except <A*, Tj, Ej> in LEi"."""
        self._records = [record]

    def clear(self) -> None:
        """Empty the list (after a Commit or when handling completes)."""
        self._records = []

    def records_for(self, action: str,
                    instance: Optional[str] = None) -> List[RaisedRecord]:
        """All records belonging to ``action``.

        When ``instance`` is given (and non-empty), records stamped for a
        *different* instance of the same action name are excluded;
        unstamped records match any instance, which keeps the filter
        backward compatible with coordinators that never stamp.
        """
        return [r for r in self._records
                if r.action == action
                and (not instance or not r.instance or r.instance == instance)]

    def threads_reported(self, action: str,
                         instance: Optional[str] = None) -> Set[str]:
        """Threads of ``action`` for which a record (exception or S) exists."""
        return {r.thread for r in self.records_for(action, instance)}

    def exceptions_for(self, action: str,
                       instance: Optional[str] = None
                       ) -> List[ExceptionDescriptor]:
        """The exceptions (not suspensions) recorded for ``action``."""
        return [r.exception for r in self.records_for(action, instance)
                if r.exception is not None]

    def exceptional_threads(self, action: str,
                            instance: Optional[str] = None) -> Set[str]:
        """Threads that raised an exception (state X) in ``action``."""
        return {r.thread for r in self.records_for(action, instance)
                if r.exception is not None}

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def __repr__(self) -> str:
        return f"<LE {self._records}>"
