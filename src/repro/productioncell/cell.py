"""The assembled production-cell case study: plant + controller + runtime.

:class:`ProductionCell` wires everything together: it creates the simulated
distributed system with the six controller threads of Figure 6, registers
the nested CA-action definitions built by
:class:`~repro.productioncell.controller.ProductionCellController`, and runs
a configurable number of production cycles while the
:class:`~repro.productioncell.failures.FailureInjector` injects device
faults.  The resulting statistics (blanks forged, cycles skipped, exceptions
resolved and signalled) are what the case-study benchmark and the example
script report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..net.latency import ConstantLatency, LatencyModel
from ..runtime.config import RuntimeConfig
from ..runtime.report import ActionReport, ActionStatus
from ..runtime.system import DistributedCASystem
from .controller import OPERATION_TIME, ProductionCellController, THREADS
from .devices import Blank, Plant
from .failures import FailureInjector


@dataclass
class CellStatistics:
    """Aggregate results of a production run."""

    cycles_attempted: int = 0
    cycles_succeeded: int = 0
    cycles_recovered: int = 0
    cycles_skipped: int = 0
    cycles_failed: int = 0
    blanks_forged: int = 0
    exceptions_raised: int = 0
    resolutions: int = 0
    abortions: int = 0
    signalled: Dict[str, int] = field(default_factory=dict)
    handled_log: List[str] = field(default_factory=list)
    total_time: float = 0.0

    @property
    def completed_cycles(self) -> int:
        return self.cycles_succeeded + self.cycles_recovered


class ProductionCell:
    """Facade assembling plant, controller and the CA-action runtime.

    Parameters
    ----------
    injector:
        Optional pre-configured failure schedule.
    message_latency:
        Network latency between the controller nodes.
    algorithm:
        Resolution algorithm to use (all three are supported, so the case
        study doubles as an integration test for the baselines).
    resolution_time / abort_time:
        The ``Treso`` / ``Tabo`` charges of the runtime.
    """

    def __init__(self, injector: Optional[FailureInjector] = None,
                 message_latency: float = 0.01,
                 algorithm: str = "ours",
                 resolution_time: float = 0.05,
                 abort_time: float = 0.05,
                 latency_model: Optional[LatencyModel] = None) -> None:
        self.injector = injector or FailureInjector()
        self.plant = Plant(self.injector)
        self.controller = ProductionCellController(self.plant)
        config = RuntimeConfig(algorithm=algorithm,
                               resolution_time=resolution_time,
                               abort_time=abort_time)
        self.system = DistributedCASystem(
            config,
            latency=latency_model or ConstantLatency(message_latency))
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        self.system.add_threads(THREADS)
        self.system.create_object("cell_state",
                                  {"last_cycle": "none", "forged": 0})
        for definition in self.controller.all_actions():
            self.system.define_action(definition)

        self.system.bind("Table_Press_Robot", {
            "table": "Table", "table_sensor": "TableSensor",
            "robot": "Robot", "robot_sensor": "RobotSensor",
            "press": "Press", "press_sensor": "PressSensor",
        })
        self.system.bind("Unload_Table", {
            "table": "Table", "table_sensor": "TableSensor",
            "robot": "Robot", "robot_sensor": "RobotSensor",
        })
        self.system.bind("Move_Loaded_Table", {
            "table": "Table", "table_sensor": "TableSensor",
        })
        self.system.bind("Press_Plate", {
            "robot": "Robot", "robot_sensor": "RobotSensor",
            "press": "Press", "press_sensor": "PressSensor",
        })

    # ------------------------------------------------------------------
    def run(self, cycles: int = 3,
            arrival_times: Optional[Sequence[float]] = None
            ) -> CellStatistics:
        """Run ``cycles`` production cycles and return aggregate statistics.

        ``arrival_times`` optionally drives the cell open-loop: blank
        ``i`` (1-based cycle ``i``) is not inserted before virtual time
        ``arrival_times[i-1]``, so a workload generator can feed the cell
        from a seeded arrival process instead of back-to-back cycles.
        Omitted (the default), behaviour is the classic closed loop: each
        cycle starts as soon as the previous one finished.
        """
        if cycles < 1:
            raise ValueError("need at least one production cycle")
        if arrival_times is not None and len(arrival_times) < cycles:
            raise ValueError(f"need {cycles} arrival times, "
                             f"got {len(arrival_times)}")
        plant, injector = self.plant, self.injector
        role_of_thread = {
            "Table": "table", "TableSensor": "table_sensor",
            "Robot": "robot", "RobotSensor": "robot_sensor",
            "Press": "press", "PressSensor": "press_sensor",
        }

        def make_program(thread: str):
            role = role_of_thread[thread]
            is_feeder = thread == "Table"

            def program(ctx):
                reports: List[ActionReport] = []
                for cycle in range(1, cycles + 1):
                    if is_feeder:
                        if arrival_times is not None:
                            target = arrival_times[cycle - 1]
                            if target > ctx.now:
                                yield ctx.delay(target - ctx.now)
                        # The environment inserts a blank and the feed belt
                        # conveys it to the table before the joint action.
                        injector.begin_cycle(cycle)
                        blank = Blank()
                        plant.feed_belt.insert_blank(blank)
                        yield ctx.delay(OPERATION_TIME)
                        conveyed = plant.feed_belt.convey_to_table()
                        if conveyed is not None:
                            plant.table.load(conveyed)
                    report = yield from ctx.perform_action(
                        "Table_Press_Robot", role)
                    reports.append(report)
                    if is_feeder:
                        plant.deposit_belt.convey_to_environment()
                return reports
            return program

        for thread in THREADS:
            self.system.spawn(thread, make_program(thread))
        results = self.system.run_to_completion()
        return self._collect_statistics(cycles, results)

    # ------------------------------------------------------------------
    def _collect_statistics(self, cycles: int, results: List) -> CellStatistics:
        stats = CellStatistics(cycles_attempted=cycles)
        table_reports = results[THREADS.index("Table")]
        for report in table_reports:
            if report.status is ActionStatus.SUCCESS:
                stats.cycles_succeeded += 1
            elif report.status is ActionStatus.RECOVERED:
                stats.cycles_recovered += 1
            elif report.status in (ActionStatus.UNDONE, ActionStatus.SIGNALLED):
                stats.cycles_skipped += 1
            else:
                stats.cycles_failed += 1
        stats.blanks_forged = self.plant.forged_count
        metrics = self.system.metrics
        stats.exceptions_raised = metrics.exceptions_raised
        stats.resolutions = metrics.resolutions
        stats.abortions = metrics.abortions
        stats.signalled = dict(metrics.signalled)
        stats.handled_log = list(self.controller.log.handled)
        stats.total_time = self.system.now
        return stats

    def __repr__(self) -> str:
        return (f"<ProductionCell algorithm={self.system.config.algorithm} "
                f"faults={len(self.injector.pending_for_cycle(1))}>")
