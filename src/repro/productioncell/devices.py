"""The production-cell plant: devices, sensors and actuators.

The cell (Figure 5 of the paper) consists of six devices: a feed belt, an
elevating rotary table, a two-armed rotary robot, a press, a deposit belt,
and two traffic lights guarding insertion and deposit.  The task of the cell
is to take a metal blank from the environment via the feed belt, forge it in
the press, and return it via the deposit belt.

The devices below are the *physical* plant: they hold positional state and
expose actuator operations the control program calls, plus sensors the
control program reads.  Faults are injected through the
:class:`~repro.productioncell.failures.FailureInjector`; an injected fault
makes the corresponding operation report failure (return ``False`` or leave
the sensor stuck), and the control program is responsible for detecting it
and raising the appropriate CA-action exception — exactly the division of
labour between plant and controller in the original case study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from .failures import FailureInjector


class Blank:
    """A metal blank travelling through the cell."""

    _counter = 0

    def __init__(self) -> None:
        Blank._counter += 1
        self.blank_id = Blank._counter
        self.forged = False
        self.location = "environment"

    def __repr__(self) -> str:
        state = "forged" if self.forged else "blank"
        return f"<Blank #{self.blank_id} {state} at {self.location}>"


class TrafficLight:
    """Traffic light guarding insertion to the feed belt or final deposit."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.green = True

    def set_green(self, green: bool) -> None:
        self.green = green

    def __repr__(self) -> str:
        return f"<TrafficLight {self.name} {'green' if self.green else 'red'}>"


class Device:
    """Common base for plant devices: name, injector, operation log."""

    def __init__(self, name: str, injector: FailureInjector) -> None:
        self.name = name
        self.injector = injector
        self.operations: List[str] = []

    def _log(self, operation: str) -> None:
        self.operations.append(operation)

    def _fails(self, fault: str) -> bool:
        return self.injector.should_fail(fault, self.name)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class FeedBelt(Device):
    """Conveys blanks from the environment to the rotary table."""

    def __init__(self, injector: FailureInjector) -> None:
        super().__init__("feed_belt", injector)
        self.blanks: List[Blank] = []
        self.light = TrafficLight("insertion")

    def insert_blank(self, blank: Blank) -> bool:
        """Environment adds a blank if the insertion light is green."""
        self._log("insert_blank")
        if not self.light.green:
            return False
        blank.location = "feed_belt"
        self.blanks.append(blank)
        return True

    def convey_to_table(self) -> Optional[Blank]:
        """Move the oldest blank to the end of the belt (table side)."""
        self._log("convey_to_table")
        if self._fails("l_plate") or not self.blanks:
            return None
        blank = self.blanks.pop(0)
        blank.location = "table"
        return blank

    @property
    def occupied(self) -> bool:
        return bool(self.blanks)


class RotaryTable(Device):
    """Elevating rotary table with a vertical and a rotation motor."""

    LOW, HIGH = 0, 1
    FEED_ANGLE, ROBOT_ANGLE = 0, 50

    def __init__(self, injector: FailureInjector) -> None:
        super().__init__("table", injector)
        self.height = self.LOW
        self.angle = self.FEED_ANGLE
        self.blank: Optional[Blank] = None
        self.vertical_sensor_ok = True
        self.rotation_sensor_ok = True

    def load(self, blank: Blank) -> None:
        """A blank arrives from the feed belt."""
        self._log("load")
        self.blank = blank
        blank.location = "table"

    def move_up(self) -> bool:
        """Raise the table to the robot's level (vertical motor)."""
        self._log("move_up")
        if self._fails("vm_stop") or self._fails("vm_nmove"):
            return False
        self.height = self.HIGH
        return True

    def rotate_to_robot(self) -> bool:
        """Rotate the table to the robot pick-up angle (rotation motor)."""
        self._log("rotate_to_robot")
        if self._fails("rm_stop") or self._fails("rm_nmove"):
            return False
        self.angle = self.ROBOT_ANGLE
        return True

    def move_down(self) -> bool:
        """Lower the table back to the feed-belt level."""
        self._log("move_down")
        if self._fails("vm_stop"):
            return False
        self.height = self.LOW
        return True

    def rotate_to_feed(self) -> bool:
        """Rotate the table back to the feed-belt angle."""
        self._log("rotate_to_feed")
        if self._fails("rm_stop"):
            return False
        self.angle = self.FEED_ANGLE
        return True

    def unload(self) -> Optional[Blank]:
        """The robot magnetises and removes the blank."""
        self._log("unload")
        if self._fails("l_plate"):
            self.blank = None
            return None
        blank, self.blank = self.blank, None
        return blank

    def read_position_sensors(self) -> Dict[str, Optional[int]]:
        """Sensor readings; a stuck sensor reads 0 regardless of reality."""
        self._log("read_sensors")
        if self._fails("s_stuck"):
            self.vertical_sensor_ok = False
        vertical = self.height if self.vertical_sensor_ok else 0
        rotation = self.angle if self.rotation_sensor_ok else 0
        return {"height": vertical, "angle": rotation}

    @property
    def at_robot_position(self) -> bool:
        return self.height == self.HIGH and self.angle == self.ROBOT_ANGLE

    @property
    def at_feed_position(self) -> bool:
        return self.height == self.LOW and self.angle == self.FEED_ANGLE


class Robot(Device):
    """Rotary robot with two orthogonal extendible arms with electromagnets."""

    def __init__(self, injector: FailureInjector) -> None:
        super().__init__("robot", injector)
        self.angle = 0
        self.arm1_extended = False
        self.arm2_extended = False
        self.arm1_load: Optional[Blank] = None
        self.arm2_load: Optional[Blank] = None
        self.arm1_sensor_ok = True

    def extend_arm1(self) -> bool:
        self._log("extend_arm1")
        if self._fails("rm_nmove"):
            return False
        self.arm1_extended = True
        return True

    def grab_from_table(self, table: RotaryTable) -> bool:
        """Arm 1 magnetises the blank on the table."""
        self._log("grab_from_table")
        if self._fails("s_stuck"):
            self.arm1_sensor_ok = False
        blank = table.unload()
        if blank is None:
            return False
        blank.location = "robot_arm1"
        self.arm1_load = blank
        return True

    def retract_arm1(self) -> bool:
        self._log("retract_arm1")
        self.arm1_extended = False
        return True

    def rotate_to_press(self) -> bool:
        self._log("rotate_to_press")
        if self._fails("rm_stop"):
            return False
        self.angle = 90
        return True

    def place_in_press(self, press: "Press") -> bool:
        """Arm 1 drops the blank into the press."""
        self._log("place_in_press")
        if self.arm1_load is None or self._fails("l_plate"):
            self.arm1_load = None
            return False
        press.load(self.arm1_load)
        self.arm1_load = None
        return True

    def extend_arm2(self) -> bool:
        self._log("extend_arm2")
        self.arm2_extended = True
        return True

    def grab_from_press(self, press: "Press") -> bool:
        """Arm 2 picks the forged plate out of the press."""
        self._log("grab_from_press")
        plate = press.unload()
        if plate is None:
            return False
        plate.location = "robot_arm2"
        self.arm2_load = plate
        return True

    def retract_arm2(self) -> bool:
        self._log("retract_arm2")
        self.arm2_extended = False
        return True

    def place_on_deposit(self, belt: "DepositBelt") -> bool:
        """Arm 2 puts the forged plate on the deposit belt."""
        self._log("place_on_deposit")
        if self.arm2_load is None or self._fails("l_plate"):
            self.arm2_load = None
            return False
        belt.load(self.arm2_load)
        self.arm2_load = None
        return True


class Press(Device):
    """The forging press."""

    def __init__(self, injector: FailureInjector) -> None:
        super().__init__("press", injector)
        self.plate: Optional[Blank] = None
        self.closed = False

    def load(self, blank: Blank) -> None:
        self._log("load")
        blank.location = "press"
        self.plate = blank

    def forge(self) -> bool:
        """Close the press and forge the plate."""
        self._log("forge")
        if self.plate is None:
            return False
        if self._fails("vm_stop"):
            return False
        self.closed = True
        self.plate.forged = True
        self.closed = False
        return True

    def unload(self) -> Optional[Blank]:
        self._log("unload")
        plate, self.plate = self.plate, None
        return plate

    @property
    def occupied(self) -> bool:
        return self.plate is not None


class DepositBelt(Device):
    """Conveys forged plates back to the environment."""

    def __init__(self, injector: FailureInjector) -> None:
        super().__init__("deposit_belt", injector)
        self.plates: List[Blank] = []
        self.delivered: List[Blank] = []
        self.light = TrafficLight("deposit")

    def load(self, plate: Blank) -> None:
        self._log("load")
        plate.location = "deposit_belt"
        self.plates.append(plate)

    def convey_to_environment(self) -> Optional[Blank]:
        """Forward a plate to the container if the deposit light is green."""
        self._log("convey_to_environment")
        if not self.light.green or not self.plates:
            return None
        plate = self.plates.pop(0)
        plate.location = "environment"
        self.delivered.append(plate)
        return plate


@dataclass
class Plant:
    """The assembled production cell."""

    injector: FailureInjector
    feed_belt: FeedBelt = None
    table: RotaryTable = None
    robot: Robot = None
    press: Press = None
    deposit_belt: DepositBelt = None

    def __post_init__(self) -> None:
        self.feed_belt = self.feed_belt or FeedBelt(self.injector)
        self.table = self.table or RotaryTable(self.injector)
        self.robot = self.robot or Robot(self.injector)
        self.press = self.press or Press(self.injector)
        self.deposit_belt = self.deposit_belt or DepositBelt(self.injector)

    @property
    def forged_count(self) -> int:
        """Number of forged plates delivered back to the environment."""
        return sum(1 for plate in self.deposit_belt.delivered if plate.forged)

    def devices(self) -> List[Device]:
        return [self.feed_belt, self.table, self.robot, self.press,
                self.deposit_belt]
