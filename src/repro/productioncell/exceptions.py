"""Exceptions and exception graphs of the production-cell case study.

Figure 7 of the paper gives the exception graph of the
``Move_Loaded_Table`` action: nine primitive exceptions at level 0, four
resolving exceptions (``dual_motor_failures``, ``table&sensor failures``,
``sensor failure or/and lost plate``, ``two unrelated exceptions``) and the
universal exception on top.  Only pairs of concurrent exceptions are
resolved; three or more concurrent exceptions (and undeclared ones) resolve
to the universal exception.

The interface exceptions of the nested actions follow Section 4:
``Move_Loaded_Table`` may signal ``L_PLATE``, ``NCS_FAIL``, µ or ƒ to
``Unload_Table``; ``Unload_Table`` may signal ``T_SENSOR`` and ``A1_SENSOR``
(plus µ/ƒ) to ``Table_Press_Robot``.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.exception_graph import ExceptionGraph
from ..core.exceptions import ExceptionDescriptor, interface, internal

# ----------------------------------------------------------------------
# Primitive (internal) exceptions of Move_Loaded_Table (Figure 7, level 0)
# ----------------------------------------------------------------------
VM_STOP = internal("vm_stop", "vertical table motor stops unexpectedly")
RM_STOP = internal("rm_stop", "rotation table motor stops unexpectedly")
VM_NMOVE = internal("vm_nmove", "vertical motor can't move")
RM_NMOVE = internal("rm_nmove", "rotation motor can't move")
S_STUCK = internal("s_stuck", "sensor(s) stuck at 0")
L_PLATE_INT = internal("l_plate", "lost plate")
CS_FAULT = internal("cs_fault", "control software fault(s)")
L_MES = internal("l_mes", "lost or corrupted message")
RT_EXC = internal("rt_exc", "run-time exception (underflow/overflow)")

MOVE_LOADED_TABLE_PRIMITIVES: List[ExceptionDescriptor] = [
    VM_STOP, RM_STOP, VM_NMOVE, RM_NMOVE, S_STUCK, L_PLATE_INT,
    CS_FAULT, L_MES, RT_EXC,
]

# ----------------------------------------------------------------------
# Resolving exceptions of Move_Loaded_Table (Figure 7, level 1)
# ----------------------------------------------------------------------
DUAL_MOTOR_FAILURES = internal("dual_motor_failures",
                               "both table motors fail concurrently")
TABLE_AND_SENSOR_FAILURES = internal("table_and_sensor_failures",
                                     "motor and sensor fail concurrently")
SENSOR_OR_LOST_PLATE = internal("sensor_or_lost_plate",
                                "sensor failure and/or lost plate")
TWO_UNRELATED = internal("two_unrelated_exceptions",
                         "two unrelated exceptions raised concurrently")

# ----------------------------------------------------------------------
# Interface exceptions signalled between the nested actions (Section 4)
# ----------------------------------------------------------------------
L_PLATE_SIGNAL = interface("L_PLATE", "lost plate (signalled)")
NCS_FAIL = interface("NCS_FAIL", "non-critical sensor failure (signalled)")
T_SENSOR = interface("T_SENSOR", "non-critical table sensor failure")
A1_SENSOR = interface("A1_SENSOR", "one of arm_1's sensors failed")


def build_move_loaded_table_graph() -> ExceptionGraph:
    """Build the Figure 7 exception graph for the Move_Loaded_Table action."""
    graph = ExceptionGraph("Move_Loaded_Table")
    motor_faults = [VM_STOP, RM_STOP, VM_NMOVE, RM_NMOVE]
    graph.declare_hierarchy(DUAL_MOTOR_FAILURES, motor_faults)
    graph.declare_hierarchy(TABLE_AND_SENSOR_FAILURES, motor_faults + [S_STUCK])
    graph.declare_hierarchy(SENSOR_OR_LOST_PLATE, [S_STUCK, L_PLATE_INT])
    graph.declare_hierarchy(TWO_UNRELATED, [CS_FAULT, L_MES, RT_EXC])
    graph.validate()
    return graph


def build_unload_table_graph() -> ExceptionGraph:
    """Exception graph of the Unload_Table action.

    Its internal exceptions include everything its nested actions may
    signal (``ε_nested ⊆ e_enclosing``): the plain interface exceptions of
    ``Move_Loaded_Table`` plus its own operational faults, structured "in
    the form similar to the graph of Figure 7".
    """
    graph = ExceptionGraph("Unload_Table")
    arm_fault = internal("arm1_fault", "arm_1 positioning fault")
    grab_fault = internal("grab_fault", "magnet failed to grab the plate")
    arm_and_table = internal("arm_and_table_failures",
                             "arm and table faults concurrently")
    graph.declare_hierarchy(arm_and_table,
                            [arm_fault, grab_fault,
                             L_PLATE_SIGNAL, NCS_FAIL])
    graph.add_exception(internal("unload_unrelated",
                                 "unrelated unload-stage exceptions"))
    graph.validate()
    return graph


def build_table_press_robot_graph() -> ExceptionGraph:
    """Exception graph of the outermost Table_Press_Robot action."""
    graph = ExceptionGraph("Table_Press_Robot")
    press_fault = internal("press_fault", "press failed to forge")
    deposit_fault = internal("deposit_fault", "deposit-stage fault")
    cell_degraded = internal("cell_degraded",
                             "multiple device-level failures in one cycle")
    graph.declare_hierarchy(cell_degraded,
                            [T_SENSOR, A1_SENSOR, press_fault, deposit_fault])
    graph.validate()
    return graph


def exception_catalogue() -> Dict[str, ExceptionDescriptor]:
    """All named case-study exceptions, keyed by name (for tests and docs)."""
    catalogue = {}
    for descriptor in MOVE_LOADED_TABLE_PRIMITIVES + [
            DUAL_MOTOR_FAILURES, TABLE_AND_SENSOR_FAILURES,
            SENSOR_OR_LOST_PLATE, TWO_UNRELATED,
            L_PLATE_SIGNAL, NCS_FAIL, T_SENSOR, A1_SENSOR]:
        catalogue[descriptor.name] = descriptor
    return catalogue
