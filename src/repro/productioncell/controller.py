"""The production-cell control program, structured as nested CA actions.

Following Figure 6 of the paper, six execution threads — one per device
controller or sensor reader (``Table``, ``TableSensor``, ``Robot``,
``RobotSensor``, ``Press``, ``PressSensor``) — cooperate inside the
outermost ``Table_Press_Robot`` CA action.  Within it:

* ``Unload_Table`` (table, table sensor, robot, robot sensor) gets the blank
  off the table and onto arm 1; it contains the further-nested
  ``Move_Loaded_Table`` (table, table sensor), whose exception graph is the
  paper's Figure 7;
* ``Press_Plate`` (robot, robot sensor, press, press sensor) forges the
  blank and moves the forged plate to the deposit belt.

Device faults injected by the
:class:`~repro.productioncell.failures.FailureInjector` surface as internal
exceptions of the innermost action in which they are detected; handlers
perform forward recovery (retries, recalibration) where possible and
otherwise signal interface exceptions (``L_PLATE``, ``NCS_FAIL``,
``T_SENSOR``, ``A1_SENSOR``, µ, ƒ) to the enclosing action, exactly as the
case-study section of the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.action import CAActionDefinition, RoleDefinition
from ..core.exceptions import FAILURE, UNDO, internal
from ..core.handlers import HandlerMap, HandlerResult
from .devices import Plant
from .exceptions import (
    A1_SENSOR,
    CS_FAULT,
    DUAL_MOTOR_FAILURES,
    L_PLATE_INT,
    L_PLATE_SIGNAL,
    MOVE_LOADED_TABLE_PRIMITIVES,
    NCS_FAIL,
    RM_NMOVE,
    RM_STOP,
    S_STUCK,
    SENSOR_OR_LOST_PLATE,
    T_SENSOR,
    TABLE_AND_SENSOR_FAILURES,
    TWO_UNRELATED,
    VM_NMOVE,
    VM_STOP,
    build_move_loaded_table_graph,
    build_table_press_robot_graph,
    build_unload_table_graph,
)

#: Thread names of the six device controllers / sensor readers (Figure 6).
THREADS = ("Table", "TableSensor", "Robot", "RobotSensor", "Press",
           "PressSensor")

#: Virtual time taken by one elementary device operation.
OPERATION_TIME = 0.05

# Additional internal exceptions of the enclosing actions.
ARM1_FAULT = internal("arm1_fault", "arm_1 positioning fault")
GRAB_FAULT = internal("grab_fault", "magnet failed to grab the plate")
PRESS_FAULT = internal("press_fault", "press failed to forge")
DEPOSIT_FAULT = internal("deposit_fault", "deposit-stage fault")


@dataclass
class CycleLog:
    """Per-run log kept by the controller (inspected by tests/benchmarks)."""

    handled: List[str] = field(default_factory=list)
    signalled: List[str] = field(default_factory=list)
    skipped_cycles: int = 0
    recovered_cycles: int = 0


class ProductionCellController:
    """Builds the CA-action definitions operating a given plant."""

    def __init__(self, plant: Plant) -> None:
        self.plant = plant
        self.log = CycleLog()

    # ==================================================================
    # Move_Loaded_Table: turn the table and move it up to the robot
    # ==================================================================
    def _move_loaded_table_roles(self) -> List[RoleDefinition]:
        plant, log = self.plant, self.log

        def table_role(ctx):
            yield ctx.delay(OPERATION_TIME)
            if not plant.table.move_up():
                ctx.raise_exception(VM_STOP)
            yield ctx.delay(OPERATION_TIME)
            if not plant.table.rotate_to_robot():
                ctx.raise_exception(RM_STOP)
            return "table-in-position"

        def sensor_role(ctx):
            yield ctx.delay(2 * OPERATION_TIME)
            readings = plant.table.read_position_sensors()
            if readings["height"] == 0 and plant.table.height != 0:
                ctx.raise_exception(S_STUCK)
            return readings

        def retry_motor_handler(ctx):
            """Forward recovery: retry the failed motor operation once."""
            yield ctx.delay(OPERATION_TIME)
            if plant.table.move_up() and plant.table.rotate_to_robot():
                log.handled.append("motor-retry-ok")
                return HandlerResult.success()
            log.handled.append("motor-retry-failed")
            return HandlerResult.signal(NCS_FAIL)

        def dual_motor_handler(ctx):
            """Both motors failed: the table cannot be positioned; undo."""
            log.handled.append("dual-motor-abort")
            return HandlerResult.abort()

        def sensor_handler(ctx):
            """Recalibrate the stuck sensor and carry on."""
            yield ctx.delay(OPERATION_TIME)
            plant.table.vertical_sensor_ok = True
            log.handled.append("sensor-recalibrated")
            return HandlerResult.success()

        def lost_plate_handler(ctx):
            log.handled.append("lost-plate")
            return HandlerResult.signal(L_PLATE_SIGNAL)

        def universal_handler(ctx):
            log.handled.append("universal")
            return HandlerResult.failed("unresolvable fault combination")

        graph = build_move_loaded_table_graph()
        table_handlers = HandlerMap({
            VM_STOP: retry_motor_handler, VM_NMOVE: retry_motor_handler,
            RM_STOP: retry_motor_handler, RM_NMOVE: retry_motor_handler,
            DUAL_MOTOR_FAILURES: dual_motor_handler,
            TABLE_AND_SENSOR_FAILURES: dual_motor_handler,
            S_STUCK: sensor_handler,
            SENSOR_OR_LOST_PLATE: lost_plate_handler,
            L_PLATE_INT: lost_plate_handler,
            TWO_UNRELATED: universal_handler,
        }, default_handler=universal_handler)
        sensor_handlers = HandlerMap({
            S_STUCK: sensor_handler,
            SENSOR_OR_LOST_PLATE: lost_plate_handler,
        }, default_handler=self._acknowledge_handler("MLT-sensor"))

        return [RoleDefinition("table", table_role, table_handlers),
                RoleDefinition("table_sensor", sensor_role, sensor_handlers)]

    def move_loaded_table_action(self) -> CAActionDefinition:
        """The Move_Loaded_Table nested action (Figure 7 graph)."""
        return CAActionDefinition(
            "Move_Loaded_Table",
            self._move_loaded_table_roles(),
            internal_exceptions=list(MOVE_LOADED_TABLE_PRIMITIVES) + [
                DUAL_MOTOR_FAILURES, TABLE_AND_SENSOR_FAILURES,
                SENSOR_OR_LOST_PLATE, TWO_UNRELATED],
            interface_exceptions=[L_PLATE_SIGNAL, NCS_FAIL],
            graph=build_move_loaded_table_graph(),
            parent="Unload_Table")

    # ==================================================================
    # Unload_Table: position the table, grab the blank with arm 1
    # ==================================================================
    def _unload_table_roles(self) -> List[RoleDefinition]:
        plant, log = self.plant, self.log

        def table_role(ctx):
            report = yield from ctx.perform_nested("Move_Loaded_Table", "table")
            ctx.send("robot", "table_ready", report.status.value)
            return "table-ready"

        def table_sensor_role(ctx):
            yield from ctx.perform_nested("Move_Loaded_Table", "table_sensor")
            return "table-sensor-done"

        def robot_role(ctx):
            yield ctx.receive("table_ready")
            yield ctx.delay(OPERATION_TIME)
            if not plant.robot.extend_arm1():
                ctx.raise_exception(ARM1_FAULT)
            yield ctx.delay(OPERATION_TIME)
            if not plant.robot.grab_from_table(plant.table):
                ctx.raise_exception(GRAB_FAULT)
            yield ctx.delay(OPERATION_TIME)
            plant.robot.retract_arm1()
            return "blank-on-arm1"

        def robot_sensor_role(ctx):
            yield ctx.delay(OPERATION_TIME)
            if not plant.robot.arm1_sensor_ok:
                ctx.raise_exception(ARM1_FAULT)
            return "arm1-sensor-ok"

        def lost_plate_handler(ctx):
            """The blank is gone: undo the unload stage for this cycle."""
            log.handled.append("unload-lost-plate")
            return HandlerResult.abort()

        def ncs_handler(ctx):
            """Sensors are degraded but the blank made it: note and continue."""
            log.handled.append("unload-ncs")
            return HandlerResult.signal(T_SENSOR)

        def arm_handler(ctx):
            yield ctx.delay(OPERATION_TIME)
            if plant.robot.grab_from_table(plant.table) or \
                    plant.robot.arm1_load is not None:
                log.handled.append("arm-retry-ok")
                return HandlerResult.success()
            log.handled.append("arm-retry-failed")
            return HandlerResult.signal(A1_SENSOR)

        def universal_handler(ctx):
            log.handled.append("unload-universal")
            return HandlerResult.abort()

        handlers = lambda: HandlerMap({
            L_PLATE_SIGNAL: lost_plate_handler,
            NCS_FAIL: ncs_handler,
            ARM1_FAULT: arm_handler,
            GRAB_FAULT: arm_handler,
            UNDO: lost_plate_handler,
            FAILURE: universal_handler,
        }, default_handler=universal_handler)

        return [RoleDefinition("table", table_role, handlers()),
                RoleDefinition("table_sensor", table_sensor_role, handlers()),
                RoleDefinition("robot", robot_role, handlers()),
                RoleDefinition("robot_sensor", robot_sensor_role, handlers())]

    def unload_table_action(self) -> CAActionDefinition:
        """The Unload_Table nested action."""
        return CAActionDefinition(
            "Unload_Table",
            self._unload_table_roles(),
            internal_exceptions=[L_PLATE_SIGNAL, NCS_FAIL, ARM1_FAULT,
                                 GRAB_FAULT, UNDO, FAILURE],
            interface_exceptions=[T_SENSOR, A1_SENSOR],
            graph=build_unload_table_graph(),
            parent="Table_Press_Robot")

    # ==================================================================
    # Press_Plate: forge the blank and move it to the deposit belt
    # ==================================================================
    def _press_plate_roles(self) -> List[RoleDefinition]:
        plant, log = self.plant, self.log

        def robot_role(ctx):
            yield ctx.delay(OPERATION_TIME)
            if not plant.robot.rotate_to_press():
                ctx.raise_exception(PRESS_FAULT)
            if not plant.robot.place_in_press(plant.press):
                ctx.raise_exception(L_PLATE_INT)
            ctx.send("press", "plate_loaded", True)
            yield ctx.receive("forged")
            yield ctx.delay(OPERATION_TIME)
            plant.robot.extend_arm2()
            if not plant.robot.grab_from_press(plant.press):
                ctx.raise_exception(PRESS_FAULT)
            plant.robot.retract_arm2()
            if not plant.robot.place_on_deposit(plant.deposit_belt):
                ctx.raise_exception(DEPOSIT_FAULT)
            return "plate-on-deposit"

        def robot_sensor_role(ctx):
            yield ctx.delay(OPERATION_TIME)
            return "robot-sensor-ok"

        def press_role(ctx):
            yield ctx.receive("plate_loaded")
            yield ctx.delay(2 * OPERATION_TIME)
            if not plant.press.forge():
                ctx.raise_exception(PRESS_FAULT)
            ctx.send("robot", "forged", True)
            return "forged"

        def press_sensor_role(ctx):
            yield ctx.delay(OPERATION_TIME)
            return "press-sensor-ok"

        def press_retry_handler(ctx):
            yield ctx.delay(OPERATION_TIME)
            if plant.press.occupied and plant.press.forge():
                log.handled.append("press-retry-ok")
                # The robot still needs the "forged" notification to proceed,
                # but under the termination model the action completes from
                # the handlers, so simply report success.
                return HandlerResult.success()
            log.handled.append("press-failed")
            return HandlerResult.signal(PRESS_FAULT)

        def lost_plate_handler(ctx):
            log.handled.append("press-lost-plate")
            return HandlerResult.abort()

        def universal_handler(ctx):
            log.handled.append("press-universal")
            return HandlerResult.abort()

        handlers = lambda: HandlerMap({
            PRESS_FAULT: press_retry_handler,
            L_PLATE_INT: lost_plate_handler,
            DEPOSIT_FAULT: universal_handler,
        }, default_handler=universal_handler)

        return [RoleDefinition("robot", robot_role, handlers()),
                RoleDefinition("robot_sensor", robot_sensor_role, handlers()),
                RoleDefinition("press", press_role, handlers()),
                RoleDefinition("press_sensor", press_sensor_role, handlers())]

    def press_plate_action(self) -> CAActionDefinition:
        """The Press_Plate nested action."""
        from ..core.exception_graph import ExceptionGraph
        graph = ExceptionGraph("Press_Plate")
        graph.declare_hierarchy(
            internal("press_stage_failures", "multiple press-stage faults"),
            [PRESS_FAULT, L_PLATE_INT, DEPOSIT_FAULT])
        return CAActionDefinition(
            "Press_Plate",
            self._press_plate_roles(),
            internal_exceptions=[PRESS_FAULT, L_PLATE_INT, DEPOSIT_FAULT],
            interface_exceptions=[PRESS_FAULT, DEPOSIT_FAULT],
            graph=graph,
            parent="Table_Press_Robot")

    # ==================================================================
    # Table_Press_Robot: the outermost action of one production cycle
    # ==================================================================
    def _table_press_robot_roles(self) -> List[RoleDefinition]:
        plant, log = self.plant, self.log

        def table_role(ctx):
            yield from ctx.perform_nested("Unload_Table", "table")
            yield ctx.delay(OPERATION_TIME)
            plant.table.move_down()
            plant.table.rotate_to_feed()
            return "table-cycle-done"

        def table_sensor_role(ctx):
            yield from ctx.perform_nested("Unload_Table", "table_sensor")
            return "table-sensor-cycle-done"

        def robot_role(ctx):
            yield from ctx.perform_nested("Unload_Table", "robot")
            report = yield from ctx.perform_nested("Press_Plate", "robot")
            ctx.write("cell_state", "last_cycle", report.status.value)
            return "robot-cycle-done"

        def robot_sensor_role(ctx):
            yield from ctx.perform_nested("Unload_Table", "robot_sensor")
            yield from ctx.perform_nested("Press_Plate", "robot_sensor")
            return "robot-sensor-cycle-done"

        def press_role(ctx):
            report = yield from ctx.perform_nested("Press_Plate", "press")
            return report.status.value

        def press_sensor_role(ctx):
            yield from ctx.perform_nested("Press_Plate", "press_sensor")
            return "press-sensor-cycle-done"

        def degraded_handler(ctx):
            """Non-critical sensor failures: continue in degraded mode."""
            log.handled.append("cycle-degraded")
            log.recovered_cycles += 1
            return HandlerResult.success()

        def skip_cycle_handler(ctx):
            """The blank was lost or the cycle undone: skip this blank."""
            log.handled.append("cycle-skipped")
            log.skipped_cycles += 1
            yield ctx.delay(OPERATION_TIME)
            return HandlerResult.success()

        def fail_handler(ctx):
            log.handled.append("cycle-failed")
            return HandlerResult.failed("production cycle cannot continue")

        handlers = lambda: HandlerMap({
            T_SENSOR: degraded_handler,
            A1_SENSOR: degraded_handler,
            PRESS_FAULT: skip_cycle_handler,
            DEPOSIT_FAULT: skip_cycle_handler,
            UNDO: skip_cycle_handler,
            FAILURE: fail_handler,
        }, default_handler=skip_cycle_handler)

        return [RoleDefinition("table", table_role, handlers()),
                RoleDefinition("table_sensor", table_sensor_role, handlers()),
                RoleDefinition("robot", robot_role, handlers()),
                RoleDefinition("robot_sensor", robot_sensor_role, handlers()),
                RoleDefinition("press", press_role, handlers()),
                RoleDefinition("press_sensor", press_sensor_role, handlers())]

    def table_press_robot_action(self) -> CAActionDefinition:
        """The outermost Table_Press_Robot action."""
        return CAActionDefinition(
            "Table_Press_Robot",
            self._table_press_robot_roles(),
            internal_exceptions=[T_SENSOR, A1_SENSOR, PRESS_FAULT,
                                 DEPOSIT_FAULT, UNDO, FAILURE],
            graph=build_table_press_robot_graph(),
            external_objects=["cell_state"])

    # ==================================================================
    def all_actions(self) -> List[CAActionDefinition]:
        """Every action definition of the control program (outermost first)."""
        return [self.table_press_robot_action(),
                self.unload_table_action(),
                self.move_loaded_table_action(),
                self.press_plate_action()]

    def _acknowledge_handler(self, label: str):
        log = self.log

        def handler(ctx):
            log.handled.append(f"{label}-ack")
            return HandlerResult.success()
        return handler
