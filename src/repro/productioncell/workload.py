"""The production cell under open-loop traffic, with oracle verdicts.

The case study of Section 4 has so far only run closed-loop (each cycle
starts when the previous one ends) with hand-picked fault schedules.
:func:`run_production_cell_point` turns it into a registered workload
scenario: blanks arrive from a seeded Poisson process
(:meth:`~repro.productioncell.cell.ProductionCell.run` with
``arrival_times``), device faults are drawn per cycle from the canonical
:data:`~repro.productioncell.failures.FAULT_NAMES`, and an
:class:`~repro.explore.monitor.InvariantMonitor` watches the whole run —
so every row carries the full oracle verdict (agreement, exactly-one
outcome, no stranded thread, abortion atomic, plus the transactional
locks-released check over the cell-state object) next to the plant
statistics.

Everything is pure in the point's parameters: the fault schedule and the
arrival times both come from named sub-streams of the seed, so rows are
byte-identical across runs and execution modes and can be gated by
conformance fixtures like any other scenario.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..explore.monitor import InvariantMonitor
from ..simkernel.rng import SeededStreams
from .cell import ProductionCell
from .failures import FAULT_NAMES, FailureInjector


def draw_fault_schedule(seed: int, n_cycles: int,
                        fault_probability: float) -> List[Dict[str, Any]]:
    """Draw the per-cycle fault plan — pure in ``(seed, n_cycles, p)``.

    Each cycle independently suffers one fault (uniformly drawn from the
    canonical fault names) with probability ``fault_probability``.
    """
    stream = SeededStreams(seed).stream("cell_faults")
    planned: List[Dict[str, Any]] = []
    for cycle in range(1, n_cycles + 1):
        if stream.random() < fault_probability:
            planned.append({"cycle": cycle,
                            "fault": stream.choice(list(FAULT_NAMES))})
    return planned


def draw_arrival_times(seed: int, n_cycles: int, rate: float) -> List[float]:
    """Poisson blank-arrival times — pure in ``(seed, n_cycles, rate)``."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    stream = SeededStreams(seed).stream("cell_arrivals")
    times: List[float] = []
    now = 0.0
    for _ in range(n_cycles):
        now += stream.expovariate(rate)
        times.append(now)
    return times


def run_production_cell_point(seed: int, n_cycles: int = 6,
                              rate: float = 0.5,
                              fault_probability: float = 0.5,
                              message_latency: float = 0.01,
                              resolution_time: float = 0.05,
                              abort_time: float = 0.05,
                              algorithm: str = "ours") -> Dict[str, Any]:
    """One open-loop production-cell run, checked by the oracles.

    Builds a fresh cell, schedules the seeded fault plan, feeds blanks
    at Poisson ``rate`` and reports the plant statistics together with
    the oracle verdict (``violations`` must stay empty).
    """
    planned = draw_fault_schedule(seed, n_cycles, fault_probability)
    injector = FailureInjector()
    for entry in planned:
        injector.schedule(entry["cycle"], entry["fault"])
    arrivals = draw_arrival_times(seed, n_cycles, rate)

    cell = ProductionCell(injector=injector,
                          message_latency=message_latency,
                          algorithm=algorithm,
                          resolution_time=resolution_time,
                          abort_time=abort_time)
    monitor = InvariantMonitor(cell.system)
    stats = cell.run(n_cycles, arrival_times=arrivals)
    violations = monitor.check(require_liveness=True)

    return {
        "seed": seed,
        "n_cycles": n_cycles,
        "rate": rate,
        "fault_probability": fault_probability,
        "planned_faults": planned,
        "faults_fired": len(cell.injector.fired),
        "cycles_succeeded": stats.cycles_succeeded,
        "cycles_recovered": stats.cycles_recovered,
        "cycles_skipped": stats.cycles_skipped,
        "cycles_failed": stats.cycles_failed,
        "blanks_forged": stats.blanks_forged,
        "exceptions_raised": stats.exceptions_raised,
        "resolutions": stats.resolutions,
        "abortions": stats.abortions,
        "signalled": dict(sorted(stats.signalled.items())),
        "handled": len(stats.handled_log),
        "total_time": stats.total_time,
        "protocol_messages":
            cell.system.network.stats.protocol_messages(),
        "violations": [str(v) for v in violations],
        "n_violations": len(violations),
    }
