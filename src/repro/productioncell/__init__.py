"""The production-cell case study (Section 4 of the paper).

A Python plant simulator of the FZI production cell (feed belt, elevating
rotary table, two-armed robot, press, deposit belt, traffic lights), a
control program structured as nested CA actions with the exception graph of
Figure 7, deterministic fault injection, and a facade
(:class:`ProductionCell`) that runs production cycles and reports how the
coordinated exception handling machinery dealt with the injected faults.
"""

from .cell import CellStatistics, ProductionCell
from .controller import (
    ARM1_FAULT,
    DEPOSIT_FAULT,
    GRAB_FAULT,
    OPERATION_TIME,
    PRESS_FAULT,
    ProductionCellController,
    THREADS,
)
from .devices import (
    Blank,
    DepositBelt,
    Device,
    FeedBelt,
    Plant,
    Press,
    Robot,
    RotaryTable,
    TrafficLight,
)
from .exceptions import (
    A1_SENSOR,
    CS_FAULT,
    DUAL_MOTOR_FAILURES,
    L_MES,
    L_PLATE_INT,
    L_PLATE_SIGNAL,
    MOVE_LOADED_TABLE_PRIMITIVES,
    NCS_FAIL,
    RM_NMOVE,
    RM_STOP,
    RT_EXC,
    S_STUCK,
    SENSOR_OR_LOST_PLATE,
    T_SENSOR,
    TABLE_AND_SENSOR_FAILURES,
    TWO_UNRELATED,
    VM_NMOVE,
    VM_STOP,
    build_move_loaded_table_graph,
    build_table_press_robot_graph,
    build_unload_table_graph,
    exception_catalogue,
)
from .failures import FAULT_NAMES, FailureInjector, ScheduledFault

__all__ = [
    "A1_SENSOR",
    "ARM1_FAULT",
    "Blank",
    "build_move_loaded_table_graph",
    "build_table_press_robot_graph",
    "build_unload_table_graph",
    "CellStatistics",
    "CS_FAULT",
    "DepositBelt",
    "DEPOSIT_FAULT",
    "Device",
    "DUAL_MOTOR_FAILURES",
    "exception_catalogue",
    "FailureInjector",
    "FAULT_NAMES",
    "FeedBelt",
    "GRAB_FAULT",
    "L_MES",
    "L_PLATE_INT",
    "L_PLATE_SIGNAL",
    "MOVE_LOADED_TABLE_PRIMITIVES",
    "NCS_FAIL",
    "OPERATION_TIME",
    "Plant",
    "Press",
    "PRESS_FAULT",
    "ProductionCell",
    "ProductionCellController",
    "RM_NMOVE",
    "RM_STOP",
    "Robot",
    "RotaryTable",
    "RT_EXC",
    "S_STUCK",
    "ScheduledFault",
    "SENSOR_OR_LOST_PLATE",
    "T_SENSOR",
    "TABLE_AND_SENSOR_FAILURES",
    "THREADS",
    "TrafficLight",
    "TWO_UNRELATED",
    "VM_NMOVE",
    "VM_STOP",
]
