"""Failure injection for the production-cell plant.

Section 4 of the paper lists the internal exceptions of the
``Move_Loaded_Table`` action: ``vm_stop`` (vertical table motor stops
unexpectedly), ``rm_stop`` (rotation motor stops), ``vm_nmove`` (vertical
motor can't move), ``rm_nmove`` (rotation motor can't move), ``s_stuck``
(sensor stuck at 0), ``l_plate`` (lost plate), ``cs_fault`` (control
software fault), ``l_mes`` (lost or corrupted message) and ``rt_exc``
(run-time exceptions).

The :class:`FailureInjector` decides, per production cycle and per device
operation, which of these physical/logical faults manifest.  Injection is
fully deterministic: failures are scheduled by (cycle, fault name), so every
test and benchmark run reproduces the same fault pattern.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple


#: The canonical fault names of the case study.
FAULT_NAMES = (
    "vm_stop", "rm_stop", "vm_nmove", "rm_nmove",
    "s_stuck", "l_plate", "cs_fault", "l_mes", "rt_exc",
)


@dataclass
class ScheduledFault:
    """A fault scheduled for a specific production cycle.

    ``device`` optionally narrows the fault to one device; ``persistent``
    faults keep firing until explicitly cleared (non-persistent faults fire
    once and disappear, modelling transient faults).
    """

    cycle: int
    fault: str
    device: Optional[str] = None
    persistent: bool = False

    def __post_init__(self) -> None:
        if self.fault not in FAULT_NAMES:
            raise ValueError(f"unknown fault {self.fault!r}; "
                             f"expected one of {FAULT_NAMES}")
        if self.cycle < 0:
            raise ValueError("cycle must be non-negative")


class FailureInjector:
    """Deterministic schedule of plant faults, queried by the devices."""

    def __init__(self, faults: Optional[Iterable[ScheduledFault]] = None) -> None:
        self._scheduled: List[ScheduledFault] = list(faults or [])
        self._cleared: Set[int] = set()
        self.current_cycle = 0
        self.fired: List[Tuple[int, str, Optional[str]]] = []

    # ------------------------------------------------------------------
    # Schedule construction
    # ------------------------------------------------------------------
    def schedule(self, cycle: int, fault: str, device: Optional[str] = None,
                 persistent: bool = False) -> "FailureInjector":
        """Add one fault to the schedule (fluent API)."""
        self._scheduled.append(ScheduledFault(cycle, fault, device, persistent))
        return self

    def schedule_many(self, faults: Iterable[Tuple[int, str]]) -> "FailureInjector":
        """Add (cycle, fault) pairs in bulk."""
        for cycle, fault in faults:
            self.schedule(cycle, fault)
        return self

    # ------------------------------------------------------------------
    # Queries made by devices / the controller
    # ------------------------------------------------------------------
    def begin_cycle(self, cycle: int) -> None:
        """Advance to a new production cycle."""
        self.current_cycle = cycle

    def should_fail(self, fault: str, device: Optional[str] = None) -> bool:
        """True if ``fault`` (optionally scoped to ``device``) fires now.

        Non-persistent faults are consumed by the query that observes them.
        """
        for index, scheduled in enumerate(self._scheduled):
            if index in self._cleared:
                continue
            if scheduled.cycle != self.current_cycle:
                continue
            if scheduled.fault != fault:
                continue
            if scheduled.device is not None and device is not None \
                    and scheduled.device != device:
                continue
            self.fired.append((self.current_cycle, fault, device))
            if not scheduled.persistent:
                self._cleared.add(index)
            return True
        return False

    def pending_for_cycle(self, cycle: int) -> List[ScheduledFault]:
        """Faults scheduled (and not yet consumed) for ``cycle``."""
        return [scheduled for index, scheduled in enumerate(self._scheduled)
                if scheduled.cycle == cycle and index not in self._cleared]

    def clear_all(self) -> None:
        """Remove every remaining scheduled fault."""
        self._cleared.update(range(len(self._scheduled)))

    def summary(self) -> Dict[str, int]:
        """Count of fired faults by name."""
        counts: Dict[str, int] = defaultdict(int)
        for _cycle, fault, _device in self.fired:
            counts[fault] += 1
        return dict(counts)

    def __repr__(self) -> str:
        return (f"<FailureInjector scheduled={len(self._scheduled)} "
                f"fired={len(self.fired)}>")
