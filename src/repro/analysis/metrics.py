"""Run-level metrics collected by the CA-action runtime.

One :class:`RunMetrics` instance is attached to a
:class:`~repro.runtime.system.DistributedCASystem`; the runtime feeds it the
events that the paper's experiments measure (messages, resolutions,
abortions, handler invocations, action outcomes) and the benchmarks read the
aggregates from it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(slots=True)
class ActionOutcome:
    """The final outcome of one executed CA action instance."""

    action: str
    outcome: str                 # "success", "signalled", "undone", "failed"
    signalled: Optional[str] = None
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    def to_dict(self) -> Dict[str, object]:
        """A plain-dict (JSON-serializable) copy of this outcome."""
        return {
            "action": self.action,
            "outcome": self.outcome,
            "signalled": self.signalled,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ActionOutcome":
        """Rebuild an outcome from :meth:`to_dict` output."""
        return cls(
            action=str(data["action"]),
            outcome=str(data["outcome"]),
            signalled=data.get("signalled"),  # type: ignore[arg-type]
            started_at=float(data.get("started_at", 0.0)),  # type: ignore[arg-type]
            finished_at=float(data.get("finished_at", 0.0)),  # type: ignore[arg-type]
        )


class RunMetrics:
    """Aggregated counters for one simulated run.

    ``keep_details`` (default ``True``) controls whether the unbounded
    per-event records — the human-readable ``events`` log and the
    ``action_outcomes`` list — are retained.  A million-instance shard
    of a :class:`~repro.workload.sharding.ShardedPool` sets it to
    ``False``: every counter (including the per-name maps) still counts
    exactly and still merges, only the per-event lists stay empty, so
    memory stays flat no matter how many instances a shard serves.
    """

    def __init__(self) -> None:
        self.keep_details: bool = True
        self.exceptions_raised: int = 0
        self.exceptions_by_name: Dict[str, int] = defaultdict(int)
        self.resolutions: int = 0
        self.resolution_calls: int = 0
        self.resolved_by_name: Dict[str, int] = defaultdict(int)
        self.handlers_invoked: int = 0
        self.abortions: int = 0
        self.suspensions: int = 0
        self.signalled: Dict[str, int] = defaultdict(int)
        self.action_outcomes: List[ActionOutcome] = []
        self.events: List[str] = []

    # ------------------------------------------------------------------
    def record_raise(self, thread: str, action: str, exception: str,
                     now: float) -> None:
        self.exceptions_raised += 1
        self.exceptions_by_name[exception] += 1
        if self.keep_details:
            self.events.append(
                f"{now:.3f} {thread} raised {exception} in {action}")

    def record_suspension(self, thread: str, action: str, now: float) -> None:
        self.suspensions += 1
        if self.keep_details:
            self.events.append(f"{now:.3f} {thread} suspended in {action}")

    def record_resolution(self, resolver: str, action: str, exception: str,
                          now: float) -> None:
        self.resolutions += 1
        self.resolved_by_name[exception] += 1
        if self.keep_details:
            self.events.append(
                f"{now:.3f} {resolver} resolved {exception} in {action}")

    def record_handler(self, thread: str, action: str, exception: str,
                       now: float) -> None:
        self.handlers_invoked += 1
        if self.keep_details:
            self.events.append(
                f"{now:.3f} {thread} handling {exception} in {action}")

    def record_abortion(self, thread: str, action: str, now: float) -> None:
        self.abortions += 1
        if self.keep_details:
            self.events.append(f"{now:.3f} {thread} aborted {action}")

    def record_signal(self, thread: str, action: str, exception: str,
                      now: float) -> None:
        self.signalled[exception] += 1
        if self.keep_details:
            self.events.append(
                f"{now:.3f} {thread} signalled {exception} from {action}")

    def record_outcome(self, outcome: ActionOutcome) -> None:
        if self.keep_details:
            self.action_outcomes.append(outcome)

    # ------------------------------------------------------------------
    def outcomes_for(self, action: str) -> List[ActionOutcome]:
        """All recorded outcomes of the named action."""
        return [o for o in self.action_outcomes if o.action == action]

    def summary(self) -> Dict[str, object]:
        """Plain-dict summary used by benchmark reports."""
        return {
            "exceptions_raised": self.exceptions_raised,
            "resolutions": self.resolutions,
            "handlers_invoked": self.handlers_invoked,
            "abortions": self.abortions,
            "suspensions": self.suspensions,
            "signalled": dict(self.signalled),
            "outcomes": {
                outcome: sum(1 for o in self.action_outcomes
                             if o.outcome == outcome)
                for outcome in {o.outcome for o in self.action_outcomes}
            },
        }

    def counters(self) -> Dict[str, object]:
        """The scalar and per-name counters only (no per-event lists).

        The JSON-friendly aggregate a merged sharded-capacity row embeds:
        exact under ``keep_details=False`` and identical to the matching
        subset of :meth:`snapshot`.
        """
        return {
            "exceptions_raised": self.exceptions_raised,
            "exceptions_by_name": dict(self.exceptions_by_name),
            "resolutions": self.resolutions,
            "resolution_calls": self.resolution_calls,
            "resolved_by_name": dict(self.resolved_by_name),
            "handlers_invoked": self.handlers_invoked,
            "abortions": self.abortions,
            "suspensions": self.suspensions,
            "signalled": dict(self.signalled),
        }

    # ------------------------------------------------------------------
    # Serialization and merging (mirrors MessageStatistics.snapshot())
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """A self-contained, JSON-serializable copy of every counter.

        Shaped like :meth:`repro.net.network.MessageStatistics.snapshot`:
        the value round-trips through :meth:`restore` and adds onto another
        instance through :meth:`merge`, which is how per-shard metrics from
        parallel engine sweeps are aggregated into one run summary.
        """
        return {
            "exceptions_raised": self.exceptions_raised,
            "exceptions_by_name": dict(self.exceptions_by_name),
            "resolutions": self.resolutions,
            "resolution_calls": self.resolution_calls,
            "resolved_by_name": dict(self.resolved_by_name),
            "handlers_invoked": self.handlers_invoked,
            "abortions": self.abortions,
            "suspensions": self.suspensions,
            "signalled": dict(self.signalled),
            "action_outcomes": [o.to_dict() for o in self.action_outcomes],
            "events": list(self.events),
        }

    def restore(self, snapshot: Dict[str, object]) -> None:
        """Reset the metrics to the values captured in ``snapshot``."""
        self.__init__()
        self.merge(snapshot)

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Add the counters captured in ``snapshot`` onto this instance.

        Outcome and event lists are concatenated (snapshot order after
        existing entries), scalar counters and per-name maps are summed.
        """
        for counter in ("exceptions_raised", "resolutions", "resolution_calls",
                        "handlers_invoked", "abortions", "suspensions"):
            setattr(self, counter,
                    getattr(self, counter) + snapshot.get(counter, 0))
        for mapping in ("exceptions_by_name", "resolved_by_name", "signalled"):
            ours = getattr(self, mapping)
            for name, count in snapshot.get(mapping, {}).items():  # type: ignore[union-attr]
                ours[name] += count
        for outcome in snapshot.get("action_outcomes", ()):  # type: ignore[union-attr]
            self.action_outcomes.append(
                outcome if isinstance(outcome, ActionOutcome)
                else ActionOutcome.from_dict(outcome))
        self.events.extend(snapshot.get("events", ()))  # type: ignore[arg-type]

    def __repr__(self) -> str:
        return (f"<RunMetrics raised={self.exceptions_raised} "
                f"resolved={self.resolutions} aborted={self.abortions}>")
