"""Fixed-bucket log-scale latency histograms.

The workload subsystem measures per-instance latencies over hundreds (or
millions) of CA-action instances; keeping every sample would make benchmark
rows unbounded and parallel aggregation awkward.  :class:`LatencyHistogram`
instead keeps a fixed array of logarithmically spaced buckets:

* recording is O(1) and the memory footprint is constant;
* percentiles (p50/p90/p99/p999) are read from the cumulative counts with
  a bounded relative error set by the bucket ``growth`` factor;
* histograms with identical bucket configuration are **mergeable** by
  adding counts, so per-shard histograms from parallel engine sweeps
  aggregate exactly (merge-then-percentile equals percentile-over-union
  at bucket resolution);
* :meth:`snapshot`/:meth:`restore` round-trip through plain JSON-friendly
  dicts, mirroring :meth:`repro.net.network.MessageStatistics.snapshot`.

Everything is plain deterministic arithmetic — no wall clock, no RNG — so
histograms recorded by the deterministic simulator are byte-identical
between sequential and process-pool runs.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Sequence

#: The quantiles reported by :meth:`LatencyHistogram.summary`.
DEFAULT_QUANTILES = (0.50, 0.90, 0.99, 0.999)


class LatencyHistogram:
    """A mergeable, JSON-serializable log-bucket histogram.

    Parameters
    ----------
    min_value:
        Lower edge of the first bucket.  Samples below it are clamped into
        bucket 0 (they still count exactly in ``count``/``sum``/``min``).
    growth:
        Ratio between consecutive bucket edges (> 1).  The default
        ``2 ** 0.25`` bounds the relative quantile error at ~19%.
    bucket_count:
        Number of buckets.  Samples beyond the last edge are clamped into
        the final bucket.  The default span is ``min_value * growth**128``
        (about seven decades above ``min_value``).
    """

    def __init__(self, min_value: float = 1e-3, growth: float = 2 ** 0.25,
                 bucket_count: int = 128) -> None:
        if min_value <= 0:
            raise ValueError("min_value must be positive")
        if growth <= 1.0:
            raise ValueError("growth must be greater than 1")
        if bucket_count < 1:
            raise ValueError("bucket_count must be at least 1")
        self.min_value = float(min_value)
        self.growth = float(growth)
        self.bucket_count = int(bucket_count)
        self._log_growth = math.log(self.growth)
        self.buckets: List[int] = [0] * self.bucket_count
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def bucket_index(self, value: float) -> int:
        """The bucket a sample falls into (clamped at both ends)."""
        if value < self.min_value:
            return 0
        index = int(math.log(value / self.min_value) / self._log_growth)
        return min(max(index, 0), self.bucket_count - 1)

    def bucket_edge(self, index: int) -> float:
        """Upper edge of bucket ``index`` (the quantile representative)."""
        return self.min_value * self.growth ** (index + 1)

    def record(self, value: float) -> None:
        """Record one sample (negative samples are a caller bug)."""
        if value < 0:
            raise ValueError(f"latency samples must be non-negative: {value}")
        self.buckets[self.bucket_index(value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def record_many(self, values: Iterable[float]) -> None:
        """Record every sample in ``values``."""
        for value in values:
            self.record(value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def mean(self) -> Optional[float]:
        """Exact mean of the recorded samples (None when empty)."""
        return self.sum / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Approximate ``q``-quantile (bucket upper edge, clamped to
        the exactly tracked ``min``/``max``); None when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            return None
        # Rank of the quantile sample, 1-based, at least 1.
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index, bucket in enumerate(self.buckets):
            cumulative += bucket
            if cumulative >= rank:
                edge = self.bucket_edge(index)
                # min/max are tracked exactly; clamping keeps the estimate
                # inside the observed range (and makes single-sample and
                # tail quantiles exact).
                if self.max is not None:
                    edge = min(edge, self.max)
                if self.min is not None:
                    edge = max(edge, self.min)
                return edge
        return self.max  # pragma: no cover - counts always sum to count

    def percentiles(self, quantiles: Sequence[float] = DEFAULT_QUANTILES
                    ) -> Dict[str, Optional[float]]:
        """Named quantiles, e.g. ``{"p50": ..., "p99": ...}``."""
        result: Dict[str, Optional[float]] = {}
        for q in quantiles:
            name = "p" + format(q * 100, "g").replace(".", "")
            result[name] = self.quantile(q)
        return result

    def summary(self) -> Dict[str, Any]:
        """Scalar summary for benchmark rows (JSON-serializable)."""
        summary: Dict[str, Any] = {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        summary.update(self.percentiles())
        return summary

    # ------------------------------------------------------------------
    # Serialization and merging
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict copy of the full histogram state.

        Self-contained and JSON-serializable; :meth:`restore` and
        :meth:`merge` consume it.
        """
        return {
            "min_value": self.min_value,
            "growth": self.growth,
            "bucket_count": self.bucket_count,
            "buckets": list(self.buckets),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Reset this histogram to the state captured in ``snapshot``."""
        self._check_compatible(snapshot)
        self.buckets = [0] * self.bucket_count
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self.merge(snapshot)

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, Any]) -> "LatencyHistogram":
        """Build a histogram from :meth:`snapshot` output."""
        histogram = cls(min_value=snapshot["min_value"],
                        growth=snapshot["growth"],
                        bucket_count=snapshot["bucket_count"])
        histogram.restore(snapshot)
        return histogram

    def merge(self, other: "LatencyHistogram | Dict[str, Any]") -> None:
        """Add another histogram (or snapshot) with the same configuration."""
        snapshot = other.snapshot() if isinstance(other, LatencyHistogram) \
            else other
        self._check_compatible(snapshot)
        for index, bucket in enumerate(snapshot.get("buckets", ())):
            self.buckets[index] += bucket
        self.count += snapshot.get("count", 0)
        self.sum += snapshot.get("sum", 0.0)
        for name, pick in (("min", min), ("max", max)):
            theirs = snapshot.get(name)
            if theirs is None:
                continue
            ours = getattr(self, name)
            setattr(self, name, theirs if ours is None else pick(ours, theirs))

    def _check_compatible(self, snapshot: Dict[str, Any]) -> None:
        for field in ("min_value", "growth", "bucket_count"):
            if snapshot.get(field) != getattr(self, field):
                raise ValueError(
                    f"histogram configurations differ on {field}: "
                    f"{getattr(self, field)} != {snapshot.get(field)}")

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"<LatencyHistogram n={self.count} "
                f"p50={self.quantile(0.5)} p99={self.quantile(0.99)}>")
