"""Analytic bounds (Lemma 1, Theorem 2, message-count formulas) and metrics."""

from .bounds import (
    TimingParameters,
    campbell_randell_reference_messages,
    campbell_randell_resolution_calls,
    exception_graph_level_size,
    lemma1_completion_bound,
    messages_all_exceptions,
    messages_single_exception,
    romanovsky96_messages,
    signalling_messages_simple,
    signalling_messages_worst_case,
    theorem2_worst_case_messages,
)
from .histograms import LatencyHistogram
from .metrics import ActionOutcome, RunMetrics

__all__ = [
    "ActionOutcome",
    "LatencyHistogram",
    "RunMetrics",
    "TimingParameters",
    "campbell_randell_reference_messages",
    "campbell_randell_resolution_calls",
    "exception_graph_level_size",
    "lemma1_completion_bound",
    "messages_all_exceptions",
    "messages_single_exception",
    "romanovsky96_messages",
    "signalling_messages_simple",
    "signalling_messages_worst_case",
    "theorem2_worst_case_messages",
]
