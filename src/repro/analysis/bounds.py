"""Analytic bounds and complexity formulas from the paper.

These functions encode, symbol for symbol, the quantitative claims of
Section 3.2.3 and Section 3.4, so that benchmarks and property-based tests
can check measured behaviour against them:

* Lemma 1's completion-time bound,
* the message-count enumerations for one and for N concurrent exceptions,
* Theorem 2's worst-case message complexity ``n_max × (N² − 1)``,
* the Campbell–Randell ``O(n_max × N³)`` and Romanovsky-96
  ``n_max × 3N(N−1)`` reference complexities,
* the signalling algorithm's ``N(N−1)`` / ``2N(N−1)`` message counts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TimingParameters:
    """The timing parameters used throughout Sections 3 and 5.

    Attributes
    ----------
    t_msg_max:
        ``Tmmax`` — maximum time of message passing between two threads.
    t_resolution:
        ``Treso``/``Tres`` — upper bound on the time spent resolving.
    t_abort:
        ``Tabort``/``Tabo`` — maximum time to abort one nested action.
    t_handler_max:
        ``Δmax`` — maximum time to handle a (resolving) exception.
    max_nesting:
        ``n_max`` — maximum number of nesting levels (0 if no nesting).
    """

    t_msg_max: float
    t_resolution: float
    t_abort: float
    t_handler_max: float
    max_nesting: int = 0

    def __post_init__(self) -> None:
        for name in ("t_msg_max", "t_resolution", "t_abort", "t_handler_max"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.max_nesting < 0:
            raise ValueError("max_nesting must be non-negative")


def lemma1_completion_bound(params: TimingParameters) -> float:
    """Lemma 1: worst-case time for a thread to complete exception handling.

    ``T ≤ (2·n_max + 3)·Tmmax + n_max·Tabort + (n_max + 1)(Treso + Δmax)``
    """
    n = params.max_nesting
    return ((2 * n + 3) * params.t_msg_max
            + n * params.t_abort
            + (n + 1) * (params.t_resolution + params.t_handler_max))


def messages_single_exception(n_threads: int) -> int:
    """Section 3.2.3 case 1: one exception, no nesting.

    ``(N + 1)(N − 1)`` messages: ``N−1`` Exception, ``(N−1)²`` Suspended and
    ``N−1`` Commit messages.
    """
    _validate_threads(n_threads)
    return (n_threads + 1) * (n_threads - 1)


def messages_all_exceptions(n_threads: int) -> int:
    """Section 3.2.3 case 2: all N threads raise simultaneously.

    Also ``(N + 1)(N − 1)``: ``N(N−1)`` Exception plus ``N−1`` Commit
    messages.
    """
    _validate_threads(n_threads)
    return (n_threads + 1) * (n_threads - 1)


def theorem2_worst_case_messages(n_threads: int, max_nesting: int) -> int:
    """Theorem 2: the proposed algorithm needs at most ``n_max(N² − 1)`` messages.

    ``max_nesting`` here follows the paper's convention of counting levels
    such that a single (non-nested) action corresponds to the factor 1.
    """
    _validate_threads(n_threads)
    levels = max(1, max_nesting)
    return levels * (n_threads ** 2 - 1)


def campbell_randell_reference_messages(n_threads: int, max_nesting: int = 0) -> int:
    """Reference magnitude for the Campbell–Randell algorithm: ``n_max·N³``.

    The paper only states the order ``O(n_max × N³)``; this helper returns
    the nominal cubic value used by benchmarks as a scale reference (never
    as an exact expectation).
    """
    _validate_threads(n_threads)
    levels = max(1, max_nesting)
    return levels * n_threads ** 3


def campbell_randell_resolution_calls(n_threads: int) -> int:
    """Number of resolution-procedure invocations in the CR algorithm.

    Section 5.3: "the resolution procedure is called N × (N − 1) × (N − 2)
    times in CR algorithms and only once in our approach."
    """
    _validate_threads(n_threads)
    return n_threads * (n_threads - 1) * (n_threads - 2)


def romanovsky96_messages(n_threads: int, max_nesting: int = 0) -> int:
    """The earlier algorithm "could use ``n_max × 3N(N−1)`` messages"."""
    _validate_threads(n_threads)
    levels = max(1, max_nesting)
    return levels * 3 * n_threads * (n_threads - 1)


def signalling_messages_simple(n_threads: int) -> int:
    """Signalling algorithm, no µ involved: ``N(N−1)`` messages."""
    _validate_threads(n_threads)
    return n_threads * (n_threads - 1)


def signalling_messages_worst_case(n_threads: int) -> int:
    """Signalling algorithm with an undo round: ``2N(N−1)`` messages."""
    _validate_threads(n_threads)
    return 2 * n_threads * (n_threads - 1)


def exception_graph_level_size(n_primitives: int, level: int) -> int:
    """Maximum number of resolving exceptions at a given graph level.

    Section 3.2: level 1 can contain up to ``n(n−1)/2`` nodes, level 2 up to
    ``n(n−1)(n−2)/6``, and so on — i.e. ``C(n, level+1)``.
    """
    if n_primitives < 1:
        raise ValueError("need at least one primitive exception")
    if level < 0 or level > n_primitives - 1:
        return 0
    size = level + 1
    result = 1
    for i in range(size):
        result = result * (n_primitives - i) // (i + 1)
    return result


def _validate_threads(n_threads: int) -> None:
    if n_threads < 2:
        raise ValueError("the coordination algorithms need at least 2 threads")
