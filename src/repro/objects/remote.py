"""External atomic objects accessed over RPC: host service and proxy.

The paper's model places external objects *outside* the CA-action
partitions — "individually responsible for their own integrity" — which
the sim runtime simplifies into one shared in-process
:class:`~repro.objects.transaction.TransactionManager`.  That shortcut
breaks the moment partitions become separate OS processes, so this
module distributes it:

* :class:`ObjectHostService` runs on the node that owns the objects.  It
  registers ``txn.*`` procedures on an :class:`~repro.net.rpc.RpcEndpoint`
  and maps each CA-action *instance key* to one authoritative
  :class:`~repro.objects.transaction.Transaction` — every participant of
  an instance, whichever process it runs in, reaches the same
  transaction, locks, and committed state.
* :class:`RemoteTransaction` is the participant-side proxy installed via
  ``DistributedCASystem.transaction_factory``.  Reads and lock requests
  return kernel events (the reply, or the deferred lock grant);
  writes/commit/abort/notify are one-way calls, with the proxy tracking
  an optimistic local ``status`` so the life-cycle's designated-committer
  and rollback guards keep working unchanged.

The same proxy/service pair runs over the simulated network in one
process (the ``sim`` backend) and across real processes (the ``real``
backend) — which is exactly what makes the RPC layer's timeout and
failure-reporting semantics load-bearing rather than decorative.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..core.action import CAActionDefinition
from ..net.rpc import RpcEndpoint, RpcTimeoutError
from ..simkernel.events import Event
from .locks import DeadlockError, LockMode
from .transaction import Transaction, TransactionManager, TransactionStatus

#: Error-string prefix replies use to carry a deadlock refusal across the
#: wire; the proxy converts it back into a real :class:`DeadlockError`.
_DEADLOCK_PREFIX = "DeadlockError:"


class ObjectHostService:
    """Serves a transaction manager's objects to remote participants."""

    #: Procedure names registered on the endpoint.
    PROCEDURES = ("txn.lock", "txn.read", "txn.write", "txn.repair",
                  "txn.commit", "txn.abort", "txn.notify")

    def __init__(self, endpoint: RpcEndpoint,
                 manager: TransactionManager) -> None:
        self.endpoint = endpoint
        self.manager = manager
        #: instance key -> the authoritative transaction for that CA-action
        #: instance (begun on first touch, from any participant).
        self.transactions: Dict[str, Transaction] = {}
        endpoint.register("txn.lock", self._lock)
        endpoint.register("txn.read", self._read)
        endpoint.register("txn.write", self._write)
        endpoint.register("txn.commit", self._commit)
        endpoint.register("txn.abort", self._abort)
        endpoint.register("txn.notify", self._notify)

    # ------------------------------------------------------------------
    def transaction(self, instance_key: str, action_name: str) -> Transaction:
        """The instance's authoritative transaction (begin on first use)."""
        transaction = self.transactions.get(instance_key)
        if transaction is None:
            transaction = self.transactions[instance_key] = \
                self.manager.begin(action_name)
        return transaction

    # -- procedure handlers --------------------------------------------
    def _lock(self, instance_key: str, action_name: str, object_name: str,
              mode_name: str):
        transaction = self.transaction(instance_key, action_name)
        grant = transaction.lock(object_name, LockMode[mode_name])
        if grant.triggered:
            if grant.ok:
                return True
            # Immediate refusal (wait-for cycle): the lock manager fails
            # the event rather than raising.  Re-raise as DeadlockError so
            # the reply's error string carries the ``DeadlockError:``
            # prefix the proxy converts back into the typed exception.
            grant.defused = True
            raise DeadlockError(str(grant.value))
        # Returning the untriggered grant event defers the reply until
        # the lock manager grants the request.
        return grant

    def _read(self, instance_key: str, action_name: str, object_name: str,
              key: str) -> Any:
        return self.transaction(instance_key, action_name).read(
            object_name, key)

    def _write(self, instance_key: str, action_name: str, object_name: str,
               key: str, value: Any) -> None:
        self.transaction(instance_key, action_name).write(
            object_name, key, value)

    def _commit(self, instance_key: str, action_name: str) -> None:
        self.transaction(instance_key, action_name).commit()

    def _abort(self, instance_key: str, action_name: str) -> str:
        return self.transaction(instance_key, action_name).abort().value

    def _notify(self, instance_key: str, action_name: str,
                exception_name: str) -> None:
        self.transaction(instance_key, action_name).notify_exception(
            exception_name)


class RemoteTransaction:
    """Participant-side proxy for one action instance's transaction.

    Mirrors the :class:`~repro.objects.transaction.Transaction` surface
    the runtime and role code touch.  Event-returning operations
    (:meth:`lock`, :meth:`read`) are meant to be ``yield``-ed by role
    bodies; the fire-and-forget operations are one-way RPC, with the
    proxy's ``status`` updated optimistically so the life-cycle's
    synchronous guards (designated commit, ensure-rolled-back) behave as
    they do against a local transaction.
    """

    def __init__(self, endpoint: RpcEndpoint, host: str, instance_key: str,
                 action_name: str, timeout: Optional[float] = None) -> None:
        self._endpoint = endpoint
        self._host = host
        self.instance_key = instance_key
        self.action_name = action_name
        self.transaction_id = f"remote:{instance_key}"
        self.status = TransactionStatus.ACTIVE
        self.objects: set = set()
        self.failed_objects: list = []
        #: Reply timeout (virtual time) for the request/reply operations;
        #: ``None`` trusts the transport (the sim network without faults).
        self.timeout = timeout

    # ------------------------------------------------------------------
    def lock(self, object_name: str,
             mode: LockMode = LockMode.EXCLUSIVE) -> Event:
        """Request a lock on the host; yields like a local grant event."""
        self._ensure_active()
        self.objects.add(object_name)
        reply = self._endpoint.call(
            self._host, "txn.lock", self.instance_key, self.action_name,
            object_name, mode.name, timeout=self.timeout)
        return self._bridge(reply, convert_deadlock=True)

    def read(self, object_name: str, key: str) -> Event:
        """Remote transactional read; yields the value."""
        self._ensure_active()
        self.objects.add(object_name)
        return self._bridge(self._endpoint.call(
            self._host, "txn.read", self.instance_key, self.action_name,
            object_name, key, timeout=self.timeout))

    def write(self, object_name: str, key: str, value: Any) -> None:
        """Remote transactional write (one-way; per-link FIFO orders it)."""
        self._ensure_active()
        self.objects.add(object_name)
        self._endpoint.call_oneway(
            self._host, "txn.write", self.instance_key, self.action_name,
            object_name, key, value)

    def repair(self, object_name: str, repair_function: Callable) -> None:
        raise NotImplementedError(
            "repair() ships a function and is not supported on remote "
            "objects; use write() from the handler instead")

    def notify_exception(self, exception_name: str) -> None:
        self._endpoint.call_oneway(
            self._host, "txn.notify", self.instance_key, self.action_name,
            exception_name)

    # ------------------------------------------------------------------
    def commit(self) -> None:
        """One-way commit; the proxy's status flips optimistically.

        Only the designated committer calls this (life-cycle invariant),
        so the optimistic flip cannot race another participant's commit.
        """
        self._ensure_active()
        self._endpoint.call_oneway(self._host, "txn.commit",
                                   self.instance_key, self.action_name)
        self.status = TransactionStatus.COMMITTED

    def abort(self) -> TransactionStatus:
        """One-way abort; idempotent on the host side."""
        if self.status is not TransactionStatus.ACTIVE:
            return self.status
        self._endpoint.call_oneway(self._host, "txn.abort",
                                   self.instance_key, self.action_name)
        self.status = TransactionStatus.ABORTED
        return self.status

    # ------------------------------------------------------------------
    def _ensure_active(self) -> None:
        if self.status is not TransactionStatus.ACTIVE:
            raise RuntimeError(
                f"remote transaction {self.instance_key} is "
                f"{self.status.value}")

    def _bridge(self, reply: Event, convert_deadlock: bool = False) -> Event:
        """Wrap a reply event, restoring typed errors where needed."""
        outer = self._endpoint.kernel.event()

        def _forward(event: Event) -> None:
            if event.ok:
                if not outer.triggered:
                    outer.succeed(event.value)
                return
            event.defused = True
            error = event.value
            message = str(error)
            if convert_deadlock and message.startswith(_DEADLOCK_PREFIX):
                error = DeadlockError(
                    message[len(_DEADLOCK_PREFIX):].strip())
            if not outer.triggered:
                outer.fail(error)

        reply.callbacks.append(_forward)
        return outer

    def __repr__(self) -> str:
        return (f"<RemoteTransaction {self.instance_key} host={self._host} "
                f"{self.status.value}>")


def install_remote_objects(system, endpoint_for: Callable[[str], RpcEndpoint],
                           host: str,
                           timeout: Optional[float] = None) -> None:
    """Point a system's per-instance transactions at a remote host.

    ``endpoint_for(instance_key)`` picks which local endpoint issues the
    calls (a single-partition process passes its own endpoint; the
    all-local sim build designates one).
    """
    def factory(instance_key: str,
                definition: CAActionDefinition) -> RemoteTransaction:
        return RemoteTransaction(endpoint_for(instance_key), host,
                                 instance_key, definition.name,
                                 timeout=timeout)

    system.transaction_factory = factory


__all__ = ["ObjectHostService", "RemoteTransaction",
           "install_remote_objects", "RpcTimeoutError"]
