"""Transactions over external atomic objects.

A CA action "starts a transaction" on the external objects it declares when
the first role enters and "commits" it when the action exits with success
(Figure 1 of the paper).  If the action is aborted, the transaction must be
rolled back; if rollback fails for any object the action signals ``ƒ``
instead of ``µ``.

The :class:`TransactionManager` implements that outcome logic; it is used by
the CA-action runtime but can also be driven directly (see the unit tests).
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Dict, Iterable, List, Optional, Set

from ..simkernel.kernel import Kernel
from .atomic_object import AtomicObject, IntegrityError, UndoFailure
from .locks import LockManager, LockMode

_transaction_ids = itertools.count(1)


class TransactionStatus(Enum):
    """Life-cycle states of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"            # rolled back completely (µ is safe)
    FAILED_UNDO = "failed_undo"    # rollback incomplete (must signal ƒ)


class TransactionError(RuntimeError):
    """Raised for protocol misuse (e.g. writing in a finished transaction)."""


class Transaction:
    """Handle for a group of accesses to external atomic objects."""

    def __init__(self, manager: "TransactionManager", transaction_id: str,
                 action_name: str) -> None:
        self.manager = manager
        self.transaction_id = transaction_id
        self.action_name = action_name
        self.status = TransactionStatus.ACTIVE
        self.objects: Set[str] = set()
        self.failed_objects: List[str] = []

    # ------------------------------------------------------------------
    def read(self, object_name: str, key: str):
        """Transactionally read a field of an external object."""
        self._ensure_active()
        obj = self.manager.object(object_name)
        self.objects.add(object_name)
        return obj.read(self.transaction_id, key, now=self.manager.now)

    def write(self, object_name: str, key: str, value) -> None:
        """Transactionally write a field of an external object."""
        self._ensure_active()
        obj = self.manager.object(object_name)
        self.objects.add(object_name)
        obj.write(self.transaction_id, key, value, now=self.manager.now)

    def repair(self, object_name: str, repair_function) -> None:
        """Forward-recover one object's state (used by exception handlers)."""
        self._ensure_active()
        obj = self.manager.object(object_name)
        self.objects.add(object_name)
        obj.repair(self.transaction_id, repair_function)

    def lock(self, object_name: str, mode: LockMode = LockMode.EXCLUSIVE):
        """Acquire a lock on an object; returns the grant event."""
        self._ensure_active()
        self.objects.add(object_name)
        return self.manager.locks.acquire(object_name, self.transaction_id, mode)

    def notify_exception(self, exception_name: str) -> None:
        """Inform every touched object of an exception (algorithm step)."""
        for object_name in sorted(self.objects):
            self.manager.object(object_name).notify_exception(
                self.transaction_id, self.action_name, exception_name,
                now=self.manager.now)

    # ------------------------------------------------------------------
    def commit(self) -> None:
        """Commit all touched objects; raises IntegrityError on violation."""
        self._ensure_active()
        try:
            for object_name in sorted(self.objects):
                self.manager.object(object_name).commit(self.transaction_id)
        except IntegrityError:
            self.status = TransactionStatus.ACTIVE
            raise
        self.status = TransactionStatus.COMMITTED
        self.manager.locks.release_all(self.transaction_id)
        self.manager._finished(self)

    def abort(self) -> TransactionStatus:
        """Roll back all touched objects.

        Returns :data:`TransactionStatus.ABORTED` when every object undid
        its changes, and :data:`TransactionStatus.FAILED_UNDO` when at least
        one undo failed — the caller must then signal ``ƒ`` rather than
        ``µ``.
        """
        if self.status is not TransactionStatus.ACTIVE:
            return self.status
        failed: List[str] = []
        for object_name in sorted(self.objects):
            try:
                self.manager.object(object_name).undo(self.transaction_id)
            except UndoFailure:
                failed.append(object_name)
        self.failed_objects = failed
        self.status = (TransactionStatus.FAILED_UNDO if failed
                       else TransactionStatus.ABORTED)
        self.manager.locks.release_all(self.transaction_id)
        self.manager._finished(self)
        return self.status

    # ------------------------------------------------------------------
    def _ensure_active(self) -> None:
        if self.status is not TransactionStatus.ACTIVE:
            raise TransactionError(
                f"transaction {self.transaction_id} is {self.status.value}")

    def __repr__(self) -> str:
        return (f"<Transaction {self.transaction_id} action={self.action_name} "
                f"{self.status.value} objects={sorted(self.objects)}>")


class TransactionManager:
    """Registry of atomic objects plus transaction factory.

    A single manager is shared by all nodes in the simulated system; this is
    a simplification (a real system would distribute it), but the paper's
    algorithms never rely on the transaction system being distributed — only
    on its outcome (committed / undone / undo-failed).
    """

    def __init__(self, kernel: Optional[Kernel] = None) -> None:
        self.kernel = kernel
        self.locks = LockManager(kernel) if kernel is not None else None
        self._objects: Dict[str, AtomicObject] = {}
        self.active: Dict[str, Transaction] = {}
        self.finished: List[Transaction] = []

    @property
    def now(self) -> float:
        return self.kernel.now if self.kernel is not None else 0.0

    # ------------------------------------------------------------------
    def register(self, obj: AtomicObject) -> AtomicObject:
        """Add an atomic object to the registry."""
        if obj.name in self._objects:
            raise ValueError(f"object {obj.name!r} already registered")
        self._objects[obj.name] = obj
        return obj

    def create_object(self, name: str, initial_state=None,
                      invariant=None) -> AtomicObject:
        """Create and register an atomic object in one step."""
        return self.register(AtomicObject(name, initial_state, invariant))

    def object(self, name: str) -> AtomicObject:
        """Look up a registered object."""
        try:
            return self._objects[name]
        except KeyError:
            raise KeyError(f"no atomic object named {name!r}") from None

    def objects(self) -> Iterable[AtomicObject]:
        """Iterate over all registered objects."""
        return self._objects.values()

    # ------------------------------------------------------------------
    def begin(self, action_name: str) -> Transaction:
        """Start a new transaction on behalf of ``action_name``."""
        transaction_id = f"txn-{next(_transaction_ids)}"
        transaction = Transaction(self, transaction_id, action_name)
        self.active[transaction_id] = transaction
        return transaction

    def _finished(self, transaction: Transaction) -> None:
        self.active.pop(transaction.transaction_id, None)
        self.finished.append(transaction)

    def __repr__(self) -> str:
        return (f"<TransactionManager objects={len(self._objects)} "
                f"active={len(self.active)}>")
