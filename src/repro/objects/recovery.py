"""Recovery helpers for external atomic objects.

The paper distinguishes *forward* error recovery ("the appropriate exception
handlers may well be able to lead them to new valid states") from *backward*
error recovery (restoring prior states).  This module provides small,
composable helpers that CA-action handlers use to express either strategy
declaratively, plus a :class:`RecoveryPlan` that sequences them over several
objects and reports whether a failure exception ``ƒ`` must be signalled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional

from .transaction import Transaction, TransactionStatus


class RecoveryKind(Enum):
    """The two recovery strategies of the paper plus "leave as is"."""

    FORWARD = "forward"
    BACKWARD = "backward"
    NONE = "none"


@dataclass
class RecoveryStep:
    """One recovery action on one external object."""

    object_name: str
    kind: RecoveryKind
    repair_function: Optional[Callable[[Dict], Dict]] = None

    def validate(self) -> None:
        if self.kind is RecoveryKind.FORWARD and self.repair_function is None:
            raise ValueError(
                f"forward recovery of {self.object_name} needs a repair function")


@dataclass
class RecoveryOutcome:
    """Result of executing a recovery plan."""

    succeeded: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when every step succeeded (no ``ƒ`` needed)."""
        return not self.failed


class RecoveryPlan:
    """An ordered list of recovery steps executed under one transaction.

    Handlers build a plan describing, per external object, whether to repair
    it forward or roll it back; :meth:`execute` runs the plan and reports
    which objects could not be recovered.  The CA-action runtime maps an
    incomplete outcome to the failure exception ``ƒ``.
    """

    def __init__(self, steps: Optional[List[RecoveryStep]] = None) -> None:
        self.steps: List[RecoveryStep] = list(steps or [])

    def repair(self, object_name: str,
               repair_function: Callable[[Dict], Dict]) -> "RecoveryPlan":
        """Add a forward-recovery step (fluent API)."""
        self.steps.append(RecoveryStep(object_name, RecoveryKind.FORWARD,
                                       repair_function))
        return self

    def rollback(self, object_name: str) -> "RecoveryPlan":
        """Add a backward-recovery step (fluent API)."""
        self.steps.append(RecoveryStep(object_name, RecoveryKind.BACKWARD))
        return self

    def leave(self, object_name: str) -> "RecoveryPlan":
        """Explicitly record that an object needs no recovery."""
        self.steps.append(RecoveryStep(object_name, RecoveryKind.NONE))
        return self

    def execute(self, transaction: Transaction) -> RecoveryOutcome:
        """Run every step; never raises, always returns an outcome."""
        outcome = RecoveryOutcome()
        for step in self.steps:
            step.validate()
            try:
                if step.kind is RecoveryKind.FORWARD:
                    transaction.repair(step.object_name, step.repair_function)
                elif step.kind is RecoveryKind.BACKWARD:
                    transaction.manager.object(step.object_name).undo(
                        transaction.transaction_id)
                outcome.succeeded.append(step.object_name)
            except Exception:
                outcome.failed.append(step.object_name)
        return outcome


def outcome_to_interface_exception(transaction: Transaction) -> Optional[str]:
    """Map a finished transaction's status to the exception to signal.

    Returns ``None`` for a committed transaction, ``"mu"`` (µ, undone) for a
    clean abort and ``"failure"`` (ƒ) when the undo was incomplete — the
    special-exception vocabulary used throughout :mod:`repro.core`.
    """
    if transaction.status is TransactionStatus.COMMITTED:
        return None
    if transaction.status is TransactionStatus.ABORTED:
        return "mu"
    if transaction.status is TransactionStatus.FAILED_UNDO:
        return "failure"
    raise ValueError(f"transaction {transaction.transaction_id} is still active")
