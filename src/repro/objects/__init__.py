"""External atomic objects and their transactional machinery.

CA actions manipulate two kinds of objects: *local* objects private to the
action, and *external* objects shared with the rest of the system.  External
objects must preserve the ACID properties; this package implements them with
versioned state, strict two-phase locking, per-transaction working copies,
undo (backward recovery) and repair (forward recovery).
"""

from .atomic_object import (
    AtomicObject,
    ExceptionNotification,
    IntegrityError,
    OperationRecord,
    UndoFailure,
)
from .locks import DeadlockError, LockManager, LockMode
from .recovery import (
    RecoveryKind,
    RecoveryOutcome,
    RecoveryPlan,
    RecoveryStep,
    outcome_to_interface_exception,
)
from .transaction import (
    Transaction,
    TransactionError,
    TransactionManager,
    TransactionStatus,
)

__all__ = [
    "AtomicObject",
    "DeadlockError",
    "ExceptionNotification",
    "IntegrityError",
    "LockManager",
    "LockMode",
    "OperationRecord",
    "RecoveryKind",
    "RecoveryOutcome",
    "RecoveryPlan",
    "RecoveryStep",
    "Transaction",
    "TransactionError",
    "TransactionManager",
    "TransactionStatus",
    "UndoFailure",
    "outcome_to_interface_exception",
]
