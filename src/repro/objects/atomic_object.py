"""External atomic objects.

In the paper's model, objects that are external to a CA action "can hence be
shared with other actions concurrently, must be atomic and individually
responsible for their own integrity".  A CA action accesses them under a
transaction; when an exception is raised inside the action, the external
objects are informed of the exception, and recovery either repairs them
(forward recovery to a *new* valid state) or restores their prior state
(backward recovery / undo).  If neither works the action must signal the
failure exception ``ƒ``.

:class:`AtomicObject` implements exactly that life-cycle:

* ``read``/``write`` record operations against a per-transaction working
  copy (isolation);
* ``commit`` installs the working copy as the new committed state
  (durability within the simulated world);
* ``undo`` discards the working copy, restoring the committed state —
  unless an injected *undo fault* makes the undo fail, which is how the
  test-suite exercises the ``ƒ`` signalling path;
* ``repair`` applies a caller-supplied repair function to the working copy,
  modelling forward recovery by handlers;
* ``notify_exception`` records exception notifications, mirroring the
  algorithm step "inform external objects (used by Ti within A) of the
  exception".
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


class UndoFailure(RuntimeError):
    """Raised when an atomic object cannot restore its prior state."""


class IntegrityError(RuntimeError):
    """Raised when an invariant check on the object's state fails."""


@dataclass
class ExceptionNotification:
    """Record of an exception reported to the object by a CA action role."""

    transaction_id: str
    action_name: str
    exception_name: str
    time: float


@dataclass
class OperationRecord:
    """One read or write performed under a transaction (the object's log)."""

    transaction_id: str
    operation: str
    key: str
    value: Any = None
    time: float = 0.0


class AtomicObject:
    """A named, shared object with transactional state.

    Parameters
    ----------
    name:
        Unique object name.
    initial_state:
        Mapping holding the initial committed state.
    invariant:
        Optional callable ``state -> bool``; checked at commit time and by
        :meth:`check_integrity`.  A failing invariant models the situation
        in which "one or more external shared objects fail to reach a
        correct state" and a failure exception must be signalled.
    """

    def __init__(self, name: str, initial_state: Optional[Dict[str, Any]] = None,
                 invariant: Optional[Callable[[Dict[str, Any]], bool]] = None) -> None:
        self.name = name
        self._committed: Dict[str, Any] = dict(initial_state or {})
        self._working: Dict[str, Dict[str, Any]] = {}
        self._invariant = invariant
        self._history: List[Dict[str, Any]] = [copy.deepcopy(self._committed)]
        self.operations: List[OperationRecord] = []
        self.notifications: List[ExceptionNotification] = []
        #: Transactions whose undo should fail (fault injection for ƒ tests).
        self._undo_faults: set = set()
        self.version = 0

    # ------------------------------------------------------------------
    # Transactional access
    # ------------------------------------------------------------------
    def read(self, transaction_id: str, key: str, now: float = 0.0) -> Any:
        """Read ``key`` as seen by ``transaction_id``."""
        self.operations.append(OperationRecord(transaction_id, "read", key,
                                               time=now))
        working = self._working.get(transaction_id)
        if working is not None and key in working:
            return working[key]
        if key not in self._committed:
            raise KeyError(f"{self.name}: no such field {key!r}")
        return self._committed[key]

    def write(self, transaction_id: str, key: str, value: Any,
              now: float = 0.0) -> None:
        """Write ``key`` in the working copy of ``transaction_id``."""
        self.operations.append(OperationRecord(transaction_id, "write", key,
                                               value, time=now))
        self._working.setdefault(transaction_id, {})[key] = value

    def snapshot(self) -> Dict[str, Any]:
        """Return a copy of the committed state."""
        return copy.deepcopy(self._committed)

    def committed_value(self, key: str) -> Any:
        """Read a field of the committed state directly (no transaction)."""
        return self._committed[key]

    def dirty(self, transaction_id: str) -> bool:
        """True if the transaction has uncommitted writes on this object."""
        return bool(self._working.get(transaction_id))

    # ------------------------------------------------------------------
    # Outcomes
    # ------------------------------------------------------------------
    def commit(self, transaction_id: str) -> None:
        """Install the transaction's working copy as the committed state."""
        working = self._working.pop(transaction_id, None)
        if not working:
            return
        candidate = dict(self._committed)
        candidate.update(working)
        if self._invariant is not None and not self._invariant(candidate):
            # Put the working copy back so the caller can still undo.
            self._working[transaction_id] = working
            raise IntegrityError(
                f"{self.name}: commit of {transaction_id} violates invariant")
        self._committed = candidate
        self.version += 1
        self._history.append(copy.deepcopy(self._committed))

    def undo(self, transaction_id: str) -> None:
        """Discard the transaction's working copy (backward recovery).

        Raises
        ------
        UndoFailure
            If an undo fault was injected for this transaction (or for all
            transactions), modelling the paper's "undo is not always
            possible".
        """
        if transaction_id in self._undo_faults or None in self._undo_faults:
            raise UndoFailure(
                f"{self.name}: undo of {transaction_id} failed (injected fault)")
        self._working.pop(transaction_id, None)

    def repair(self, transaction_id: str,
               repair_function: Callable[[Dict[str, Any]], Dict[str, Any]]) -> None:
        """Apply forward recovery: transform the working copy into a new state.

        ``repair_function`` receives the merged view (committed state
        overlaid with the working copy) and returns the repaired state,
        which replaces the working copy entirely.
        """
        merged = dict(self._committed)
        merged.update(self._working.get(transaction_id, {}))
        repaired = repair_function(merged)
        if not isinstance(repaired, dict):
            raise TypeError("repair_function must return a dict state")
        self._working[transaction_id] = dict(repaired)

    def check_integrity(self, transaction_id: Optional[str] = None) -> bool:
        """Evaluate the invariant against the (merged) state."""
        if self._invariant is None:
            return True
        state = dict(self._committed)
        if transaction_id is not None:
            state.update(self._working.get(transaction_id, {}))
        return bool(self._invariant(state))

    # ------------------------------------------------------------------
    # Exception protocol and fault injection
    # ------------------------------------------------------------------
    def notify_exception(self, transaction_id: str, action_name: str,
                         exception_name: str, now: float = 0.0) -> None:
        """Record that an exception was raised by an action using this object."""
        self.notifications.append(ExceptionNotification(
            transaction_id, action_name, exception_name, now))

    def inject_undo_fault(self, transaction_id: Optional[str] = None) -> None:
        """Make future undo attempts fail.

        With ``transaction_id`` the fault is scoped to that transaction;
        without it every undo on this object fails.
        """
        self._undo_faults.add(transaction_id)

    def clear_undo_fault(self, transaction_id: Optional[str] = None) -> None:
        """Remove an injected undo fault."""
        self._undo_faults.discard(transaction_id)

    @property
    def history(self) -> List[Dict[str, Any]]:
        """All committed states, oldest first (index 0 is the initial state)."""
        return list(self._history)

    def __repr__(self) -> str:
        return (f"<AtomicObject {self.name} v{self.version} "
                f"fields={sorted(self._committed)}>")
