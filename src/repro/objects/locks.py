"""Lock manager for external atomic objects.

External objects shared between CA actions must be *atomic* — "individually
responsible for their own integrity" — which the paper delegates to an
associated transaction mechanism guaranteeing the ACID properties.  The lock
manager implements strict two-phase locking with reader/writer modes; locks
are held until the owning transaction commits or aborts.

Waiting is modelled with kernel events so that a blocked role consumes
virtual time rather than spinning.
"""

from __future__ import annotations

from collections import deque
from enum import Enum
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..simkernel.events import Event
from ..simkernel.kernel import Kernel


class LockMode(Enum):
    """Lock compatibility modes."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"


class DeadlockError(RuntimeError):
    """Raised when a lock request would create a wait-for cycle."""


class LockManager:
    """Per-object reader/writer locks with transaction-scoped ownership.

    The manager performs simple deadlock *avoidance* by detecting wait-for
    cycles at request time and failing the request that would close the
    cycle.  Failed requests surface as :class:`DeadlockError` on the
    returned event, which upper layers convert into an exception raised
    inside the requesting CA action.
    """

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        #: Granted locks: object name -> list of (transaction id, mode).
        self._granted: Dict[str, List[Tuple[str, LockMode]]] = {}
        #: Wait queues: object name -> FIFO of pending requests.
        self._waiting: Dict[str, Deque[Tuple[str, LockMode, Event]]] = {}
        #: Wait-for graph edges: waiter -> set of holders it waits on.
        self._wait_for: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    def acquire(self, object_name: str, transaction_id: str,
                mode: LockMode) -> Event:
        """Request a lock; the returned event fires when it is granted."""
        event = self.kernel.event()
        granted = self._granted.setdefault(object_name, [])

        if self._compatible(granted, transaction_id, mode) and not \
                self._waiting.get(object_name):
            self._grant(object_name, transaction_id, mode)
            event.succeed()
            return event

        holders = {tid for tid, _mode in granted if tid != transaction_id}
        if self._would_deadlock(transaction_id, holders):
            event.fail(DeadlockError(
                f"transaction {transaction_id} would deadlock waiting for "
                f"{object_name}"))
            return event

        self._wait_for.setdefault(transaction_id, set()).update(holders)
        self._waiting.setdefault(object_name, deque()).append(
            (transaction_id, mode, event))
        return event

    def release_all(self, transaction_id: str) -> None:
        """Release every lock held by ``transaction_id`` (commit/abort time)."""
        self._wait_for.pop(transaction_id, None)
        for object_name in list(self._granted):
            granted = self._granted[object_name]
            remaining = [(tid, mode) for tid, mode in granted
                         if tid != transaction_id]
            if len(remaining) != len(granted):
                self._granted[object_name] = remaining
                self._promote_waiters(object_name)
        # Drop any still-queued requests from this transaction (it is gone).
        for object_name, queue in self._waiting.items():
            self._waiting[object_name] = deque(
                (tid, mode, ev) for tid, mode, ev in queue
                if tid != transaction_id)

    def holders(self, object_name: str) -> List[Tuple[str, LockMode]]:
        """Return the (transaction, mode) pairs currently holding the lock."""
        return list(self._granted.get(object_name, ()))

    def is_locked(self, object_name: str) -> bool:
        """True if any transaction holds a lock on the object."""
        return bool(self._granted.get(object_name))

    # ------------------------------------------------------------------
    def _compatible(self, granted: List[Tuple[str, LockMode]],
                    transaction_id: str, mode: LockMode) -> bool:
        for holder, held_mode in granted:
            if holder == transaction_id:
                continue
            if mode is LockMode.EXCLUSIVE or held_mode is LockMode.EXCLUSIVE:
                return False
        return True

    def _grant(self, object_name: str, transaction_id: str,
               mode: LockMode) -> None:
        granted = self._granted.setdefault(object_name, [])
        # Lock upgrade: replace a shared grant with an exclusive one.
        granted[:] = [(tid, held) for tid, held in granted
                      if tid != transaction_id]
        granted.append((transaction_id, mode))

    def _promote_waiters(self, object_name: str) -> None:
        queue = self._waiting.get(object_name)
        if not queue:
            return
        granted = self._granted.setdefault(object_name, [])
        while queue:
            transaction_id, mode, event = queue[0]
            if not self._compatible(granted, transaction_id, mode):
                break
            queue.popleft()
            self._grant(object_name, transaction_id, mode)
            self._wait_for.pop(transaction_id, None)
            if event.callbacks is not None and not event.triggered:
                event.succeed()

    def _would_deadlock(self, requester: str, holders: Set[str]) -> bool:
        """Detect whether waiting on ``holders`` closes a wait-for cycle."""
        stack = list(holders)
        seen: Set[str] = set()
        while stack:
            current = stack.pop()
            if current == requester:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._wait_for.get(current, ()))
        return False
