"""Lock manager for external atomic objects.

External objects shared between CA actions must be *atomic* — "individually
responsible for their own integrity" — which the paper delegates to an
associated transaction mechanism guaranteeing the ACID properties.  The lock
manager implements strict two-phase locking with reader/writer modes; locks
are held until the owning transaction commits or aborts.

Waiting is modelled with kernel events so that a blocked role consumes
virtual time rather than spinning.
"""

from __future__ import annotations

from collections import deque
from enum import Enum
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..simkernel.events import Event
from ..simkernel.kernel import Kernel


class LockMode(Enum):
    """Lock compatibility modes."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"


class DeadlockError(RuntimeError):
    """Raised when a lock request would create a wait-for cycle."""


def _modes_compatible(one: LockMode, other: LockMode) -> bool:
    """True when locks in the two modes can be held concurrently."""
    return one is LockMode.SHARED and other is LockMode.SHARED


class LockManager:
    """Per-object reader/writer locks with transaction-scoped ownership.

    The manager performs simple deadlock *avoidance* by detecting wait-for
    cycles at request time and failing the request that would close the
    cycle.  Failed requests surface as :class:`DeadlockError` on the
    returned event, which upper layers convert into an exception raised
    inside the requesting CA action.
    """

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        #: Granted locks: object name -> list of (transaction id, mode).
        self._granted: Dict[str, List[Tuple[str, LockMode]]] = {}
        #: Wait queues: object name -> FIFO of pending requests.
        self._waiting: Dict[str, Deque[Tuple[str, LockMode, Event]]] = {}
        #: Wait-for graph edges: waiter -> set of holders it waits on.
        self._wait_for: Dict[str, Set[str]] = {}
        #: The attached observation sink (``repro.obs``), or ``None`` when
        #: observability is off (one None check per lock transition).
        self._obs = None

    # ------------------------------------------------------------------
    def acquire(self, object_name: str, transaction_id: str,
                mode: LockMode) -> Event:
        """Request a lock; the returned event fires when it is granted."""
        event = self.kernel.event()
        granted = self._granted.setdefault(object_name, [])

        if self._compatible(granted, transaction_id, mode) and not \
                self._waiting.get(object_name):
            self._grant(object_name, transaction_id, mode)
            if self._obs is not None:
                self._obs.lock_event("lock.granted", object_name,
                                     transaction_id, mode.value)
            event.succeed()
            return event

        # A queued request waits on the current holders *and* on every
        # request queued ahead of it (FIFO promotion grants those first),
        # so the wait-for graph must include both — and must be rebuilt
        # from the live queues, because grants since the original request
        # change who blocks whom.  Checking only the holders known at
        # request time misses cycles that close through the queues, which
        # is a silent permanent hang rather than a recoverable refusal.
        self._rebuild_wait_for()
        blockers = self._blockers(object_name, transaction_id, mode)
        if self._would_deadlock(transaction_id, blockers):
            if self._obs is not None:
                self._obs.lock_event("lock.deadlock", object_name,
                                     transaction_id, mode.value,
                                     blockers=sorted(blockers))
            event.fail(DeadlockError(
                f"transaction {transaction_id} would deadlock waiting for "
                f"{object_name}"))
            return event

        self._wait_for.setdefault(transaction_id, set()).update(blockers)
        self._waiting.setdefault(object_name, deque()).append(
            (transaction_id, mode, event))
        if self._obs is not None:
            self._obs.lock_event("lock.waiting", object_name,
                                 transaction_id, mode.value,
                                 blockers=sorted(blockers))
        return event

    def _blockers(self, object_name: str, transaction_id: str,
                  mode: LockMode) -> Set[str]:
        """Transactions a new request on ``object_name`` would wait on.

        Mode-aware: only holders and queued-ahead requesters whose mode is
        *incompatible* with the request block it.  A shared request behind
        shared holders and shared queued requests waits on none of them —
        FIFO promotion grants the whole run of compatible requests
        together, so counting compatible entries (the old, mode-blind
        behaviour) manufactured phantom wait-for edges and refused
        reader/reader queues as deadlocks.
        """
        blockers = {tid for tid, held in self._granted.get(object_name, ())
                    if tid != transaction_id
                    and not _modes_compatible(mode, held)}
        for tid, ahead_mode, _event in self._waiting.get(object_name, ()):
            if tid != transaction_id and \
                    not _modes_compatible(mode, ahead_mode):
                blockers.add(tid)
        return blockers

    def _rebuild_wait_for(self) -> None:
        """Re-derive the wait-for graph from the current queues.

        Each queued request waits on the incompatible holders and the
        incompatible requests queued ahead of it (compatible entries are
        granted alongside it by FIFO promotion, so they never block).
        """
        graph: Dict[str, Set[str]] = {}
        for object_name, queue in self._waiting.items():
            ahead: List[Tuple[str, LockMode]] = \
                list(self._granted.get(object_name, ()))
            for tid, mode, _event in queue:
                graph.setdefault(tid, set()).update(
                    blocker for blocker, held in ahead
                    if blocker != tid and not _modes_compatible(mode, held))
                ahead.append((tid, mode))
        self._wait_for = graph

    def release_all(self, transaction_id: str) -> None:
        """Release every lock held by ``transaction_id`` (commit/abort time)."""
        if self._obs is not None:
            self._obs.lock_event("lock.released", None, transaction_id)
        self._wait_for.pop(transaction_id, None)
        for object_name in list(self._granted):
            granted = self._granted[object_name]
            remaining = [(tid, mode) for tid, mode in granted
                         if tid != transaction_id]
            if len(remaining) != len(granted):
                self._granted[object_name] = remaining
                self._promote_waiters(object_name)
        # Drop any still-queued requests from this transaction (it is
        # gone), then re-promote: the dropped entry may have been the only
        # thing ahead of a now-grantable request (e.g. a reader queued
        # behind this transaction's writer request), and promotion is
        # otherwise only triggered by releases of *held* locks.
        for object_name, queue in list(self._waiting.items()):
            remaining = deque((tid, mode, ev) for tid, mode, ev in queue
                              if tid != transaction_id)
            if len(remaining) != len(queue):
                self._waiting[object_name] = remaining
                self._promote_waiters(object_name)

    def holders(self, object_name: str) -> List[Tuple[str, LockMode]]:
        """Return the (transaction, mode) pairs currently holding the lock."""
        return list(self._granted.get(object_name, ()))

    def is_locked(self, object_name: str) -> bool:
        """True if any transaction holds a lock on the object."""
        return bool(self._granted.get(object_name))

    def all_holders(self) -> Dict[str, List[Tuple[str, str]]]:
        """Every held lock, as plain data: object → [(txn id, mode value)].

        Objects with no current holder are omitted; this is the oracle
        view for the locks-released invariant.
        """
        return {name: [(tid, mode.value) for tid, mode in granted]
                for name, granted in sorted(self._granted.items())
                if granted}

    def all_waiters(self) -> Dict[str, List[str]]:
        """Every queued lock request, as plain data: object → [txn id]."""
        return {name: [tid for tid, _mode, _event in queue]
                for name, queue in sorted(self._waiting.items())
                if queue}

    # ------------------------------------------------------------------
    def _compatible(self, granted: List[Tuple[str, LockMode]],
                    transaction_id: str, mode: LockMode) -> bool:
        for holder, held_mode in granted:
            if holder == transaction_id:
                continue
            if mode is LockMode.EXCLUSIVE or held_mode is LockMode.EXCLUSIVE:
                return False
        return True

    def _grant(self, object_name: str, transaction_id: str,
               mode: LockMode) -> None:
        granted = self._granted.setdefault(object_name, [])
        # Lock upgrade: replace a shared grant with an exclusive one.
        granted[:] = [(tid, held) for tid, held in granted
                      if tid != transaction_id]
        granted.append((transaction_id, mode))

    def _promote_waiters(self, object_name: str) -> None:
        queue = self._waiting.get(object_name)
        if not queue:
            return
        granted = self._granted.setdefault(object_name, [])
        while queue:
            transaction_id, mode, event = queue[0]
            if not self._compatible(granted, transaction_id, mode):
                break
            queue.popleft()
            self._grant(object_name, transaction_id, mode)
            self._wait_for.pop(transaction_id, None)
            if self._obs is not None:
                self._obs.lock_event("lock.granted", object_name,
                                     transaction_id, mode.value,
                                     promoted=True)
            if event.callbacks is not None and not event.triggered:
                event.succeed()

    def _would_deadlock(self, requester: str, holders: Set[str]) -> bool:
        """Detect whether waiting on ``holders`` closes a wait-for cycle."""
        stack = list(holders)
        seen: Set[str] = set()
        while stack:
            current = stack.pop()
            if current == requester:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._wait_for.get(current, ()))
        return False
