"""The scenario systems the fault-space explorer runs plans against.

A target is a deterministic builder: given a fault plan and a schedule
seed it produces a fully-spawned
:class:`~repro.runtime.system.DistributedCASystem`.  All randomness lives
in the plan, so ``(target, plan)`` fixes the run exactly.

Two targets ship by default:

* ``nested_abort`` — the nested-action-with-abortion-window shape in which
  the lost-Commit race of PR 2 lived: T2 raises and resolves inside the
  nested action while T1's outer exception forces T2/T3 to abort it, so
  any protocol message delayed into the abortion window stresses the
  abort/resolution interleaving;
* ``concurrent_raises`` — three threads raise different exceptions nearly
  simultaneously (the Figure 12 shape), the classic workload for the
  resolution algorithm itself and the natural one for differential
  comparison against the baseline algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..core.action import CAActionDefinition, RoleDefinition
from ..core.exception_graph import generate_full_graph
from ..core.exceptions import internal
from ..core.handlers import HandlerMap, HandlerResult
from ..net.faults import FaultPlan
from ..net.latency import ConstantLatency
from ..runtime.config import RuntimeConfig
from ..runtime.system import DistributedCASystem
from ..simkernel.kernel import Kernel

#: Signature of a target builder.
Builder = Callable[[FaultPlan, Optional[int], str], DistributedCASystem]


@dataclass(frozen=True)
class ExplorationTarget:
    """A named, explorable scenario."""

    name: str
    builder: Builder
    threads: Tuple[str, ...]
    description: str = ""

    def build(self, faults: FaultPlan, tie_seed: Optional[int] = None,
              algorithm: str = "ours") -> DistributedCASystem:
        return self.builder(faults, tie_seed, algorithm)


# ----------------------------------------------------------------------
# nested_abort: the abortion-window scenario
# ----------------------------------------------------------------------
OUTER_FAULT = internal("outer_fault")
ABORT_RESIDUE = internal("abort_residue")
INNER_FAULT = internal("inner_fault")


def build_nested_abort(faults: FaultPlan, tie_seed: Optional[int] = None,
                       algorithm: str = "ours") -> DistributedCASystem:
    """Nested action aborted while its resolution is still in flight.

    ``T1``–``T3`` run ``Outer``; ``T2``/``T3`` enter the nested ``Inner``.
    ``T2`` raises in ``Inner`` at t=1 and (as the largest exceptional
    thread) resolves it; its handler is slow, so when ``T1`` raises in
    ``Outer`` at t=2 both nested participants abort ``Inner`` — ``T3``
    possibly while the Inner ``Commit`` is still travelling toward it.
    The abortion handler signals ``abort_residue``, and all three threads
    recover through the ``abort_residue&outer_fault`` cover.
    """
    config = RuntimeConfig(algorithm=algorithm, abort_time=3.0,
                           resolution_time=0.0)
    system = DistributedCASystem(config, latency=ConstantLatency(0.1),
                                 faults=faults,
                                 kernel=Kernel(tie_seed=tie_seed),
                                 keep_trace=True)
    system.add_threads(["T1", "T2", "T3"])

    outer_graph = generate_full_graph([OUTER_FAULT, ABORT_RESIDUE],
                                      action_name="Outer")
    inner_graph = generate_full_graph([INNER_FAULT], action_name="Inner")

    def outer_handler(ctx):
        yield ctx.delay(0.2)
        return HandlerResult.success()

    def slow_inner_handler(ctx):
        # Keeps the nested participants inside the (abort-interruptible)
        # handling phase when the outer exception arrives.
        yield ctx.delay(10.0)
        return HandlerResult.success()

    def signal_residue(ctx):
        return HandlerResult.signal(ABORT_RESIDUE)

    def inner_raiser(ctx):
        yield ctx.delay(1.0)
        ctx.raise_exception(INNER_FAULT)

    def inner_worker(ctx):
        yield ctx.delay(50.0)

    inner = CAActionDefinition(
        "Inner",
        [RoleDefinition("b2", inner_raiser,
                        HandlerMap(default_handler=slow_inner_handler)),
         RoleDefinition("b3", inner_worker,
                        HandlerMap(abortion_handler=signal_residue,
                                   default_handler=slow_inner_handler))],
        internal_exceptions=[INNER_FAULT], graph=inner_graph, parent="Outer")

    def outer_raiser(ctx):
        yield ctx.delay(2.0)
        ctx.raise_exception(OUTER_FAULT)

    def nesting_role(role):
        def body(ctx):
            yield ctx.delay(0.1)
            report = yield from ctx.perform_nested("Inner", role)
            return report
        return body

    outer = CAActionDefinition(
        "Outer",
        [RoleDefinition("a1", outer_raiser,
                        HandlerMap(default_handler=outer_handler)),
         RoleDefinition("a2", nesting_role("b2"),
                        HandlerMap(default_handler=outer_handler)),
         RoleDefinition("a3", nesting_role("b3"),
                        HandlerMap(default_handler=outer_handler))],
        internal_exceptions=[OUTER_FAULT, ABORT_RESIDUE], graph=outer_graph)

    system.define_action(outer)
    system.define_action(inner)
    system.bind("Outer", {"a1": "T1", "a2": "T2", "a3": "T3"})
    system.bind("Inner", {"b2": "T2", "b3": "T3"})

    for thread, role in (("T1", "a1"), ("T2", "a2"), ("T3", "a3")):
        system.spawn(thread, _single_action_program("Outer", role))
    return system


# ----------------------------------------------------------------------
# concurrent_raises: the Figure 12 shape
# ----------------------------------------------------------------------
CONCURRENT_FAULTS = tuple(internal(f"fault_{i}") for i in (1, 2, 3))


def build_concurrent_raises(faults: FaultPlan, tie_seed: Optional[int] = None,
                            algorithm: str = "ours") -> DistributedCASystem:
    """Three threads raise different exceptions nearly simultaneously."""
    config = RuntimeConfig(algorithm=algorithm, resolution_time=0.1)
    system = DistributedCASystem(config, latency=ConstantLatency(0.1),
                                 faults=faults,
                                 kernel=Kernel(tie_seed=tie_seed),
                                 keep_trace=True)
    threads = ["T1", "T2", "T3"]
    system.add_threads(threads)

    graph = generate_full_graph(list(CONCURRENT_FAULTS),
                                action_name="Concurrent")

    def resolving_handler(ctx):
        yield ctx.delay(0.2)
        return HandlerResult.success()

    def make_raising_role(index):
        def body(ctx):
            yield ctx.delay(1.0 + 0.001 * index)
            ctx.raise_exception(CONCURRENT_FAULTS[index])
        return body

    roles = [RoleDefinition(f"r{i + 1}", make_raising_role(i),
                            HandlerMap(default_handler=resolving_handler))
             for i in range(3)]
    action = CAActionDefinition("Concurrent", roles,
                                internal_exceptions=list(CONCURRENT_FAULTS),
                                graph=graph)
    system.define_action(action)
    system.bind("Concurrent", {f"r{i + 1}": threads[i] for i in range(3)})

    for i, thread in enumerate(threads):
        system.spawn(thread, _single_action_program("Concurrent", f"r{i + 1}"))
    return system


def _single_action_program(action: str, role: str):
    def program(ctx):
        report = yield from ctx.perform_action(action, role)
        return report
    return program


#: The default target registry.
TARGETS: Dict[str, ExplorationTarget] = {
    target.name: target for target in (
        ExplorationTarget(
            "nested_abort", build_nested_abort, ("T1", "T2", "T3"),
            "nested action aborted while its resolution is in flight"),
        ExplorationTarget(
            "concurrent_raises", build_concurrent_raises, ("T1", "T2", "T3"),
            "three threads raise different exceptions simultaneously"),
    )
}


def get_target(name_or_target) -> ExplorationTarget:
    """Resolve a target given by name or already-constructed object."""
    if isinstance(name_or_target, ExplorationTarget):
        return name_or_target
    try:
        return TARGETS[name_or_target]
    except KeyError:
        raise KeyError(f"unknown exploration target {name_or_target!r}; "
                       f"registered: {sorted(TARGETS)}") from None
