"""Systematic fault-space exploration with deterministic replay.

The paper's correctness claims — every participant resolves to the same
covering exception, no thread is left stranded suspended, nested abortion
is atomic — hold over *all* legal message timings and schedules, not just
the ones the hand-written scenarios happen to produce.  This package
mechanizes the search over that space:

* :mod:`~repro.explore.plan` — :class:`ExplorationPlan`, a serializable
  ``(fault directives, schedule-perturbation seed)`` pair; every run is a
  pure function of ``(target, plan)``;
* :mod:`~repro.explore.generator` — :class:`FaultPlanGenerator`, seeded
  sampling of plans from the drop/corrupt/delay/crash vocabulary;
* :mod:`~repro.explore.targets` — the scenario systems under exploration;
* :mod:`~repro.explore.monitor` — :class:`InvariantMonitor`, which probes
  the runtime and evaluates the oracle catalogue of
  :mod:`repro.core.oracles` after every run;
* :mod:`~repro.explore.trace` — byte-identical canonical traces and
  digests for deterministic replay checking;
* :mod:`~repro.explore.explorer` — :class:`Explorer`, the budgeted sweep
  (also exposed as the scenario-engine workload ``"explore"``);
* :mod:`~repro.explore.shrink` — delta-debugging reduction of a failing
  plan to a minimal reproducer, emitted as a ready-to-paste pytest.
"""

from .explorer import CaseResult, Explorer, ExplorationReport, run_case
from .generator import FaultPlanGenerator
from .monitor import InvariantMonitor
from .plan import ExplorationPlan
from .shrink import ShrinkResult, shrink_plan, to_pytest_source
from .targets import TARGETS, ExplorationTarget
from .trace import TraceRecorder, canonical_trace, trace_digest

__all__ = [
    "CaseResult",
    "ExplorationPlan",
    "ExplorationReport",
    "ExplorationTarget",
    "Explorer",
    "FaultPlanGenerator",
    "InvariantMonitor",
    "ShrinkResult",
    "TARGETS",
    "TraceRecorder",
    "canonical_trace",
    "run_case",
    "shrink_plan",
    "to_pytest_source",
    "trace_digest",
]
