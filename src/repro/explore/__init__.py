"""Systematic fault-space exploration with deterministic replay.

The paper's correctness claims — every participant resolves to the same
covering exception, no thread is left stranded suspended, nested abortion
is atomic — hold over *all* legal message timings and schedules, not just
the ones the hand-written scenarios happen to produce.  This package
mechanizes the search over that space:

* :mod:`~repro.explore.plan` — :class:`ExplorationPlan`, a serializable
  ``(fault directives, schedule-perturbation seed)`` pair; every run is a
  pure function of ``(target, plan)``;
* :mod:`~repro.explore.generator` — :class:`FaultPlanGenerator`, seeded
  sampling of plans from the drop/corrupt/delay/crash vocabulary;
* :mod:`~repro.explore.targets` — the scenario systems under exploration;
* :mod:`~repro.explore.monitor` — :class:`InvariantMonitor`, which probes
  the runtime and evaluates the oracle catalogue of
  :mod:`repro.core.oracles` after every run;
* :mod:`~repro.explore.trace` — byte-identical canonical traces and
  digests for deterministic replay checking;
* :mod:`~repro.explore.explorer` — :class:`Explorer`, the budgeted sweep
  (also exposed as the scenario-engine workload ``"explore"``);
* :mod:`~repro.explore.shrink` — delta-debugging reduction of a failing
  plan to a minimal reproducer, emitted as a ready-to-paste pytest;
* :mod:`~repro.explore.mutate` — :class:`PlanMutator`, seeded
  deterministic mutations of existing plans;
* :mod:`~repro.explore.corpus` — :class:`CorpusSearch`, coverage-guided
  generational search steered by trace-digest novelty over a persisted
  :class:`Corpus` (also the scenario-engine workload ``"explore_corpus"``
  and the ``python -m repro.explore`` CLI).
"""

from .corpus import (
    Corpus,
    CorpusEntry,
    CorpusSearch,
    CorpusSearchReport,
    run_plans_chunk,
)
from .explorer import CaseResult, Explorer, ExplorationReport, run_case
from .generator import FaultPlanGenerator
from .monitor import InvariantMonitor
from .mutate import PlanMutator
from .plan import ExplorationPlan
from .shrink import ShrinkResult, shrink_plan, to_pytest_source
from .targets import TARGETS, ExplorationTarget
from .trace import TraceRecorder, canonical_trace, trace_digest

__all__ = [
    "CaseResult",
    "Corpus",
    "CorpusEntry",
    "CorpusSearch",
    "CorpusSearchReport",
    "ExplorationPlan",
    "ExplorationReport",
    "ExplorationTarget",
    "Explorer",
    "FaultPlanGenerator",
    "InvariantMonitor",
    "PlanMutator",
    "ShrinkResult",
    "TARGETS",
    "TraceRecorder",
    "canonical_trace",
    "run_case",
    "run_plans_chunk",
    "shrink_plan",
    "to_pytest_source",
    "trace_digest",
]
