"""Delta-debugging reduction of failing plans to minimal reproducers.

Given a failing :class:`~repro.explore.plan.ExplorationPlan` and a
predicate (re-running the plan and returning its violations), the
shrinker greedily:

1. removes directives one at a time, to a fixed point — any directive
   whose removal keeps the failure is noise;
2. drops the schedule-perturbation seed if the faults alone suffice, and
   otherwise normalises it to the smallest equivalent value so two
   shrink sessions of the same bug converge on the same reproducer;
3. simplifies directive fields — a per-nth delay becomes a per-type or
   whole-link delay when the failure does not depend on the ordinal, and
   a timed crash becomes an immediate one — so the reproducer names the
   *mechanism* (which message class must be late) rather than a
   coincidental message index;
4. halves the magnitude of delay directives while the failure persists,
   so the reproducer documents roughly *how much* delay is needed;
5. re-runs the removal pass, since simplification can make a surviving
   directive redundant.

Because runs are deterministic, every candidate evaluation is exact: a
plan either reproduces the failure or it does not, and the result is a
minimal reproducer rather than a smaller probability cloud.
:func:`to_pytest_source` renders the reduced plan as a self-contained
pytest module, ready to paste into ``tests/`` as a regression.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator, List, Sequence

from ..core.oracles import OracleViolation
from ..net.faults import FaultDirective
from .generator import DEFAULT_MESSAGE_TYPES
from .plan import ExplorationPlan

#: A shrink predicate: run the plan, return its violations (empty = passes).
Predicate = Callable[[ExplorationPlan], List[OracleViolation]]

#: Canonical schedule-perturbation seeds, tried smallest-first when the
#: failure needs *a* perturbation but not the sampled 32-bit one.
CANONICAL_TIE_SEEDS = (0, 1, 2)


def _simpler_variants(directive: FaultDirective,
                      message_types: Sequence[str]
                      ) -> Iterator[FaultDirective]:
    """Strictly simpler rewrites of one directive, best candidate first.

    "Simpler" means fewer incidental details: a per-nth delay pinned to a
    message ordinal generalises to a per-type delay (naming the protocol
    message that must be late) or a whole-link delay; a timed crash
    generalises to an immediate one.  Each candidate is only kept if the
    failure survives the rewrite.
    """
    if directive.kind == "delay_nth":
        for type_name in message_types:
            yield FaultDirective("delay_type", source=directive.source,
                                 destination=directive.destination,
                                 type_name=type_name, extra=directive.extra)
        yield FaultDirective("delay_link", source=directive.source,
                             destination=directive.destination,
                             extra=directive.extra)
    elif directive.kind == "crash" and directive.at_time is not None:
        yield FaultDirective("crash", node=directive.node)


@dataclass
class ShrinkResult:
    """Outcome of a shrink session."""

    original: ExplorationPlan
    reduced: ExplorationPlan
    violations: List[OracleViolation]
    evaluations: int

    @property
    def removed_directives(self) -> int:
        return len(self.original) - len(self.reduced)

    def describe(self) -> str:
        return (f"shrunk {len(self.original)} directive(s) to "
                f"{len(self.reduced)} in {self.evaluations} evaluation(s): "
                f"{self.reduced.describe()}")


def shrink_plan(plan: ExplorationPlan, still_failing: Predicate,
                max_evaluations: int = 200,
                message_types: Sequence[str] = DEFAULT_MESSAGE_TYPES
                ) -> ShrinkResult:
    """Reduce ``plan`` while ``still_failing`` keeps reporting violations.

    ``message_types`` are the payload type names the per-nth → per-type
    simplification may target (default: the protocol messages).

    Raises ``ValueError`` if the initial plan does not fail — shrinking a
    passing plan would silently "reduce" it to the empty plan.
    """
    violations = still_failing(plan)
    evaluations = 1
    if not violations:
        raise ValueError("cannot shrink: the plan does not fail")
    current = plan

    def attempt(candidate: ExplorationPlan) -> bool:
        nonlocal current, violations, evaluations
        if evaluations >= max_evaluations:
            return False
        result = still_failing(candidate)
        evaluations += 1
        if result:
            current, violations = candidate, result
            return True
        return False

    def remove_to_fixed_point() -> None:
        progress = True
        while progress and evaluations < max_evaluations:
            progress = False
            for index in range(len(current)):
                if attempt(current.without_directive(index)):
                    progress = True
                    break

    # 1. Remove directives to a fixed point.
    remove_to_fixed_point()

    # 2. Drop the schedule perturbation if the faults alone reproduce;
    #    failing that, normalise it to the smallest equivalent seed so
    #    repeated shrink sessions converge on one canonical reproducer.
    if current.tie_seed is not None:
        attempt(current.without_tie_seed())
    if current.tie_seed is not None:
        for canonical in CANONICAL_TIE_SEEDS:
            if current.tie_seed == canonical:
                break
            if attempt(replace(current, tie_seed=canonical)):
                break

    # 3. Simplify directive fields (per-nth → per-type → per-link, timed
    #    crash → immediate crash) while the failure persists.
    for index in range(len(current)):
        for candidate in _simpler_variants(current.directives[index],
                                           message_types):
            if attempt(current.with_directive(index, candidate)):
                break

    # 4. Halve delay magnitudes while the failure persists.
    for index in range(len(current)):
        for _ in range(4):
            directive = current.directives[index]
            if directive.extra <= 0.0:
                break
            smaller = replace(directive, extra=round(directive.extra / 2, 3))
            if not attempt(current.with_directive(index, smaller)):
                break

    # 5. Simplification can widen a directive's effect (a per-type delay
    #    covers what a sibling per-nth delay did), so retry removal.
    remove_to_fixed_point()

    return ShrinkResult(original=plan, reduced=current,
                        violations=violations, evaluations=evaluations)


def to_pytest_source(target_name: str, plan: ExplorationPlan,
                     violations: Sequence[OracleViolation] = (),
                     test_name: str = "test_explored_fault_plan",
                     algorithm: str = "ours",
                     baselines: Sequence[str] = ()) -> str:
    """Render a ready-to-paste pytest regression for a (reduced) plan.

    The generated test re-runs the exact case the failure was found
    under — same target, plan, algorithm and differential baselines — and
    asserts the oracle catalogue holds: it *fails* until the bug the plan
    exposes is fixed, then pins the fix.  (Without the original
    algorithm/baselines a differential-agreement failure would emit a
    test that passes immediately.)
    """
    violation_lines = "\n".join(f"  {violation}" for violation in violations) \
        or "  (violations not recorded)"
    arguments = f"{target_name!r}, PLAN"
    if algorithm != "ours":
        arguments += f", algorithm={algorithm!r}"
    if baselines:
        arguments += f", baselines={tuple(baselines)!r}"
    return f'''"""Auto-generated by repro.explore.shrink — minimal reproducer.

Target: {target_name}
Plan: {plan.describe()}
Observed violations:
{violation_lines}
"""

from repro.explore import ExplorationPlan, run_case

PLAN = ExplorationPlan.from_dict({plan.to_dict()!r})


def {test_name}():
    result = run_case({arguments})
    details = "\\n".join(str(v) for v in result.violations)
    assert not result.violations, f"invariant violations:\\n{{details}}"
'''
