"""The fault-space explorer: budgeted sweeps of ``(target, plan)`` runs.

One *case* is one deterministic run: build the target with the plan's
fault plan and schedule seed, run to quiescence, evaluate the oracle
catalogue, and digest the canonical trace.  :class:`Explorer` sweeps a
seeded budget of generated plans; :func:`explore_chunk` is the
module-level (picklable) runner the scenario engine uses to distribute a
sweep over a process pool — chunk ``[a, b)`` of seed ``s`` runs exactly
the plans the sequential sweep would run at those indices, so the two
execution modes are byte-identical.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .. import obs
from ..core import oracles
from ..core.oracles import OracleViolation
from .generator import DEFAULT_KINDS, FaultPlanGenerator
from .monitor import InvariantMonitor
from .plan import ExplorationPlan
from .targets import ExplorationTarget, get_target
from .trace import TraceRecorder, canonical_trace, trace_digest


@dataclass
class CaseResult:
    """Outcome of one explored case."""

    index: int
    plan: ExplorationPlan
    digest: str
    completed: bool
    violations: List[OracleViolation]
    stats: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    #: Flight-recorder dump (last-N-events timeline) of a failing run;
    #: ``None`` for passing cases.  Deliberately excluded from the
    #: digest-pinned scenario rows — it rides only on in-process results
    #: and on reproducer records.
    flight: Optional[Dict[str, Any]] = None

    @property
    def failing(self) -> bool:
        return bool(self.violations)

    def describe(self) -> str:
        status = "FAIL" if self.failing else "ok"
        lines = [f"case {self.index} [{status}]: {self.plan.describe()}"]
        lines.extend(f"  {violation}" for violation in self.violations)
        return "\n".join(lines)


def _execute(target: ExplorationTarget, plan: ExplorationPlan,
             algorithm: str, record_trace: bool = True):
    """One run; returns ``(system, monitor, recorder, observation, error)``."""
    system = target.build(plan.make_fault_plan(), tie_seed=plan.tie_seed,
                          algorithm=algorithm)
    monitor = InvariantMonitor(system)
    recorder = TraceRecorder(system) if record_trace else None
    # Always-on flight recorder: a bounded ring (no unbounded event list,
    # no metrics) so every failing case ships its terminal event window.
    # An ambient obs.capture() has already attached a (richer) observation
    # in the system constructor; reuse it rather than displacing it.
    observation = system.observation
    if observation is None:
        observation = obs.observe_system(system, obs.ObsConfig.flight_only())
    error: Optional[str] = None
    try:
        # Run to queue exhaustion rather than ``run_to_completion``: a
        # stranded thread must surface as an oracle violation with a full
        # trace, not as a RuntimeError mid-run.
        system.run()
    except Exception as exc:  # noqa: BLE001 — anything the sim surfaces
        error = f"{type(exc).__name__}: {exc}"
    return system, monitor, recorder, observation, error


def run_case(target, plan: ExplorationPlan, algorithm: str = "ours",
             baselines: Sequence[str] = (), index: int = -1) -> CaseResult:
    """Run one ``(target, plan)`` case and evaluate every oracle.

    ``baselines`` names additional algorithms (e.g.
    ``"campbell-randell"``, ``"romanovsky96"``) to run the same plan
    against; their per-thread resolved exceptions must agree with the
    primary algorithm's (the differential oracle).  Liveness oracles —
    and the differential comparison, which presumes both runs finished —
    are only required of delivery-preserving plans.
    """
    resolved_target = get_target(target)
    system, monitor, recorder, observation, error = _execute(
        resolved_target, plan, algorithm)
    require_liveness = plan.preserves_delivery and error is None
    violations = monitor.check(require_liveness=require_liveness)
    if error is not None:
        violations.append(OracleViolation(
            oracles.NO_CRASH, f"simulation raised {error}"))
    completed = all(
        partition.thread_process is not None
        and partition.thread_process.triggered
        for partition in system.partitions.values())

    if plan.preserves_delivery and error is None:
        for baseline in baselines:
            # Only the resolved map is compared; skip the trace recorder.
            _, base_monitor, _, _, base_error = _execute(resolved_target,
                                                         plan, baseline,
                                                         record_trace=False)
            if base_error is not None:
                violations.append(OracleViolation(
                    oracles.DIFFERENTIAL_AGREEMENT,
                    f"{baseline} raised {base_error} on the same plan"))
                continue
            violations.extend(oracles.check_differential_agreement(
                monitor.resolved_map, base_monitor.resolved_map,
                algorithm, baseline))

    digest = trace_digest(canonical_trace(system, recorder))
    # Auto-dump the flight recorder for any failing case — oracle
    # violation or crash — so the failure carries its event timeline.
    flight = None
    if violations or error is not None:
        flight = observation.flight_dump()
    return CaseResult(index=index, plan=plan, digest=digest,
                      completed=completed, violations=violations,
                      stats=system.network.stats.snapshot(), error=error,
                      flight=flight)


@dataclass
class ExplorationReport:
    """Aggregated outcome of one budgeted sweep."""

    target: str
    seed: int
    cases: List[CaseResult]

    @property
    def failures(self) -> List[CaseResult]:
        return [case for case in self.cases if case.failing]

    def digest(self) -> str:
        """Order-sensitive digest over every case (plan identity + trace)."""
        digest = hashlib.sha256()
        for case in self.cases:
            digest.update(case.plan.key().encode("utf-8"))
            digest.update(case.digest.encode("utf-8"))
        return digest.hexdigest()

    def summary(self) -> Dict[str, int]:
        """Violation counts by invariant name (empty dict = clean sweep)."""
        counts: Dict[str, int] = {}
        for case in self.failures:
            for violation in case.violations:
                counts[violation.invariant] = \
                    counts.get(violation.invariant, 0) + 1
        return counts


class Explorer:
    """A seeded, budgeted sweep over generated plans for one target."""

    def __init__(self, target="nested_abort", seed: int = 0,
                 budget: int = 100,
                 kinds: Sequence[str] = DEFAULT_KINDS,
                 max_directives: int = 3,
                 jitter_probability: float = 0.5,
                 algorithm: str = "ours",
                 baselines: Sequence[str] = (),
                 stop_on_first_failure: bool = False,
                 generator: Optional[FaultPlanGenerator] = None) -> None:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.target = get_target(target)
        self.seed = int(seed)
        self.budget = budget
        self.algorithm = algorithm
        self.baselines = tuple(baselines)
        self.stop_on_first_failure = stop_on_first_failure
        self.generator = generator or FaultPlanGenerator(
            self.seed, self.target.threads, kinds=kinds,
            max_directives=max_directives,
            jitter_probability=jitter_probability)

    def run(self, start: int = 0) -> ExplorationReport:
        """Run cases ``start .. start + budget - 1`` of this seed."""
        cases: List[CaseResult] = []
        for index in range(start, start + self.budget):
            plan = self.generator.sample(index)
            case = run_case(self.target, plan, algorithm=self.algorithm,
                            baselines=self.baselines, index=index)
            cases.append(case)
            if case.failing and self.stop_on_first_failure:
                break
        return ExplorationReport(target=self.target.name, seed=self.seed,
                                 cases=cases)

    def predicate(self):
        """A shrink predicate bound to this explorer's target/algorithm.

        Returns a callable mapping a plan to its violations (empty list =
        the plan passes), as :func:`~repro.explore.shrink.shrink_plan`
        expects.
        """
        def still_failing(plan: ExplorationPlan) -> List[OracleViolation]:
            return run_case(self.target, plan, algorithm=self.algorithm,
                            baselines=self.baselines).violations
        return still_failing


# ----------------------------------------------------------------------
# Scenario-engine integration (module-level, hence picklable)
# ----------------------------------------------------------------------
def explore_chunk(target: str = "nested_abort", seed: int = 2026,
                  start: int = 0, stop: int = 25,
                  kinds: Sequence[str] = DEFAULT_KINDS,
                  max_directives: int = 3,
                  jitter_probability: float = 0.5,
                  algorithm: str = "ours",
                  baselines: Sequence[str] = ()) -> Dict[str, Any]:
    """Run plan indices ``[start, stop)`` and return one summary row.

    Pure in its arguments: the engine's process-pool path and sequential
    fallback produce identical rows, so explorer sweeps inherit the
    byte-identical parallel/sequential guarantee of the other scenarios.
    """
    if stop <= start:
        raise ValueError("need stop > start")
    explorer = Explorer(target=target, seed=seed, budget=stop - start,
                        kinds=kinds, max_directives=max_directives,
                        jitter_probability=jitter_probability,
                        algorithm=algorithm, baselines=baselines)
    report = explorer.run(start=start)
    return {
        "target": report.target,
        "seed": seed,
        "start": start,
        "stop": stop,
        "cases": len(report.cases),
        "failures": len(report.failures),
        "violations": [str(violation) for case in report.failures
                       for violation in case.violations],
        "failing_plans": [case.plan.to_dict() for case in report.failures],
        "digest": report.digest(),
    }
