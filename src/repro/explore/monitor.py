"""Invariant monitoring: runtime probes feeding the oracle catalogue.

The :class:`InvariantMonitor` registers as a life-cycle probe on a
:class:`~repro.runtime.system.DistributedCASystem` (see
``DistributedCASystem.add_probe``) and records every resolution delivery
and every action conclusion.  After the run, :meth:`check` evaluates the
oracle predicates of :mod:`repro.core.oracles`:

* ``agreement`` and the duplicate-conclusion half of
  ``exactly_one_outcome`` are checked unconditionally — they are pure
  safety properties;
* the missing-conclusion half of ``exactly_one_outcome`` and the
  ``no_stranded_thread`` / ``abortion_atomic`` oracles are
  liveness-flavoured and only meaningful when the plan stayed within the
  paper's delivery assumptions (a plan that *drops* a protocol message is
  allowed to strand a participation — the paper says so explicitly), so
  :meth:`check` takes a ``require_liveness`` flag the explorer derives
  from ``ExplorationPlan.preserves_delivery``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from ..core import oracles
from ..core.oracles import OracleViolation, ThreadQuiescence
from ..runtime.system import DistributedCASystem


class InvariantMonitor:
    """Collects probe records for one run and evaluates the oracles."""

    def __init__(self, system: DistributedCASystem) -> None:
        self.system = system
        #: (action, instance) -> [(thread, resolved exception name)], one
        #: entry per *delivered* resolution (duplicates included).
        self.resolutions: Dict[Tuple[str, str], List[Tuple[str, str]]] = \
            defaultdict(list)
        #: (action, instance, thread) -> number of conclusions observed.
        self.outcomes: Dict[Tuple[str, str, str], int] = defaultdict(int)
        #: "instance/thread" -> resolved exception name (for differential
        #: comparison across algorithms).
        self.resolved_map: Dict[str, str] = {}
        system.add_probe(self._on_probe)

    # ------------------------------------------------------------------
    def _on_probe(self, event: str, **data) -> None:
        if event == "resolved":
            key = (data["action"], data["instance"])
            name = data["exception"].name
            self.resolutions[key].append((data["thread"], name))
            self.resolved_map[f"{data['instance']}/{data['thread']}"] = name
        elif event == "entered":
            # Seed the outcome counter at zero so a participation that is
            # entered but never concluded is visible to the oracle as a
            # lost conclusion, not silently absent.
            self.outcomes.setdefault(
                (data["action"], data["instance"], data["thread"]), 0)
        elif event == "concluded":
            self.outcomes[(data["action"], data["instance"],
                           data["thread"])] += 1

    # ------------------------------------------------------------------
    def quiescence(self) -> List[ThreadQuiescence]:
        """Snapshot every thread's explorer-visible state at quiescence."""
        snapshots: List[ThreadQuiescence] = []
        for name in sorted(self.system.partitions):
            partition = self.system.partitions[name]
            process = partition.thread_process
            finished = process is not None and process.triggered
            coordinator = partition.coordinator
            snapshots.append(ThreadQuiescence(
                thread=name,
                program_finished=finished,
                status=partition.status,
                coordinator_state=coordinator.state,
                pending_abort=partition.pending_abort is not None,
                pending_abort_target=coordinator.pending_abort_target,
                retained_messages=len(coordinator.retained),
                stack_depth=len(coordinator.sa),
            ))
        return snapshots

    def check(self, require_liveness: bool = True) -> List[OracleViolation]:
        """Evaluate the oracle catalogue over the collected records."""
        violations: List[OracleViolation] = []
        violations.extend(oracles.check_agreement(self.resolutions))
        violations.extend(oracles.check_exactly_one_outcome(
            self.outcomes, require_completion=require_liveness))
        if require_liveness:
            snapshots = self.quiescence()
            violations.extend(oracles.check_no_stranded_thread(snapshots))
            violations.extend(oracles.check_abortion_atomic(snapshots))
        return violations
