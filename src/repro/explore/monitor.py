"""Invariant monitoring: runtime probes feeding the oracle catalogue.

The :class:`InvariantMonitor` registers as a life-cycle probe on a
:class:`~repro.runtime.system.DistributedCASystem` (see
``DistributedCASystem.add_probe``) and records every resolution delivery
and every action conclusion.  After the run, :meth:`check` evaluates the
oracle predicates of :mod:`repro.core.oracles`:

* ``agreement`` and the duplicate-conclusion half of
  ``exactly_one_outcome`` are checked unconditionally — they are pure
  safety properties;
* the missing-conclusion half of ``exactly_one_outcome`` and the
  ``no_stranded_thread`` / ``abortion_atomic`` oracles are
  liveness-flavoured and only meaningful when the plan stayed within the
  paper's delivery assumptions (a plan that *drops* a protocol message is
  allowed to strand a participation — the paper says so explicitly), so
  :meth:`check` takes a ``require_liveness`` flag the explorer derives
  from ``ExplorationPlan.preserves_delivery``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Tuple

from ..core import oracles
from ..core.oracles import OracleViolation, ThreadQuiescence
from ..objects.transaction import TransactionStatus
from ..runtime.system import DistributedCASystem


class InvariantMonitor:
    """Collects probe records for one run and evaluates the oracles."""

    def __init__(self, system: DistributedCASystem) -> None:
        self.system = system
        #: (action, instance) -> [(thread, resolved exception name)], one
        #: entry per *delivered* resolution (duplicates included).
        self.resolutions: Dict[Tuple[str, str], List[Tuple[str, str]]] = \
            defaultdict(list)
        #: (action, instance, thread) -> number of conclusions observed.
        self.outcomes: Dict[Tuple[str, str, str], int] = defaultdict(int)
        #: "instance/thread" -> resolved exception name (for differential
        #: comparison across algorithms).
        self.resolved_map: Dict[str, str] = {}
        #: Tracked transactional counters: (object name, key) -> initial
        #: committed value (see :meth:`track_counter`).
        self._counters: Dict[Tuple[str, str], Any] = {}
        system.add_probe(self._on_probe)

    # ------------------------------------------------------------------
    def _on_probe(self, event: str, **data) -> None:
        if event == "resolved":
            key = (data["action"], data["instance"])
            name = data["exception"].name
            self.resolutions[key].append((data["thread"], name))
            self.resolved_map[f"{data['instance']}/{data['thread']}"] = name
        elif event == "entered":
            # Seed the outcome counter at zero so a participation that is
            # entered but never concluded is visible to the oracle as a
            # lost conclusion, not silently absent.
            self.outcomes.setdefault(
                (data["action"], data["instance"], data["thread"]), 0)
        elif event == "concluded":
            self.outcomes[(data["action"], data["instance"],
                           data["thread"])] += 1

    # ------------------------------------------------------------------
    def quiescence(self) -> List[ThreadQuiescence]:
        """Snapshot every thread's explorer-visible state at quiescence."""
        snapshots: List[ThreadQuiescence] = []
        for name in sorted(self.system.partitions):
            partition = self.system.partitions[name]
            process = partition.thread_process
            finished = process is not None and process.triggered
            coordinator = partition.coordinator
            snapshots.append(ThreadQuiescence(
                thread=name,
                program_finished=finished,
                status=partition.status,
                coordinator_state=coordinator.state,
                pending_abort=partition.pending_abort is not None,
                pending_abort_target=coordinator.pending_abort_target,
                retained_messages=len(coordinator.retained),
                stack_depth=len(coordinator.sa),
            ))
        return snapshots

    # ------------------------------------------------------------------
    # Transactional oracles (external atomic objects)
    # ------------------------------------------------------------------
    def track_counter(self, object_name: str, key: str = "value") -> None:
        """Track a counter field for the no-lost-update oracle.

        Call after creating the object and before the run: the current
        committed value becomes the baseline, and :meth:`check` requires
        the final committed value to equal it plus one per *committed*
        transaction that wrote the field (the transactional workload's
        read-increment-write contract under exclusive locks).
        """
        obj = self.system.transactions.object(object_name)
        self._counters[(object_name, key)] = obj.committed_value(key)

    def counter_records(self) -> List[Dict[str, Any]]:
        """The tracked counters as plain oracle records (see oracles)."""
        manager = self.system.transactions
        committed = {t.transaction_id for t in manager.finished
                     if t.status is TransactionStatus.COMMITTED}
        records: List[Dict[str, Any]] = []
        for (object_name, key), initial in sorted(self._counters.items()):
            obj = manager.object(object_name)
            writers = {record.transaction_id for record in obj.operations
                       if record.operation == "write" and record.key == key
                       and record.transaction_id in committed}
            records.append({
                "object": object_name, "key": key, "initial": initial,
                "final": obj.committed_value(key),
                "committed_writers": len(writers),
            })
        return records

    def _transactional_violations(self) -> List[OracleViolation]:
        violations: List[OracleViolation] = []
        if self._counters:
            violations.extend(
                oracles.check_no_lost_updates(self.counter_records()))
        locks = self.system.transactions.locks
        if locks is not None:
            held = locks.all_holders()
            waiting = locks.all_waiters()
            if held or waiting:
                finished = [t.transaction_id
                            for t in self.system.transactions.finished]
                violations.extend(oracles.check_locks_released(
                    held, waiting, finished))
        return violations

    def check(self, require_liveness: bool = True) -> List[OracleViolation]:
        """Evaluate the oracle catalogue over the collected records."""
        violations: List[OracleViolation] = []
        violations.extend(oracles.check_agreement(self.resolutions))
        violations.extend(oracles.check_exactly_one_outcome(
            self.outcomes, require_completion=require_liveness))
        if require_liveness:
            snapshots = self.quiescence()
            violations.extend(oracles.check_no_stranded_thread(snapshots))
            violations.extend(oracles.check_abortion_atomic(snapshots))
        violations.extend(self._transactional_violations())
        return violations
