"""Canonical run traces and digests for deterministic replay checking.

A run's canonical trace is a plain-text rendering of everything observable
about it, built only from per-run data (notably *not* from
``Envelope.sequence``, which is a process-global counter):

* every kernel step: ``(virtual time, priority, event id, event type)`` —
  recorded through the kernel's tracer hook;
* every envelope in send order: timing, link, payload, fate;
* every coordinator state transition (the per-thread ``trace`` lists);
* the final message-statistics snapshot.

Two runs of the same ``(target, plan)`` must produce byte-identical
canonical traces; :func:`trace_digest` hashes them so sweeps can compare
thousands of runs cheaply and the engine's parallel/sequential paths can
be checked for equality without shipping full traces between processes.
"""

from __future__ import annotations

import hashlib
import json
from typing import List, Optional, Tuple

from ..net.message import Envelope
from ..runtime.system import DistributedCASystem


class TraceRecorder:
    """Records kernel steps through :attr:`Kernel.tracer`.

    Attach before the run starts; the recorder only keeps cheap tuples.
    """

    def __init__(self, system: DistributedCASystem,
                 max_steps: int = 1_000_000) -> None:
        self.system = system
        self.steps: List[Tuple[float, int, int, str]] = []
        self.truncated = False
        self._max_steps = max_steps
        system.kernel.tracer = self._on_step

    def _on_step(self, when: float, priority: int, eid: int, event) -> None:
        if len(self.steps) >= self._max_steps:
            self.truncated = True
            return
        self.steps.append((when, priority, eid, type(event).__name__))

    # ------------------------------------------------------------------
    def kernel_section(self) -> List[str]:
        lines = [f"{when:.9f} p{priority} e{eid} {name}"
                 for when, priority, eid, name in self.steps]
        if self.truncated:
            lines.append("...truncated...")
        return lines


def _envelope_line(index: int, envelope: Envelope) -> str:
    deliver = ("dropped" if envelope.deliver_time is None
               else f"{envelope.deliver_time:.9f}")
    corrupted = " corrupted" if envelope.corrupted else ""
    return (f"#{index} t={envelope.send_time:.9f} "
            f"{envelope.source}->{envelope.destination} "
            f"{envelope.payload!r} deliver={deliver}{corrupted}")


def canonical_trace(system: DistributedCASystem,
                    recorder: Optional[TraceRecorder] = None) -> str:
    """The run's canonical plain-text trace (see module docstring)."""
    sections: List[str] = []
    if recorder is not None:
        sections.append("== kernel ==")
        sections.extend(recorder.kernel_section())
    sections.append("== network ==")
    network = system.network
    if not getattr(network, "keep_trace", True) \
            and network.stats.sent > len(network.trace):
        # The bounded ring has already evicted envelopes; a digest built
        # from it would be silently wrong.  Build the system with
        # ``keep_trace=True`` (the explorer targets do).
        raise RuntimeError(
            "canonical_trace needs full envelope retention: construct the "
            "network with keep_trace=True")
    sections.extend(_envelope_line(i, envelope)
                    for i, envelope in enumerate(network.trace))
    sections.append("== coordinators ==")
    for name in sorted(system.partitions):
        sections.extend(system.partitions[name].coordinator.trace)
    sections.append("== statistics ==")
    sections.append(json.dumps(system.network.stats.snapshot(),
                               sort_keys=True))
    return "\n".join(sections)


def trace_digest(trace_text: str) -> str:
    """SHA-256 of a canonical trace."""
    return hashlib.sha256(trace_text.encode("utf-8")).hexdigest()
