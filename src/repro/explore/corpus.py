"""Coverage-guided corpus search over the fault-plan space.

Enumeration (:class:`~repro.explore.explorer.Explorer`) samples plans
independently; most of a large budget lands on behaviour already seen.
This module steers the budget instead: the byte-level canonical-trace
digest of a run is its behaviour fingerprint (PR 5), a *novel* digest
admits the plan to a persisted corpus, and later generations *mutate*
corpus plans (:mod:`repro.explore.mutate`) rather than resampling from
scratch — small perturbations of an interesting plan reach new
interleavings far more often than fresh independent draws.

Determinism contract — parallel and sequential sweeps account novelty
identically:

* every generation's candidate list is a pure function of the corpus
  snapshot at generation start, the search seed and the generation
  number (mutation tokens are ``"g{generation}-c{candidate}"``);
* candidates are executed in fixed-size chunks via the module-level
  (picklable) :func:`run_plans_chunk` — in-process by default, or fanned
  over the scenario engine's process pool (the ``explore_corpus``
  scenario) — and results always come back in candidate order;
* novelty is then merged strictly in candidate order, so which digests
  count as new never depends on execution interleaving.

Every *novel* oracle violation is auto-shrunk with the ddmin shrinker
into a ready-to-paste pytest reproducer
(:func:`~repro.explore.shrink.to_pytest_source`).
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, \
    Tuple

from .explorer import run_case
from .generator import DEFAULT_KINDS, FaultPlanGenerator
from .mutate import PlanMutator
from .plan import ExplorationPlan
from .shrink import shrink_plan, to_pytest_source
from .targets import get_target

#: On-disk corpus format version.
CORPUS_SCHEMA = 1


@dataclass
class CorpusEntry:
    """One interesting plan: the first witness of its trace digest."""

    plan: ExplorationPlan
    digest: str
    #: Search generation the plan was found in (0 = bootstrap).
    generation: int = 0
    #: Digest of the corpus plan this one was mutated from, if any.
    parent: Optional[str] = None
    #: Whether the witnessing run violated an oracle.
    failing: bool = False
    #: Seed-scheduling metadata: how often this entry has been picked as
    #: a mutation parent (the scheduler favours the least-mutated).
    mutations: int = 0
    #: Message statistics of the witnessing run (per-link and per-type
    #: delivery counts) — the mutator's steering feedback: ordinals and
    #: targets are folded into the traffic the run actually carried.
    stats: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "plan": self.plan.to_dict(),
            "digest": self.digest,
            "generation": self.generation,
            "mutations": self.mutations,
        }
        if self.parent is not None:
            data["parent"] = self.parent
        if self.failing:
            data["failing"] = True
        if self.stats:
            data["stats"] = self.stats
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CorpusEntry":
        return cls(plan=ExplorationPlan.from_dict(data["plan"]),
                   digest=data["digest"],
                   generation=data.get("generation", 0),
                   parent=data.get("parent"),
                   failing=data.get("failing", False),
                   mutations=data.get("mutations", 0),
                   stats=data.get("stats", {}))


class Corpus:
    """A digest-deduped, insertion-ordered set of interesting plans.

    The corpus is the search's long-term memory: persisted as JSON, it
    carries over between runs (the nightly workflow caches it as an
    artifact), so every run starts from all behaviour ever reached
    instead of rediscovering it.
    """

    def __init__(self, target: str = "nested_abort", seed: int = 0,
                 entries: Sequence[CorpusEntry] = ()) -> None:
        self.target = target
        self.seed = int(seed)
        self._entries: Dict[str, CorpusEntry] = {}
        for entry in entries:
            self.add(entry)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    @property
    def entries(self) -> List[CorpusEntry]:
        """Entries in insertion (discovery) order."""
        return list(self._entries.values())

    @property
    def digests(self) -> List[str]:
        return list(self._entries)

    def plan_keys(self) -> set:
        """Canonical keys of every corpus plan (candidate dedupe)."""
        return {entry.plan.key() for entry in self._entries.values()}

    def add(self, entry: CorpusEntry) -> bool:
        """Admit ``entry`` unless its digest is already covered.

        Returns True when the entry was novel (admitted).
        """
        if entry.digest in self._entries:
            return False
        self._entries[entry.digest] = entry
        return True

    def schedule(self, count: int) -> List[CorpusEntry]:
        """Pick ``count`` mutation parents, least-mutated first.

        Deterministic: ties break by discovery order, and each pick
        increments the entry's ``mutations`` counter so the load spreads
        over the whole corpus instead of hammering the first entry.
        """
        if not self._entries:
            raise ValueError("cannot schedule from an empty corpus")
        order = {digest: position
                 for position, digest in enumerate(self._entries)}
        parents: List[CorpusEntry] = []
        for _ in range(count):
            entry = min(self._entries.values(),
                        key=lambda e: (e.mutations, order[e.digest]))
            entry.mutations += 1
            parents.append(entry)
        return parents

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": CORPUS_SCHEMA,
            "target": self.target,
            "seed": self.seed,
            "entries": [entry.to_dict() for entry in self._entries.values()],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Corpus":
        schema = data.get("schema", CORPUS_SCHEMA)
        if schema != CORPUS_SCHEMA:
            raise ValueError(f"unsupported corpus schema {schema!r}")
        return cls(target=data.get("target", "nested_abort"),
                   seed=data.get("seed", 0),
                   entries=[CorpusEntry.from_dict(entry)
                            for entry in data.get("entries", ())])

    def save(self, path) -> None:
        """Write the corpus as (stable, diffable) JSON."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    @classmethod
    def load(cls, path) -> "Corpus":
        return cls.from_dict(json.loads(Path(path).read_text(
            encoding="utf-8")))


# ----------------------------------------------------------------------
# Chunk execution (module-level, hence picklable for the process pool)
# ----------------------------------------------------------------------
def run_plans_chunk(target: str = "nested_abort",
                    plans: Sequence[Dict[str, Any]] = (),
                    start: int = 0, algorithm: str = "ours",
                    baselines: Sequence[str] = ()) -> Dict[str, Any]:
    """Run an explicit list of plans (dict form) and summarise each.

    Unlike :func:`~repro.explore.explorer.explore_chunk`, which derives
    its plans from ``(seed, index)``, this runner receives the plans
    themselves — corpus search derives candidates centrally (from the
    corpus snapshot) and only fans the *execution* out.  Pure in its
    arguments, so the engine's process-pool path and sequential fallback
    return byte-identical rows.
    """
    results: List[Dict[str, Any]] = []
    for offset, data in enumerate(plans):
        plan = ExplorationPlan.from_dict(data)
        case = run_case(target, plan, algorithm=algorithm,
                        baselines=baselines, index=start + offset)
        results.append({
            "index": case.index,
            "plan": data,
            "digest": case.digest,
            "completed": case.completed,
            "error": case.error,
            "violations": [str(v) for v in case.violations],
            "stats": case.stats,
        })
    digest = hashlib.sha256()
    for row in results:
        digest.update(json.dumps(row["plan"], sort_keys=True).encode("utf-8"))
        digest.update(row["digest"].encode("utf-8"))
    return {
        "target": target,
        "start": start,
        "cases": len(results),
        "failures": sum(1 for row in results if row["violations"]),
        "results": results,
        "digest": digest.hexdigest(),
    }


#: Executes a list of ``run_plans_chunk`` keyword-argument dicts and
#: returns their rows in order (the seam the engine's pool plugs into).
ChunkRunner = Callable[[List[Dict[str, Any]]], List[Dict[str, Any]]]


def engine_chunk_runner(parallel: bool = True,
                        max_workers: Optional[int] = None) -> ChunkRunner:
    """A :data:`ChunkRunner` fanning chunks over the scenario engine.

    Routes each generation's chunks through the engine's
    ``explore_corpus`` scenario — a process pool when ``parallel``, the
    byte-identical sequential path otherwise (also the automatic
    fallback where no pool can be created).  Imported lazily to keep
    ``repro.explore`` importable without the bench machinery.
    """
    def run(points: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        from ..bench.engine import run_scenario
        return run_scenario("explore_corpus", points=points,
                            parallel=parallel, max_workers=max_workers)
    return run


@dataclass
class CorpusSearchReport:
    """Aggregated outcome of one corpus-search session."""

    target: str
    seed: int
    #: Runs accounted, in canonical candidate order (equals the number
    #: of runs a sequential session executes; see ``first_failure_at``).
    executed: int
    generations: int
    #: Distinct trace digests observed among this session's runs.
    distinct_digests: int
    #: Plans admitted to the corpus by this session.
    novel: int
    corpus_size: int
    #: 1-based canonical run count of the first oracle violation.
    first_failure_at: Optional[int] = None
    #: Result rows of the failing runs (novel digests only).
    failures: List[Dict[str, Any]] = field(default_factory=list)
    #: Auto-shrunk reproducers: plan, reduced plan, violations, pytest
    #: source — deduped by reduced-plan identity.
    reproducers: List[Dict[str, Any]] = field(default_factory=list)
    #: Extra runs spent shrinking (not counted in ``executed``).
    shrink_evaluations: int = 0

    def summary(self) -> Dict[str, Any]:
        return {
            "target": self.target,
            "seed": self.seed,
            "executed": self.executed,
            "generations": self.generations,
            "distinct_digests": self.distinct_digests,
            "novel": self.novel,
            "corpus_size": self.corpus_size,
            "first_failure_at": self.first_failure_at,
            "failures": len(self.failures),
            "reproducers": len(self.reproducers),
            "shrink_evaluations": self.shrink_evaluations,
        }


class CorpusSearch:
    """Generational, digest-guided search over one exploration target.

    Each generation derives ``generation_size`` candidates and executes
    them in ``chunk_size`` chunks through ``run_chunks``; candidates
    with a novel digest enter the corpus.  Candidate derivation has
    three stages, in priority order:

    1. *deterministic neighbours* — every newly admitted plan is swept
       through :meth:`PlanMutator.neighbors` (retarget / retype / retime
       each directive) before any dice are rolled, the deterministic
       stage of classic coverage-guided fuzzers;
    2. *random mutations* of scheduled corpus entries (least-mutated
       first), with every ``fresh_every``-th candidate a fresh generator
       sample to keep seeding diversity;
    3. *bootstrap* — an empty corpus starts from pure generator samples
       (indices 0, 1, 2, … — exactly the enumeration order, so a corpus
       session subsumes an enumeration prefix).

    Plans whose canonical key was already executed this session (or sits
    in the corpus) are never re-run — re-running a known plan cannot
    yield a novel digest, so the budget goes where novelty is possible.
    """

    def __init__(self, target="nested_abort", seed: int = 0,
                 corpus: Optional[Corpus] = None,
                 kinds: Sequence[str] = DEFAULT_KINDS,
                 algorithm: str = "ours",
                 baselines: Sequence[str] = (),
                 generation_size: int = 25,
                 chunk_size: int = 25,
                 fresh_every: int = 5,
                 max_directives: int = 3,
                 jitter_probability: float = 0.5,
                 run_chunks: Optional[ChunkRunner] = None,
                 shrink: bool = True,
                 max_shrink_evaluations: int = 200) -> None:
        if generation_size < 1 or chunk_size < 1:
            raise ValueError("generation_size and chunk_size must be >= 1")
        if fresh_every < 2:
            raise ValueError("fresh_every must be >= 2")
        self.target = get_target(target)
        self.seed = int(seed)
        self.algorithm = algorithm
        self.baselines = tuple(baselines)
        self.generation_size = generation_size
        self.chunk_size = chunk_size
        self.fresh_every = fresh_every
        self.shrink = shrink
        self.max_shrink_evaluations = max_shrink_evaluations
        self.generator = FaultPlanGenerator(
            self.seed, self.target.threads, kinds=kinds,
            max_directives=max_directives,
            jitter_probability=jitter_probability)
        self.mutator = PlanMutator(self.seed, self.target.threads,
                                   kinds=kinds,
                                   max_directives=max(6, max_directives))
        self.corpus = corpus if corpus is not None else Corpus(
            target=self.target.name, seed=self.seed)
        self.run_chunks = run_chunks or self._sequential_chunks
        #: Next enumeration index for fresh samples (continues across
        #: generations so fresh candidates never repeat).
        self._fresh_index = 0
        #: Deterministic-stage queue: (neighbour plan, parent digest),
        #: FIFO in admission order.  Pre-loaded corpus entries get their
        #: sweep too — a warm corpus is the whole point of persistence.
        self._pending: Deque[Tuple[ExplorationPlan, str]] = deque()
        #: Canonical keys of every plan executed this session or already
        #: in the corpus (never re-run a known plan).
        self._seen_keys = self.corpus.plan_keys()
        for entry in self.corpus.entries:
            self._enqueue_neighbors(entry)

    def _enqueue_neighbors(self, entry: CorpusEntry) -> None:
        for neighbor in self.mutator.neighbors(entry.plan,
                                               feedback=entry.stats):
            self._pending.append((neighbor, entry.digest))

    # ------------------------------------------------------------------
    def run(self, budget: int,
            stop_on_first_failure: bool = False) -> CorpusSearchReport:
        """Search for ``budget`` runs (plus shrinking, accounted apart).

        With ``stop_on_first_failure`` the session ends at the first
        failing candidate *in canonical order*; ``executed`` then counts
        candidates up to and including it — the number a sequential
        session would have run — even if a parallel chunk ran more.
        """
        if budget < 1:
            raise ValueError("budget must be >= 1")
        executed = 0
        generation = 0
        novel = 0
        shrink_evaluations = 0
        digests_seen: set = set()
        reduced_seen: set = set()
        first_failure_at: Optional[int] = None
        failures: List[Dict[str, Any]] = []
        reproducers: List[Dict[str, Any]] = []
        stop = False

        while executed < budget and not stop:
            count = min(self.generation_size, budget - executed)
            candidates = self._candidates(generation, count)
            rows = self._execute(candidates, start=executed)
            for (plan, parent), row in zip(candidates, rows):
                executed += 1
                digests_seen.add(row["digest"])
                failing = bool(row["violations"])
                entry = CorpusEntry(
                    plan=plan, digest=row["digest"], generation=generation,
                    parent=parent, failing=failing,
                    stats=row.get("stats", {}))
                is_novel = self.corpus.add(entry)
                if is_novel:
                    novel += 1
                    self._enqueue_neighbors(entry)
                if failing:
                    if first_failure_at is None:
                        first_failure_at = executed
                    if is_novel:
                        failures.append(row)
                        if self.shrink:
                            record, cost = self._shrink(plan, reduced_seen)
                            shrink_evaluations += cost
                            if record is not None:
                                reproducers.append(record)
                    if stop_on_first_failure:
                        stop = True
                        break
            generation += 1

        return CorpusSearchReport(
            target=self.target.name, seed=self.seed, executed=executed,
            generations=generation, distinct_digests=len(digests_seen),
            novel=novel, corpus_size=len(self.corpus),
            first_failure_at=first_failure_at, failures=failures,
            reproducers=reproducers, shrink_evaluations=shrink_evaluations)

    # ------------------------------------------------------------------
    def _candidates(self, generation: int, count: int
                    ) -> List[Tuple[ExplorationPlan, Optional[str]]]:
        """Candidates for one generation: pure in (seed, session history).

        Returns ``(plan, parent_digest)`` pairs.  The deterministic
        neighbour queue is drained first; remaining slots are filled
        with random mutations of scheduled parents (every
        ``fresh_every``-th slot a fresh generator sample), or pure
        generator samples while the corpus is still empty.  Mutated
        children that collide with an already-seen plan are re-mutated
        up to three times — running a known-identical plan can never
        yield a novel digest, so the retry spends the budget where
        novelty is possible.
        """
        candidates: List[Tuple[ExplorationPlan, Optional[str]]] = []

        def emit(plan: ExplorationPlan, parent: Optional[str]) -> None:
            self._seen_keys.add(plan.key())
            candidates.append((plan, parent))

        # Stage 1: deterministic neighbours of admitted plans, FIFO —
        # capped at half the generation so the sweep of a large corpus
        # can never starve the havoc stage, whose stacked mutations are
        # the better distinct-digest generator.
        sweep_cap = max(1, count // 2)
        while self._pending and len(candidates) < min(count, sweep_cap):
            plan, parent = self._pending.popleft()
            if plan.key() not in self._seen_keys:
                emit(plan, parent)
        if len(candidates) == count:
            return candidates

        # Stage 3 (bootstrap): an empty corpus enumerates from index 0,
        # so a corpus session subsumes an enumeration prefix.
        if not len(self.corpus):
            while len(candidates) < count:
                plan = self.generator.sample(self._fresh_index)
                self._fresh_index += 1
                emit(plan, None)
            return candidates

        # Stage 2: random mutations, salted with fresh samples.
        remaining = count - len(candidates)
        parents = self.corpus.schedule(remaining)
        for position in range(remaining):
            if (position + 1) % self.fresh_every == 0:
                plan = self.generator.sample(self._fresh_index)
                self._fresh_index += 1
                emit(plan, None)
                continue
            parent = parents[position]
            token = f"g{generation}-c{position}"
            child = self.mutator.mutate(parent.plan, token,
                                        feedback=parent.stats)
            for retry in range(3):
                if child.key() not in self._seen_keys:
                    break
                child = self.mutator.mutate(parent.plan,
                                            f"{token}-r{retry}",
                                            feedback=parent.stats)
            emit(child, parent.digest)
        return candidates

    def _execute(self, candidates: Sequence[Tuple[ExplorationPlan,
                                                  Optional[str]]],
                 start: int) -> List[Dict[str, Any]]:
        """Run candidates in chunk_size chunks; rows in candidate order."""
        points: List[Dict[str, Any]] = []
        for offset in range(0, len(candidates), self.chunk_size):
            chunk = candidates[offset:offset + self.chunk_size]
            points.append({
                "target": self.target.name,
                "plans": [plan.to_dict() for plan, _parent in chunk],
                "start": start + offset,
                "algorithm": self.algorithm,
                "baselines": self.baselines,
            })
        rows: List[Dict[str, Any]] = []
        for chunk_row in self.run_chunks(points):
            rows.extend(chunk_row["results"])
        return rows

    @staticmethod
    def _sequential_chunks(points: List[Dict[str, Any]]
                           ) -> List[Dict[str, Any]]:
        return [run_plans_chunk(**point) for point in points]

    def _shrink(self, plan: ExplorationPlan, reduced_seen: set
                ) -> Tuple[Optional[Dict[str, Any]], int]:
        """ddmin-shrink a failing plan into a pytest reproducer record."""
        def still_failing(candidate: ExplorationPlan):
            return run_case(self.target, candidate,
                            algorithm=self.algorithm,
                            baselines=self.baselines).violations

        result = shrink_plan(plan, still_failing,
                             max_evaluations=self.max_shrink_evaluations)
        key = result.reduced.key()
        if key in reduced_seen:
            # Distinct digests can shrink to the same minimal plan; one
            # reproducer per root cause is enough.
            return None, result.evaluations
        reduced_seen.add(key)
        source = to_pytest_source(self.target.name, result.reduced,
                                  result.violations,
                                  algorithm=self.algorithm,
                                  baselines=self.baselines)
        # One extra run of the minimal plan to capture its flight-recorder
        # timeline, so the reproducer ships the failing run's last-N
        # events next to the ready-to-paste test.
        final = run_case(self.target, result.reduced,
                         algorithm=self.algorithm, baselines=self.baselines)
        return {
            "plan": plan.to_dict(),
            "reduced": result.reduced.to_dict(),
            "violations": [str(v) for v in result.violations],
            "source": source,
            "flight": final.flight,
        }, result.evaluations + 1
