"""Seeded sampling of exploration plans from the fault vocabulary.

The generator is a pure function of ``(seed, index)``: plan ``i`` of seed
``s`` is always the same plan, in any process, regardless of how many other
plans were sampled before it.  That property is what lets the budgeted
sweep run on a process pool and still be byte-identical with the
sequential sweep, and what makes "plan 137 of seed 2026" a complete bug
report.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Tuple

from ..net.faults import DIRECTIVE_KINDS, FaultDirective
from ..simkernel.rng import SeededStreams
from .plan import ExplorationPlan

#: Message types the generator targets by default: the protocol messages of
#: the resolution and signalling algorithms (delaying application traffic
#: exercises nothing the protocols care about).
DEFAULT_MESSAGE_TYPES: Tuple[str, ...] = (
    "ExceptionMessage", "SuspendedMessage", "CommitMessage",
    "ToBeSignalledMessage",
)

#: Directive kinds the generator can sample.  ``restore`` is excluded: it
#: only exists to serialize crash-then-restore plans faithfully; sampled
#: on its own it would be a no-op directive wasting budget.
SAMPLABLE_KINDS: Tuple[str, ...] = tuple(
    kind for kind in DIRECTIVE_KINDS if kind != "restore")

#: Directive kinds sampled by default: the delivery-preserving ones, so the
#: full oracle catalogue (including liveness) applies to every sampled
#: plan.  Pass ``kinds=STORM_KINDS`` for the complete vocabulary.
DEFAULT_KINDS: Tuple[str, ...] = ("delay_link", "delay_type", "delay_nth")

#: The widened failure-storm vocabulary: every samplable kind, including
#: the drop/corrupt classes and crash (optionally paired with a timed
#: restore into a crash/restore wave).  Plans drawn from it are generally
#: not delivery-preserving, so the explorer holds them to the safety
#: oracles only — the liveness oracle is correctly waived.
STORM_KINDS: Tuple[str, ...] = SAMPLABLE_KINDS


class FaultPlanGenerator:
    """Samples :class:`ExplorationPlan` points from a seeded stream.

    Parameters
    ----------
    seed:
        Master seed; ``sample(i)`` is a pure function of ``(seed, i)``.
    threads:
        Node names of the target system (links are ordered pairs of them).
    kinds:
        Directive kinds to draw from (default: delivery-preserving delays).
    message_types:
        Payload type names eligible for ``delay_type`` directives.
    max_directives:
        Upper bound on directives per plan (1..max, uniform).
    delay_range:
        ``(low, high)`` of sampled extra delays, virtual time units.
    max_nth:
        Upper bound for the ``n`` of nth-message directives.
    crash_window:
        ``(low, high)`` of sampled crash times (``crash`` kind only).
    jitter_probability:
        Probability that a plan carries a schedule-perturbation seed.
    restore_probability:
        Probability that a sampled crash is paired with a timed restore
        (a crash/restore *wave*: the node comes back after an outage
        drawn from ``delay_range``).
    """

    def __init__(self, seed: int, threads: Sequence[str],
                 kinds: Sequence[str] = DEFAULT_KINDS,
                 message_types: Sequence[str] = DEFAULT_MESSAGE_TYPES,
                 max_directives: int = 3,
                 delay_range: Tuple[float, float] = (0.25, 5.0),
                 max_nth: int = 6,
                 crash_window: Tuple[float, float] = (0.0, 5.0),
                 jitter_probability: float = 0.5,
                 restore_probability: float = 0.5) -> None:
        if len(threads) < 2:
            raise ValueError("need at least two threads to have links")
        unknown = set(kinds) - set(SAMPLABLE_KINDS)
        if unknown:
            raise ValueError(f"unknown directive kinds {sorted(unknown)}")
        if not kinds:
            raise ValueError("need at least one directive kind")
        if max_directives < 1:
            raise ValueError("max_directives must be >= 1")
        if not 0.0 <= jitter_probability <= 1.0:
            raise ValueError("jitter_probability must be in [0, 1]")
        if not 0.0 <= restore_probability <= 1.0:
            raise ValueError("restore_probability must be in [0, 1]")
        self.seed = int(seed)
        self.threads = tuple(threads)
        self.kinds = tuple(kinds)
        self.message_types = tuple(message_types)
        self.max_directives = max_directives
        self.delay_range = delay_range
        self.max_nth = max_nth
        self.crash_window = crash_window
        self.jitter_probability = jitter_probability
        self.restore_probability = restore_probability
        self._links = tuple((a, b) for a in self.threads for b in self.threads
                            if a != b)

    # ------------------------------------------------------------------
    def sample(self, index: int) -> ExplorationPlan:
        """Sample plan number ``index`` (pure in ``(seed, index)``)."""
        rng = self._rng(index)
        count = rng.randint(1, self.max_directives)
        directives: list = []
        for _ in range(count):
            directives.extend(self.sample_wave(rng))
        tie_seed: Optional[int] = None
        if rng.random() < self.jitter_probability:
            tie_seed = rng.randrange(2 ** 32)
        return ExplorationPlan(directives=tuple(directives),
                               tie_seed=tie_seed)

    def sample_wave(self, rng: random.Random) -> Tuple[FaultDirective, ...]:
        """One sampled directive, expanded into a crash/restore wave when
        the dice say the crashed node comes back.

        Extra stream draws happen only on the crash branch, so plans from
        delay-only vocabularies (``DEFAULT_KINDS``) are bit-identical with
        the pre-wave generator — the ``explore_100`` conformance digests
        are unchanged.
        """
        directive = self._sample_directive(rng)
        if directive.kind != "crash" or \
                rng.random() >= self.restore_probability:
            return (directive,)
        outage = round(rng.uniform(*self.delay_range), 3)
        restore_at = round((directive.at_time or 0.0) + outage, 3)
        return (directive, FaultDirective("restore", node=directive.node,
                                          at_time=restore_at))

    def _rng(self, index: int) -> random.Random:
        # Named sub-streams give the same PYTHONHASHSEED-independent
        # derivation the rest of the repository uses — but a *fresh* stream
        # object per call, so sampling order cannot leak between indices.
        return SeededStreams(self.seed).stream(f"plan-{index}")

    def _sample_directive(self, rng: random.Random) -> FaultDirective:
        kind = self.kinds[rng.randrange(len(self.kinds))]
        if kind == "crash":
            node = self.threads[rng.randrange(len(self.threads))]
            at_time: Optional[float] = None
            if rng.random() < 0.5:
                at_time = round(rng.uniform(*self.crash_window), 3)
            return FaultDirective("crash", node=node, at_time=at_time)
        source, destination = self._links[rng.randrange(len(self._links))]
        if kind == "drop_nth":
            return FaultDirective("drop_nth", source=source,
                                  destination=destination,
                                  n=rng.randint(1, self.max_nth))
        if kind == "corrupt_nth":
            return FaultDirective("corrupt_nth", source=source,
                                  destination=destination,
                                  n=rng.randint(1, self.max_nth))
        extra = round(rng.uniform(*self.delay_range), 3)
        if kind == "delay_link":
            return FaultDirective("delay_link", source=source,
                                  destination=destination, extra=extra)
        if kind == "delay_nth":
            return FaultDirective("delay_nth", source=source,
                                  destination=destination,
                                  n=rng.randint(1, self.max_nth), extra=extra)
        type_name = self.message_types[rng.randrange(len(self.message_types))]
        return FaultDirective("delay_type", source=source,
                              destination=destination, type_name=type_name,
                              extra=extra)
