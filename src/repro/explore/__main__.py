"""Command-line fault-space exploration: ``python -m repro.explore``.

Three modes:

* ``enumerate`` — the budgeted independent-sample sweep
  (:class:`~repro.explore.explorer.Explorer`);
* ``corpus`` — coverage-guided corpus search
  (:class:`~repro.explore.corpus.CorpusSearch`): loads the persisted
  corpus when present, saves it back after the session, and writes every
  auto-shrunk reproducer as a ready-to-paste pytest module;
* ``compare`` — both modes at an equal budget, reporting the distinct
  trace-digest counts side by side (the coverage claim, measured).

Both search modes report executed runs, distinct digests and failures;
the exit status is 1 when any oracle violation was found, so the nightly
workflow fails loudly while still uploading the corpus and reproducers.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from ..cli import add_logging_arguments, configure_logging
from ..obs import write_flight_dump
from .corpus import Corpus, CorpusSearch, engine_chunk_runner
from .explorer import Explorer
from .generator import DEFAULT_KINDS, STORM_KINDS

#: ``--kinds`` vocabularies: delivery-preserving delays (full oracle
#: catalogue) or the widened failure storm (liveness correctly waived).
KINDS = {"delay": DEFAULT_KINDS, "storm": STORM_KINDS}


def _enumerate_distinct(target: str, seed: int, budget: int,
                        kinds: str) -> dict:
    explorer = Explorer(target=target, seed=seed, budget=budget,
                        kinds=KINDS[kinds])
    report = explorer.run()
    return {
        "mode": "enumerate",
        "target": report.target,
        "seed": seed,
        "executed": len(report.cases),
        "distinct_digests": len({case.digest for case in report.cases}),
        "failures": len(report.failures),
        "failing_plans": [case.plan.to_dict() for case in report.failures],
    }


def _write_reproducers(reproducers, directory: str) -> List[str]:
    os.makedirs(directory, exist_ok=True)
    paths = []
    for number, record in enumerate(reproducers):
        path = os.path.join(directory, f"test_reproducer_{number}.py")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(record["source"])
        paths.append(path)
        # The failing run's flight-recorder timeline rides next to the
        # ready-to-paste test (`python -m repro.obs summarize` reads it).
        if record.get("flight"):
            flight_path = os.path.join(
                directory, f"test_reproducer_{number}.flight.jsonl")
            write_flight_dump(record["flight"], flight_path)
            paths.append(flight_path)
    return paths


def cmd_enumerate(arguments) -> int:
    summary = _enumerate_distinct(arguments.target, arguments.seed,
                                  arguments.budget, arguments.kinds)
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 1 if summary["failures"] else 0


def cmd_corpus(arguments) -> int:
    corpus: Optional[Corpus] = None
    if arguments.corpus and os.path.exists(arguments.corpus):
        corpus = Corpus.load(arguments.corpus)
        if corpus.target != arguments.target:
            print(f"corpus file is for target {corpus.target!r}, "
                  f"not {arguments.target!r}", file=sys.stderr)
            return 2
    run_chunks = engine_chunk_runner() if arguments.parallel else None
    search = CorpusSearch(target=arguments.target, seed=arguments.seed,
                          corpus=corpus, kinds=KINDS[arguments.kinds],
                          chunk_size=arguments.chunk_size,
                          run_chunks=run_chunks)
    report = search.run(budget=arguments.budget)
    if arguments.corpus:
        search.corpus.save(arguments.corpus)
    summary = {"mode": "corpus", **report.summary()}
    if arguments.reproducers and report.reproducers:
        summary["reproducer_files"] = _write_reproducers(
            report.reproducers, arguments.reproducers)
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 1 if report.failures else 0


def cmd_compare(arguments) -> int:
    enumeration = _enumerate_distinct(arguments.target, arguments.seed,
                                      arguments.budget, arguments.kinds)
    search = CorpusSearch(target=arguments.target, seed=arguments.seed,
                          kinds=KINDS[arguments.kinds],
                          chunk_size=arguments.chunk_size, shrink=False)
    report = search.run(budget=arguments.budget)
    comparison = {
        "mode": "compare",
        "target": arguments.target,
        "seed": arguments.seed,
        "budget": arguments.budget,
        "kinds": arguments.kinds,
        "enumeration_distinct_digests": enumeration["distinct_digests"],
        "corpus_distinct_digests": report.distinct_digests,
        "advantage": (report.distinct_digests
                      - enumeration["distinct_digests"]),
    }
    print(json.dumps(comparison, indent=2, sort_keys=True))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="Fault-space exploration: enumeration sweeps and "
                    "coverage-guided corpus search.")
    add_logging_arguments(parser)
    commands = parser.add_subparsers(dest="command", required=True)

    def common(sub):
        sub.add_argument("--target", default="nested_abort",
                         help="exploration target (default: nested_abort)")
        sub.add_argument("--seed", type=int, default=2026,
                         help="search seed (default: 2026)")
        sub.add_argument("--budget", type=int, default=200,
                         help="executed runs (default: 200)")
        sub.add_argument("--kinds", choices=sorted(KINDS), default="storm",
                         help="fault vocabulary (default: storm)")
        sub.add_argument("--chunk-size", type=int, default=25,
                         help="plans per execution chunk (default: 25)")

    enumerate_cmd = commands.add_parser(
        "enumerate", help="independent-sample sweep")
    common(enumerate_cmd)
    enumerate_cmd.set_defaults(func=cmd_enumerate)

    corpus_cmd = commands.add_parser(
        "corpus", help="coverage-guided corpus search")
    common(corpus_cmd)
    corpus_cmd.add_argument("--corpus", default=None, metavar="FILE",
                            help="persisted corpus JSON (loaded when "
                                 "present, saved back after the session)")
    corpus_cmd.add_argument("--reproducers", default=None, metavar="DIR",
                            help="write auto-shrunk pytest reproducers here")
    corpus_cmd.add_argument("--parallel", action="store_true",
                            help="fan chunks over the scenario engine's "
                                 "process pool")
    corpus_cmd.set_defaults(func=cmd_corpus)

    compare_cmd = commands.add_parser(
        "compare", help="enumeration vs corpus search at an equal budget")
    common(compare_cmd)
    compare_cmd.set_defaults(func=cmd_compare)

    arguments = parser.parse_args(argv)
    configure_logging(arguments)
    return arguments.func(arguments)


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
