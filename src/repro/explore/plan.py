"""Exploration plans: one point of the fault space, serializable and replayable.

An :class:`ExplorationPlan` is everything that distinguishes one explored
run from another over the same target system:

* a sequence of :class:`~repro.net.faults.FaultDirective` — the message-
  and node-level faults to inject; and
* an optional ``tie_seed`` — the kernel's schedule-perturbation seed,
  which selects one deterministic interleaving of otherwise-concurrent
  events (see :class:`~repro.simkernel.kernel.Kernel`).

Plans are value objects: they serialize to plain JSON, rebuild exactly,
and running the same ``(target, plan)`` twice produces byte-identical
traces.  That is what makes a failing plan a *reproducer* rather than a
flaky observation, and what the shrinker relies on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from ..net.faults import FaultDirective, FaultPlan


@dataclass(frozen=True)
class ExplorationPlan:
    """A deterministic, serializable fault + schedule assignment."""

    directives: Tuple[FaultDirective, ...] = ()
    tie_seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "directives", tuple(self.directives))

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def preserves_delivery(self) -> bool:
        """True if every directive only delays messages.

        Schedule perturbation never violates the paper's assumptions (the
        kernel keeps FIFO links intact under it), so a delivery-preserving
        plan may be held to the full safety *and* liveness oracles.
        """
        return all(d.preserves_delivery for d in self.directives)

    def make_fault_plan(self) -> FaultPlan:
        """Instantiate a fresh :class:`FaultPlan` for one run of this plan."""
        return FaultPlan.from_directives(self.directives)

    # ------------------------------------------------------------------
    # Serialization and identity
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "directives": [d.to_dict() for d in self.directives],
        }
        if self.tie_seed is not None:
            data["tie_seed"] = self.tie_seed
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExplorationPlan":
        return cls(
            directives=tuple(FaultDirective.from_dict(d)
                             for d in data.get("directives", ())),
            tie_seed=data.get("tie_seed"),
        )

    def key(self) -> str:
        """A canonical string identity (stable across processes)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    def describe(self) -> str:
        """Human-readable multi-line rendering (shrink reports, logs)."""
        lines = [d.describe() for d in self.directives] or ["(no faults)"]
        if self.tie_seed is not None:
            lines.append(f"schedule perturbation seed {self.tie_seed}")
        return "; ".join(lines)

    # ------------------------------------------------------------------
    # Shrinking support
    # ------------------------------------------------------------------
    def without_directive(self, index: int) -> "ExplorationPlan":
        """A copy with the ``index``-th directive removed."""
        kept = self.directives[:index] + self.directives[index + 1:]
        return replace(self, directives=kept)

    def without_tie_seed(self) -> "ExplorationPlan":
        """A copy with the schedule perturbation removed."""
        return replace(self, tie_seed=None)

    def with_directive(self, index: int,
                       directive: FaultDirective) -> "ExplorationPlan":
        """A copy with the ``index``-th directive replaced."""
        updated = (self.directives[:index] + (directive,)
                   + self.directives[index + 1:])
        return replace(self, directives=updated)

    def __len__(self) -> int:
        return len(self.directives)
