"""Mutation operators over exploration plans.

Coverage-guided search (:mod:`repro.explore.corpus`) evolves plans
instead of resampling them from scratch: a mutation keeps most of the
structure that made the parent's behaviour novel and perturbs one
aspect — add a directive (or a crash/restore wave), drop one, retarget
one to a different link or node, re-time its delay or crash instant, or
perturb the schedule-perturbation seed.  The last operator is the
cheapest novelty generator of all: the same faults under a different
event interleaving routinely reach a new canonical trace.

Determinism contract: :meth:`PlanMutator.mutate` is a pure function of
``(seed, token, plan)``.  The token (e.g. ``"g3-c7"`` — generation 3,
candidate 7) names a fresh derived stream, so any process computes the
same child for the same inputs.  That is the property the corpus
search's byte-identical parallel/sequential novelty accounting rests on.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from ..net.faults import FaultDirective
from ..simkernel.rng import SeededStreams
from .generator import (
    DEFAULT_KINDS,
    DEFAULT_MESSAGE_TYPES,
    FaultPlanGenerator,
)
from .plan import ExplorationPlan


class PlanMutator:
    """Seeded, deterministic mutations of :class:`ExplorationPlan`.

    The mutator wraps a :class:`FaultPlanGenerator` for sampling fresh
    directives (the ``add`` operator draws from the same vocabulary the
    search was configured with, including crash/restore waves) and
    applies one randomly chosen operator per call.
    """

    OPERATORS: Tuple[str, ...] = ("add", "drop", "retarget", "retime",
                                  "reseed")

    def __init__(self, seed: int, threads: Sequence[str],
                 kinds: Sequence[str] = DEFAULT_KINDS,
                 message_types: Sequence[str] = DEFAULT_MESSAGE_TYPES,
                 max_directives: int = 6,
                 delay_range: Tuple[float, float] = (0.25, 5.0),
                 max_nth: int = 6,
                 crash_window: Tuple[float, float] = (0.0, 5.0),
                 restore_probability: float = 0.5) -> None:
        self.seed = int(seed)
        self.threads = tuple(threads)
        self.max_directives = max(1, max_directives)
        self.max_nth = max_nth
        self.crash_window = crash_window
        self.generator = FaultPlanGenerator(
            seed, threads, kinds=kinds, message_types=message_types,
            max_directives=self.max_directives, delay_range=delay_range,
            max_nth=max_nth, crash_window=crash_window,
            restore_probability=restore_probability)
        self._links = tuple((a, b) for a in self.threads
                            for b in self.threads if a != b)

    # ------------------------------------------------------------------
    def mutate(self, plan: ExplorationPlan, token: str,
               feedback: Optional[Dict[str, Any]] = None) -> ExplorationPlan:
        """One mutated child of ``plan`` — pure in ``(seed, token, plan,
        feedback)``.

        Applies a *stack* of one to three operators (the havoc stage of
        classic coverage-guided fuzzers).  Structural operators (add /
        drop / retarget) frequently produce behavioural no-ops — a delay
        moved to an ordinal past the link's traffic changes nothing — so
        a lone operator wastes much of the budget on digest collisions;
        stacking pairs most structural steps with a re-time or re-seed,
        whose behavioural yield is near-certain.

        ``feedback`` is the parent run's message-statistics snapshot
        (``by_link`` delivery counts); when present, directives landing
        on idle links are re-aimed at trafficked ones and nth-message
        ordinals are folded into the link's observed traffic — steering
        enumeration cannot do, since it knows nothing about its samples'
        behaviour.
        """
        rng = SeededStreams(self.seed).stream(f"mutate:{token}")
        child = plan
        for _ in range(1 + rng.randrange(3)):
            operator = self.OPERATORS[rng.randrange(len(self.OPERATORS))]
            if not child.directives and \
                    operator in ("drop", "retarget", "retime"):
                operator = "add"
            if operator == "add" and \
                    len(child.directives) >= self.max_directives:
                operator = "drop"
            child = getattr(self, f"_{operator}")(child, rng)
        if feedback:
            child = self._steer(child, rng, feedback)
        return child

    def _steer(self, plan: ExplorationPlan, rng: random.Random,
               feedback: Dict[str, Any]) -> ExplorationPlan:
        """Fold each directive into the parent run's observed traffic."""
        by_link = feedback.get("by_link", {})
        active = tuple(link for link in self._links
                       if by_link.get(f"{link[0]}->{link[1]}", 0) > 0)
        if not active:
            return plan
        for index, directive in enumerate(plan.directives):
            if directive.kind in ("crash", "restore"):
                continue
            traffic = by_link.get(
                f"{directive.source}->{directive.destination}", 0)
            if traffic == 0:
                source, destination = active[rng.randrange(len(active))]
                directive = replace(directive, source=source,
                                    destination=destination)
                traffic = by_link[f"{source}->{destination}"]
            if directive.n > traffic:
                directive = replace(directive,
                                    n=(directive.n - 1) % traffic + 1)
            if directive is not plan.directives[index]:
                plan = plan.with_directive(index, directive)
        return plan

    # ------------------------------------------------------------------
    def neighbors(self, plan: ExplorationPlan,
                  feedback: Optional[Dict[str, Any]] = None
                  ) -> Iterator[ExplorationPlan]:
        """Deterministic one-change neighbours of ``plan``, in fixed order.

        The corpus search runs this sweep once over every newly admitted
        plan before falling back to random mutation (the deterministic
        stage of classic coverage-guided fuzzers): retarget each
        directive to every other link or node, retype per-type delays to
        every other protocol message, double/halve magnitudes and crash
        instants, and drop the schedule perturbation.  Structural
        retargets come first — moving a working delay to a different
        link is the single most behaviour-changing small step.

        ``feedback`` (the witnessing run's message statistics) steers
        the sweep: a directive whose ordinal lies past its link's
        observed traffic never fired, so perturbing it in place cannot
        change behaviour — dead directives only get *revival* retargets
        onto links with enough traffic, and nth ordinals are folded into
        the destination link's traffic.
        """
        by_link = (feedback or {}).get("by_link", {})
        by_type = (feedback or {}).get("by_type", {})

        def traffic(source: str, destination: str) -> Optional[int]:
            if not by_link:
                return None          # no feedback: assume everything fires
            return by_link.get(f"{source}->{destination}", 0)

        for index, directive in enumerate(plan.directives):
            if directive.kind in ("crash", "restore"):
                for node in self.threads:
                    if node != directive.node:
                        yield plan.with_directive(index, replace(
                            directive, node=node))
                if directive.at_time is not None:
                    for factor in (2.0, 0.5):
                        yield plan.with_directive(index, replace(
                            directive,
                            at_time=round(directive.at_time * factor, 3)))
                continue
            here = traffic(directive.source, directive.destination)
            live = here is None or (here > 0 and directive.n <= here)
            link = (directive.source, directive.destination)
            for source, destination in self._links:
                if (source, destination) == link:
                    continue
                there = traffic(source, destination)
                moved = replace(directive, source=source,
                                destination=destination)
                if there is not None:
                    if there == 0 or (not live and there < directive.n):
                        continue     # still dead over there
                    if directive.n > there:
                        moved = replace(moved, n=(moved.n - 1) % there + 1)
                yield plan.with_directive(index, moved)
            if not live:
                continue             # in-place perturbations cannot fire
            if directive.kind == "delay_type":
                for type_name in self.generator.message_types:
                    if type_name == directive.type_name:
                        continue
                    if by_type and not by_type.get(type_name, 0):
                        continue     # that type never flowed at all
                    yield plan.with_directive(index, replace(
                        directive, type_name=type_name))
            if directive.extra > 0.0:
                for factor in (2.0, 0.5):
                    yield plan.with_directive(index, replace(
                        directive,
                        extra=round(max(0.05, directive.extra * factor), 3)))
        if plan.tie_seed is not None:
            yield plan.without_tie_seed()

    # ------------------------------------------------------------------
    # Operators (each pure in (plan, rng state))
    # ------------------------------------------------------------------
    def _add(self, plan: ExplorationPlan,
             rng: random.Random) -> ExplorationPlan:
        """Insert a freshly sampled directive (or crash/restore wave)."""
        wave = self.generator.sample_wave(rng)
        position = rng.randint(0, len(plan.directives))
        directives = (plan.directives[:position] + wave
                      + plan.directives[position:])
        return replace(plan, directives=directives)

    def _drop(self, plan: ExplorationPlan,
              rng: random.Random) -> ExplorationPlan:
        """Remove one directive."""
        return plan.without_directive(rng.randrange(len(plan.directives)))

    def _retarget(self, plan: ExplorationPlan,
                  rng: random.Random) -> ExplorationPlan:
        """Point one directive at a different link or node."""
        index = rng.randrange(len(plan.directives))
        directive = plan.directives[index]
        if directive.kind in ("crash", "restore"):
            node = self.threads[rng.randrange(len(self.threads))]
            return plan.with_directive(index, replace(directive, node=node))
        source, destination = self._links[rng.randrange(len(self._links))]
        return plan.with_directive(index, replace(
            directive, source=source, destination=destination))

    def _retime(self, plan: ExplorationPlan,
                rng: random.Random) -> ExplorationPlan:
        """Scale a delay, move a crash/restore instant, or shift an ordinal."""
        index = rng.randrange(len(plan.directives))
        directive = plan.directives[index]
        if directive.extra > 0.0:
            factor = rng.uniform(0.5, 2.0)
            extra = round(max(0.05, directive.extra * factor), 3)
            return plan.with_directive(index, replace(directive, extra=extra))
        if directive.kind in ("crash", "restore"):
            at_time = round(rng.uniform(*self.crash_window), 3)
            return plan.with_directive(index, replace(directive,
                                                      at_time=at_time))
        if directive.n > 0:
            return plan.with_directive(index, replace(
                directive, n=rng.randint(1, self.max_nth)))
        return self._reseed(plan, rng)

    def _reseed(self, plan: ExplorationPlan,
                rng: random.Random) -> ExplorationPlan:
        """Perturb (set, replace or drop) the schedule-perturbation seed."""
        if plan.tie_seed is not None and rng.random() < 0.25:
            return plan.without_tie_seed()
        return replace(plan, tie_seed=rng.randrange(2 ** 32))
