"""The action life-cycle run by a participating thread.

:class:`ActionLifecycle` drives one thread's participation in a CA action
from entry to exit: entry synchronisation, the primary attempt, waiting for
exception resolution, handler invocation, the signalling phase, transaction
commit/abort and the synchronous exit protocol.  It is purely the
*thread-side* of the runtime; message routing lives in
:mod:`~repro.runtime.dispatcher` and effect execution in
:mod:`~repro.runtime.effects`.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, TYPE_CHECKING

from ..analysis.metrics import ActionOutcome
from ..core.action import CAActionDefinition
from ..core.exceptions import (
    ExceptionDescriptor,
    FAILURE,
    NO_EXCEPTION,
    RaisedException,
    UNDO,
)
from ..core.handlers import HandlerResult, HandlerStatus, is_generator_handler
from ..core.handlers import normalise_result
from ..core.messages import EnterActionMessage, ExitReadyMessage
from ..core.signalling import SignalCoordinator
from ..core.state import ActionContext, min_thread
from ..objects.transaction import TransactionStatus
from ..simkernel.events import Interrupt
from .context import RoleContext
from .frames import AbortedByEnclosing, ActionFrame
from .report import ActionReport, ActionStatus

if TYPE_CHECKING:  # pragma: no cover
    from .partition import Partition


def call_user(function, context):
    """Run a user callable that may or may not be a generator function."""
    if function is None:
        return None
    if is_generator_handler(function):
        result = yield from function(context)
        return result
    return function(context)


class ActionLifecycle:
    """Executes action instances on behalf of one partition's thread."""

    def __init__(self, partition: "Partition") -> None:
        self.partition = partition

    # ------------------------------------------------------------------
    # Entry points (called from the contexts via the partition)
    # ------------------------------------------------------------------
    def execute_action(self, action: str, role: str,
                       instance: Optional[str] = None):
        """Perform a top-level action (returns the life-cycle generator).

        Returned (not delegated with ``yield from``) so the caller drives
        :meth:`_run_action` directly — one less generator frame on every
        resumption of the executing thread.
        """
        return self._run_action(action, role, parent_frame=None,
                                instance=instance)

    def execute_nested(self, parent_frame: ActionFrame, action: str, role: str):
        """Perform a nested action from within ``parent_frame``."""
        report = yield from self._run_action(action, role,
                                             parent_frame=parent_frame)
        if report.status is ActionStatus.ABORTED_BY_ENCLOSING:
            raise AbortedByEnclosing(report)
        if report.signalled != NO_EXCEPTION:
            # Signalled exceptions become internal exceptions of the
            # enclosing action, "as if concurrently raised" there.
            raise RaisedException(report.signalled,
                                  {"from_nested": report.action})
        return report

    # ------------------------------------------------------------------
    # The life-cycle proper
    # ------------------------------------------------------------------
    def _run_action(self, action: str, role: str,
                    parent_frame: Optional[ActionFrame],
                    instance: Optional[str] = None):
        partition = self.partition
        system = partition.system
        definition = system.registry.get(action)
        if instance:
            # An externally allocated instance key (the workload driver's
            # dispatch): every participant receives the same key with its
            # job, so no local occurrence counting is needed — or possible,
            # since different pool members serve different subsets of the
            # action's instances.
            occurrence, instance_key = 0, instance
        else:
            occurrence, instance_key = partition.frames.next_instance_key(
                action, parent_frame)
        binding, participants = system.resolved_binding(action, instance_key)
        if role not in binding:
            raise ValueError(f"role {role!r} of {action!r} is not bound")
        if binding[role] != partition.name:
            raise ValueError(
                f"role {role!r} of {action!r} is bound to {binding[role]!r}, "
                f"not to {partition.name!r}")

        # --- entry synchronisation -----------------------------------
        yield from self._entry_barrier(action, instance_key, role, participants)

        context = ActionContext(
            action, participants, definition.graph,
            parent=parent_frame.action if parent_frame else None,
            instance=instance_key)
        transaction = system.transaction_for(instance_key, definition)
        frame = ActionFrame(
            action=action, role=role, occurrence=occurrence,
            instance_key=instance_key, definition=definition, context=context,
            transaction=transaction, parent=parent_frame,
            started_at=partition.kernel.now,
            resolution_event=partition.kernel.event(),
        )
        partition.frames.push(frame)
        if system.probes:
            system.probe("entered", thread=partition.name, action=action,
                         instance=instance_key)
        try:
            effects = partition.coordinator.enter_action(context)
            if effects:
                yield from partition.execute_effects(effects)

            # --- the action body, inlined ------------------------------
            # (formerly a separate _run_action_body generator; inlining
            # removes one delegation frame from every resumption of the
            # executing thread — barriers, resolution waits, handlers and
            # service delays all resume through here).  Early "return
            # report" exits became assignments guarded by ``report is
            # None`` so the try/finally around the whole body is kept.
            role_definition = definition.role(frame.role)
            role_context = RoleContext(partition, frame)
            result: Any = None
            report: Optional[ActionReport] = None

            # --- primary attempt --------------------------------------
            if not frame.exception_mode:
                partition.status = "primary"
                try:
                    body = role_definition.body
                    if body is not None:
                        # call_user, inlined: skip the wrapper generator
                        # on the per-instance hot path.
                        if is_generator_handler(body):
                            result = yield from body(role_context)
                        else:
                            result = body(role_context)
                except RaisedException as raised:
                    yield from self._local_raise(frame, raised.descriptor)
                except AbortedByEnclosing:
                    frame.exception_mode = True
                except Interrupt:
                    partition.interrupt_requested = False
                    frame.exception_mode = True
                finally:
                    if partition.status == "primary":
                        partition.status = "idle"

            # --- abortion demanded by the enclosing action ------------
            if partition.pending_abort is not None and \
                    partition.pending_abort.covers(frame.action):
                report = yield from self._run_abortion(frame, role_definition,
                                                       role_context)

            # --- no exception anywhere: synchronous exit --------------
            elif not frame.exception_mode:
                exited = yield from self._exit_barrier(frame)
                if exited and not frame.exception_mode:
                    self._commit_if_designated(frame)
                    partition.coordinator.leave_action(frame.action,
                                                       success=True)
                    report = ActionReport(frame.action, frame.role,
                                          partition.name,
                                          ActionStatus.SUCCESS, result=result,
                                          started_at=frame.started_at)

            # --- exception path: resolution, handler, signalling ------
            if report is None:
                resolved = yield from self._await_resolution(frame)
                if partition.pending_abort is not None and \
                        partition.pending_abort.covers(frame.action):
                    report = yield from self._run_abortion(
                        frame, role_definition, role_context)
                else:
                    handler_result = yield from self._run_handler(
                        frame, role_definition, role_context, resolved)
                    if partition.pending_abort is not None and \
                            partition.pending_abort.covers(frame.action):
                        # An enclosing exception interrupted the handler
                        # ("handling" is abort-interruptible): the nested
                        # action must abort instead of entering the
                        # signalling phase, where the abort could no longer
                        # reach it and peers would wait on its proposal
                        # forever.
                        report = yield from self._run_abortion(
                            frame, role_definition, role_context)
                    else:
                        decided = yield from self._run_signalling(
                            frame, handler_result)
                        report = self._conclude(frame, resolved, decided,
                                                result)
        finally:
            partition.frames.remove(frame)
        report.finished_at = partition.kernel.now
        system.metrics.record_outcome(self._to_outcome(report))
        if system.probes:
            system.probe("concluded", thread=partition.name, action=action,
                         instance=instance_key, status=report.status,
                         resolved=report.resolved, signalled=report.signalled)
        return report

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def _entry_barrier(self, action: str, instance_key: str, role: str,
                       participants: Tuple[str, ...]):
        partition = self.partition
        dispatcher = partition.dispatcher
        others = tuple(p for p in participants if p != partition.name)
        message = EnterActionMessage(action, partition.name, role, instance_key)
        for other in others:
            partition.system.network.send(partition.name, other, message)
        if not others:
            return
        key = instance_key
        needed = set(others)
        if dispatcher.entry_complete(key, needed):
            return
        event = dispatcher.register_entry_wait(key, needed)
        partition.status = "waiting_entry"
        try:
            yield event
        except Interrupt:
            partition.interrupt_requested = False
            # An exception in the enclosing action reached us before the
            # nested action assembled; unwind to the enclosing frame.  The
            # allocated instance will never be entered here — retire it so
            # peer messages stamped for it are not retained forever.
            partition.coordinator.abandon_instance(instance_key)
            raise AbortedByEnclosing(ActionReport(
                action, role, partition.name,
                ActionStatus.ABORTED_BY_ENCLOSING))
        finally:
            dispatcher.clear_entry_wait(key)
            if partition.status == "waiting_entry":
                partition.status = "idle"

    def _exit_barrier(self, frame: ActionFrame):
        """Synchronous exit protocol; returns True if the barrier completed."""
        partition = self.partition
        dispatcher = partition.dispatcher
        others = frame.context.others(partition.name)
        message = ExitReadyMessage(frame.action, partition.name, "success",
                                   frame.instance_key)
        for other in others:
            partition.system.network.send(partition.name, other, message)
        if not others:
            return True
        key = frame.instance_key
        needed = set(others)
        if dispatcher.exit_complete(key, needed):
            return True
        event = dispatcher.register_exit_wait(key, needed)
        partition.status = "waiting_exit"
        try:
            yield event
            return True
        except Interrupt:
            partition.interrupt_requested = False
            frame.exception_mode = True
            return False
        finally:
            dispatcher.clear_exit_wait(key)
            if partition.status == "waiting_exit":
                partition.status = "idle"

    def _local_raise(self, frame: ActionFrame,
                     exception: ExceptionDescriptor):
        partition = self.partition
        frame.exception_mode = True
        partition.system.metrics.record_raise(partition.name, frame.action,
                                              exception.name,
                                              partition.kernel.now)
        if partition.system.probes:
            partition.system.probe("raised", thread=partition.name,
                                   action=frame.action,
                                   instance=frame.instance_key,
                                   exception=exception)
        effects = partition.coordinator.raise_exception(exception)
        if effects:
            yield from partition.execute_effects(effects)

    def _await_resolution(self, frame: ActionFrame) -> Any:
        partition = self.partition
        partition.status = "awaiting_resolution"
        try:
            while frame.resolved is None:
                if frame.resolution_event is None or \
                        frame.resolution_event.triggered:
                    frame.resolution_event = partition.kernel.event()
                    if frame.resolved is not None:
                        break
                try:
                    yield frame.resolution_event
                except Interrupt:
                    partition.interrupt_requested = False
                    if partition.pending_abort is not None and \
                            partition.pending_abort.covers(frame.action):
                        return frame.resolved
                    # Stale interrupt: keep waiting for the resolution.
                    frame.resolution_event = partition.kernel.event()
        finally:
            if partition.status == "awaiting_resolution":
                partition.status = "idle"
        return frame.resolved

    def _run_handler(self, frame: ActionFrame, role_definition,
                     role_context, resolved: ExceptionDescriptor):
        partition = self.partition
        partition.status = "handling"
        partition.system.metrics.record_handler(partition.name, frame.action,
                                                resolved.name,
                                                partition.kernel.now)
        handler = role_definition.handlers.lookup(resolved)
        try:
            if handler is None:
                value = None
            elif is_generator_handler(handler):
                value = yield from handler(role_context)
            else:
                value = handler(role_context)
            handler_result = normalise_result(value)
        except RaisedException as raised:
            # A handler raising a declared interface exception means SIGNAL;
            # anything else is a handler failure (ƒ).
            descriptor = raised.descriptor
            if frame.definition.declares_interface(descriptor):
                handler_result = HandlerResult.signal(descriptor)
            else:
                handler_result = HandlerResult.failed(
                    f"handler raised undeclared {descriptor.name}")
        except Interrupt:
            partition.interrupt_requested = False
            handler_result = HandlerResult.failed("handler interrupted")
        finally:
            if partition.status == "handling":
                partition.status = "idle"
        return handler_result

    def _run_abortion(self, frame: ActionFrame, role_definition, role_context):
        """Abort this frame because an enclosing action raised an exception."""
        partition = self.partition
        assert partition.pending_abort is not None
        partition.status = "aborting"
        partition.system.metrics.record_abortion(partition.name, frame.action,
                                                 partition.kernel.now)
        if partition.system.probes:
            partition.system.probe("aborting", thread=partition.name,
                                   action=frame.action,
                                   instance=frame.instance_key)
        if partition.config.abort_time > 0:
            yield partition.kernel.timeout(partition.config.abort_time)

        abortion_handler = role_definition.handlers.abortion_handler
        signalled: Optional[ExceptionDescriptor] = None
        if abortion_handler is not None:
            try:
                value = yield from call_user(abortion_handler, role_context)
                outcome = normalise_result(value)
                if outcome.status in (HandlerStatus.SIGNAL, HandlerStatus.FAILED):
                    signalled = outcome.exception
            except RaisedException as raised:
                signalled = raised.descriptor
            except Interrupt:
                partition.interrupt_requested = False

        # Roll back the aborted action's effects on external objects.
        if frame.transaction.status is TransactionStatus.ACTIVE:
            frame.transaction.abort()

        is_outermost = frame.action == partition.pending_abort.outermost
        if is_outermost:
            resume = partition.pending_abort.resume_action
            partition.pending_abort = None
            if partition.system.probes:
                partition.system.probe(
                    "abortion_completed",
                    thread=partition.name, action=frame.action,
                    instance=frame.instance_key,
                    resume_action=resume, signalled=signalled)
            # Only the exception of the outermost aborted action's handler is
            # allowed to be raised in the containing action.
            effects = partition.coordinator.abortion_completed(resume, signalled)
            yield from partition.execute_effects(effects)
        partition.status = "idle"
        return ActionReport(frame.action, frame.role, partition.name,
                            ActionStatus.ABORTED_BY_ENCLOSING,
                            started_at=frame.started_at)

    def _run_signalling(self, frame: ActionFrame,
                        handler_result: HandlerResult) -> Any:
        partition = self.partition
        partition.status = "signalling"
        proposal = self._proposal_from(handler_result)
        frame.signal_event = partition.kernel.event()
        frame.signal_coordinator = SignalCoordinator(partition.name,
                                                     frame.context)
        # Replay signalling messages that arrived before this phase started
        # (instance-stamped ones park under the instance key, legacy ones
        # under the action name).
        pending = partition.dispatcher.take_pending_signals(
            frame.instance_key, frame.action)
        try:
            effects = frame.signal_coordinator.propose(proposal)
            yield from partition.execute_effects(effects)
            for message in pending:
                effects = frame.signal_coordinator.receive(message)
                yield from partition.execute_effects(effects)
            if frame.signal_coordinator.decided is None:
                decided = yield frame.signal_event
            else:
                decided = frame.signal_coordinator.decided
        finally:
            partition.status = "idle"
        return decided

    @staticmethod
    def _proposal_from(handler_result: HandlerResult) -> ExceptionDescriptor:
        if handler_result.status is HandlerStatus.SUCCESS:
            return NO_EXCEPTION
        if handler_result.status is HandlerStatus.SIGNAL:
            return handler_result.exception or FAILURE
        if handler_result.status is HandlerStatus.ABORT:
            return UNDO
        return FAILURE

    def _conclude(self, frame: ActionFrame, resolved: ExceptionDescriptor,
                  decided: ExceptionDescriptor, result: Any) -> ActionReport:
        partition = self.partition
        if decided == NO_EXCEPTION:
            self._commit_if_designated(frame)
            status = ActionStatus.RECOVERED
        elif decided == UNDO:
            self._ensure_rolled_back(frame)
            status = ActionStatus.UNDONE
        elif decided == FAILURE:
            self._ensure_rolled_back(frame)
            status = ActionStatus.FAILED
        else:
            # A "plain" interface exception: the handlers repaired what they
            # could; deliver the (possibly partial) results.
            self._commit_if_designated(frame)
            status = ActionStatus.SIGNALLED
        if decided != NO_EXCEPTION:
            partition.system.metrics.record_signal(partition.name, frame.action,
                                                   decided.name,
                                                   partition.kernel.now)
            if partition.system.probes:
                partition.system.probe("signalled", thread=partition.name,
                                       action=frame.action,
                                       instance=frame.instance_key,
                                       exception=decided)
        partition.coordinator.leave_action(frame.action,
                                           success=(decided == NO_EXCEPTION))
        return ActionReport(frame.action, frame.role, partition.name, status,
                            signalled=decided, resolved=resolved,
                            result=result, started_at=frame.started_at)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _commit_if_designated(self, frame: ActionFrame) -> None:
        if frame.transaction.status is not TransactionStatus.ACTIVE:
            return
        designated = min_thread(frame.context.participants)
        if self.partition.name == designated:
            frame.transaction.commit()

    def _ensure_rolled_back(self, frame: ActionFrame) -> None:
        if frame.transaction.status is TransactionStatus.ACTIVE:
            frame.transaction.abort()

    def _to_outcome(self, report: ActionReport):
        return ActionOutcome(
            action=report.action,
            outcome=report.status.value,
            signalled=(report.signalled.name
                       if report.signalled != NO_EXCEPTION else None),
            started_at=report.started_at,
            finished_at=report.finished_at,
        )
