"""The partition executive: per-thread runtime for distributed CA actions.

Each participating thread runs on its own node (its own Ada 95 *partition*
in the paper's prototype, Figure 8).  The partition executive implemented
here provides, per node:

* a dispatcher process draining the node's cyclic receive buffer and feeding
  protocol messages to the resolution and signalling coordinators;
* execution of the effects those coordinators emit (sending messages,
  informing external objects, charging resolution time, interrupting the
  role's normal computation — the ATC analogue — and aborting nested
  actions);
* the action life-cycle run by the thread itself: entry synchronisation,
  the primary attempt, waiting for resolution, handler invocation, the
  signalling phase, transaction commit/abort and the synchronous exit
  protocol.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from ..core.action import CAActionDefinition
from ..core.effects import (
    AbortNested,
    ChargeTime,
    Effect,
    HandleResolved,
    InformObjects,
    InterruptRole,
    LogEvent,
    SendTo,
)
from ..core.exceptions import (
    ActionAborted,
    ExceptionDescriptor,
    FAILURE,
    NO_EXCEPTION,
    RaisedException,
    UNDO,
)
from ..core.handlers import HandlerResult, HandlerStatus, is_generator_handler, \
    normalise_result
from ..core.messages import (
    ApplicationMessage,
    CommitMessage,
    EnterActionMessage,
    ExceptionMessage,
    ExitReadyMessage,
    ProtocolMessage,
    SuspendedMessage,
    ToBeSignalledMessage,
)
from ..core.resolution import CoordinatorBase
from ..core.signalling import PerformUndo, SignalCoordinator, SignalOutcome
from ..core.state import ActionContext
from ..objects.transaction import Transaction, TransactionStatus
from ..simkernel.channels import Mailbox
from ..simkernel.events import Event, Interrupt
from ..simkernel.process import Process
from .context import ProgramContext, RoleContext
from .report import ActionReport, ActionStatus

if TYPE_CHECKING:  # pragma: no cover
    from .system import DistributedCASystem


class _AbortedByEnclosing(Exception):
    """Internal unwinding signal: a nested action was aborted from above."""

    def __init__(self, report: ActionReport) -> None:
        super().__init__(report.action)
        self.report = report


@dataclass
class PendingAbort:
    """Recorded abort request: which nested actions, down to which action."""

    actions: Tuple[str, ...]
    resume_action: str
    cause: Optional[ExceptionDescriptor] = None

    def covers(self, action: str) -> bool:
        return action in self.actions

    @property
    def outermost(self) -> str:
        return self.actions[-1] if self.actions else self.resume_action


@dataclass
class ActionFrame:
    """Per-thread runtime state of one action instance being executed."""

    action: str
    role: str
    occurrence: int
    instance_key: str
    definition: CAActionDefinition
    context: ActionContext
    transaction: Transaction
    parent: Optional["ActionFrame"] = None
    started_at: float = 0.0
    #: Becomes True as soon as any exception activity touches this action.
    exception_mode: bool = False
    #: The resolving exception, once known.
    resolved: Optional[ExceptionDescriptor] = None
    resolution_event: Optional[Event] = None
    #: Signalling phase state.
    signal_coordinator: Optional[SignalCoordinator] = None
    signal_event: Optional[Event] = None
    #: External-object exceptions already notified (deduplication).
    informed: Set[str] = field(default_factory=set)

    @property
    def parent_action(self) -> Optional[str]:
        return self.parent.action if self.parent is not None else None


class Partition:
    """The per-thread (per-node) runtime executive."""

    #: Thread statuses during which an exception notification may interrupt
    #: the thread's current activity (the ATC analogue).
    _INTERRUPTIBLE = ("primary", "waiting_entry", "waiting_exit")
    #: Statuses additionally interruptible when a nested-action abort is
    #: required (an enclosing exception stops resolution and handlers too).
    _ABORT_INTERRUPTIBLE = _INTERRUPTIBLE + ("awaiting_resolution", "handling")

    def __init__(self, system: "DistributedCASystem", name: str) -> None:
        self.system = system
        self.name = name
        self.kernel = system.kernel
        self.config = system.config
        self.node = system.network.add_node(
            name, buffer_capacity=system.config.buffer_capacity)
        self.node.services["partition"] = self
        self.coordinator: CoordinatorBase = system.config.make_coordinator(name)

        self.status = "idle"
        self.thread_process: Optional[Process] = None
        self.pending_abort: Optional[PendingAbort] = None
        self._interrupt_requested = False

        self.frames: List[ActionFrame] = []
        self.occurrences: Dict[str, int] = defaultdict(int)
        self.log: List[str] = []

        #: Barrier bookkeeping: action instance key -> set of announced threads.
        self._entry_seen: Dict[str, Set[str]] = defaultdict(set)
        self._entry_events: Dict[str, Tuple[Set[str], Event]] = {}
        self._exit_seen: Dict[str, Set[str]] = defaultdict(set)
        self._exit_events: Dict[str, Tuple[Set[str], Event]] = {}

        #: Application cooperation mailboxes: (instance_key, tag) -> Mailbox.
        self._app_mailboxes: Dict[Tuple[str, str], Mailbox] = {}
        #: Signalling messages that arrived before the local phase started.
        self._pending_signals: Dict[str, List[ToBeSignalledMessage]] = \
            defaultdict(list)

        self._dispatcher = self.kernel.process(
            self._dispatch_loop(), name=f"dispatch:{name}")

    # ------------------------------------------------------------------
    # Program execution entry point
    # ------------------------------------------------------------------
    def run_program(self, program) -> Process:
        """Start ``program`` (a generator function taking a ProgramContext)."""
        if self.thread_process is not None:
            raise RuntimeError(f"{self.name} already runs a program")
        self.thread_process = self.kernel.process(
            self._program_wrapper(program), name=f"thread:{self.name}")
        return self.thread_process

    def _program_wrapper(self, program):
        context = ProgramContext(self)
        result = yield from self._call_user(program, context)
        self.status = "idle"
        return result

    # ------------------------------------------------------------------
    # Dispatcher: inbox draining and protocol handling
    # ------------------------------------------------------------------
    def _dispatch_loop(self):
        while True:
            envelope = yield self.node.inbox.get()
            yield from self._dispatch(envelope.payload)

    def _dispatch(self, payload):
        if isinstance(payload, EnterActionMessage):
            self._note_entry(payload)
        elif isinstance(payload, ExitReadyMessage):
            self._note_exit(payload)
        elif isinstance(payload, ApplicationMessage):
            self._route_application(payload)
        elif isinstance(payload, ToBeSignalledMessage):
            yield from self._route_signalling(payload)
        elif isinstance(payload, ProtocolMessage):
            effects = self.coordinator.receive(payload)
            yield from self._execute_effects(effects)
        else:
            self.log.append(f"unhandled payload {payload!r}")

    # ------------------------------------------------------------------
    # Effect execution (shared by dispatcher and thread contexts)
    # ------------------------------------------------------------------
    def _execute_effects(self, effects: List[Effect]):
        interrupts: List[Tuple[str, ExceptionDescriptor, bool]] = []
        for effect in effects:
            if isinstance(effect, SendTo):
                for recipient in effect.recipients:
                    self.system.network.send(self.name, recipient, effect.message)
            elif isinstance(effect, ChargeTime):
                duration = self.config.charge_duration(effect.kind, effect.count)
                if duration > 0:
                    yield self.kernel.timeout(duration)
            elif isinstance(effect, InformObjects):
                self._inform_objects(effect)
            elif isinstance(effect, InterruptRole):
                interrupts.append((effect.action, effect.reason, False))
            elif isinstance(effect, AbortNested):
                self.pending_abort = PendingAbort(effect.actions,
                                                  effect.resume_action,
                                                  effect.cause)
                interrupts.append((effect.resume_action, effect.cause, True))
            elif isinstance(effect, HandleResolved):
                self._deliver_resolution(effect)
            elif isinstance(effect, SignalOutcome):
                self._deliver_signal_outcome(effect)
            elif isinstance(effect, PerformUndo):
                yield from self._perform_undo(effect.action)
            elif isinstance(effect, LogEvent):
                self.log.append(effect.text)
            else:  # pragma: no cover - future-proofing
                self.log.append(f"unknown effect {effect!r}")
        for action, reason, for_abort in interrupts:
            self._request_interrupt(action, reason, for_abort)

    def _inform_objects(self, effect: InformObjects) -> None:
        frame = self._find_frame(effect.action)
        if frame is None:
            return
        key = effect.exception.name
        if key in frame.informed:
            return
        frame.informed.add(key)
        frame.transaction.notify_exception(key)
        if not frame.exception_mode:
            frame.exception_mode = True

    def _deliver_resolution(self, effect: HandleResolved) -> None:
        frame = self._find_frame(effect.action)
        if frame is None:
            self.log.append(f"resolution for unknown frame {effect.action}")
            return
        frame.exception_mode = True
        frame.resolved = effect.exception
        if effect.resolver == self.name:
            self.system.metrics.record_resolution(self.name, effect.action,
                                                  effect.exception.name,
                                                  self.kernel.now)
        if frame.resolution_event is not None and \
                not frame.resolution_event.triggered:
            frame.resolution_event.succeed(effect.exception)

    def _deliver_signal_outcome(self, effect: SignalOutcome) -> None:
        frame = self._find_frame(effect.action)
        if frame is None:
            return
        if frame.signal_event is not None and not frame.signal_event.triggered:
            frame.signal_event.succeed(effect.exception)
        else:
            frame.signal_event = None

    def _perform_undo(self, action: str):
        frame = self._find_frame(action)
        if frame is None:
            return
        status = frame.transaction.abort()
        successful = status is TransactionStatus.ABORTED
        if frame.signal_coordinator is not None:
            effects = frame.signal_coordinator.undo_completed(successful)
            yield from self._execute_effects(effects)

    def _request_interrupt(self, action: str,
                           reason: Optional[ExceptionDescriptor],
                           for_abort: bool) -> None:
        frame = self._find_frame(action)
        if frame is not None:
            frame.exception_mode = True
        self.system.metrics.record_suspension(self.name, action, self.kernel.now)
        process = self.thread_process
        if process is None or not process.is_alive:
            return
        if self.kernel.active_process is process:
            # The thread itself is executing these effects; it will notice
            # exception_mode / pending_abort without needing an interrupt.
            return
        allowed = (self._ABORT_INTERRUPTIBLE if for_abort or
                   self.pending_abort is not None else self._INTERRUPTIBLE)
        if self.status not in allowed:
            return
        if self._interrupt_requested:
            return
        self._interrupt_requested = True
        process.interrupt(ActionAborted(action, reason) if for_abort
                          else reason)

    # ------------------------------------------------------------------
    # Barrier and routing bookkeeping
    # ------------------------------------------------------------------
    def _note_entry(self, message: EnterActionMessage) -> None:
        key = message.instance
        self._entry_seen[key].add(message.thread)
        waiting = self._entry_events.get(key)
        if waiting is not None:
            needed, event = waiting
            if needed <= self._entry_seen[key] and not event.triggered:
                event.succeed()

    def _note_exit(self, message: ExitReadyMessage) -> None:
        key = message.instance
        self._exit_seen[key].add(message.thread)
        waiting = self._exit_events.get(key)
        if waiting is not None:
            needed, event = waiting
            if needed <= self._exit_seen[key] and not event.triggered:
                event.succeed()

    def _route_application(self, message: ApplicationMessage) -> None:
        mailbox = self._app_mailbox(message.action, message.tag)
        mailbox.deliver(message.body)

    def _route_signalling(self, message: ToBeSignalledMessage):
        frame = self._find_frame(message.action)
        if frame is None or frame.signal_coordinator is None:
            self._pending_signals[message.action].append(message)
            return
        effects = frame.signal_coordinator.receive(message)
        yield from self._execute_effects(effects)

    def _app_mailbox(self, instance_key: str, tag: str) -> Mailbox:
        key = (instance_key, tag)
        if key not in self._app_mailboxes:
            self._app_mailboxes[key] = Mailbox(self.kernel)
        return self._app_mailboxes[key]

    def _find_frame(self, action: str) -> Optional[ActionFrame]:
        for frame in reversed(self.frames):
            if frame.action == action or frame.instance_key == action:
                return frame
        return None

    # ------------------------------------------------------------------
    # Application messaging used by RoleContext
    # ------------------------------------------------------------------
    def send_application_message(self, frame: ActionFrame, role: str,
                                 tag: str, body: Any) -> None:
        binding = self.system.binding(frame.action)
        if role not in binding:
            raise ValueError(f"action {frame.action} has no role {role!r}")
        destination = binding[role]
        self.system.network.send(self.name, destination, ApplicationMessage(
            action=frame.instance_key, sender=self.name, recipient=destination,
            tag=tag, body=body))

    def receive_application_message(self, frame: ActionFrame, tag: str):
        return self._app_mailbox(frame.instance_key, tag).get()

    # ------------------------------------------------------------------
    # Action execution (runs inside the thread process)
    # ------------------------------------------------------------------
    def execute_action(self, action: str, role: str):
        """Perform a top-level action (generator, used via ``yield from``)."""
        report = yield from self._run_action(action, role, parent_frame=None)
        return report

    def execute_nested(self, parent_frame: ActionFrame, action: str, role: str):
        """Perform a nested action from within ``parent_frame``."""
        report = yield from self._run_action(action, role,
                                             parent_frame=parent_frame)
        if report.status is ActionStatus.ABORTED_BY_ENCLOSING:
            raise _AbortedByEnclosing(report)
        if report.signalled != NO_EXCEPTION:
            # Signalled exceptions become internal exceptions of the
            # enclosing action, "as if concurrently raised" there.
            raise RaisedException(report.signalled,
                                  {"from_nested": report.action})
        return report

    def _run_action(self, action: str, role: str,
                    parent_frame: Optional[ActionFrame]):
        definition = self.system.registry.get(action)
        binding = self.system.binding(action)
        if role not in binding:
            raise ValueError(f"role {role!r} of {action!r} is not bound")
        if binding[role] != self.name:
            raise ValueError(
                f"role {role!r} of {action!r} is bound to {binding[role]!r}, "
                f"not to {self.name!r}")
        participants = tuple(sorted(set(binding.values())))

        # Instance keys are derived from the enclosing instance chain plus a
        # per-parent occurrence counter, so that every cooperating thread
        # computes the same key for the same joint attempt even if some
        # earlier nested attempt was abandoned during recovery.
        parent_key = parent_frame.instance_key if parent_frame else ""
        counter_key = f"{parent_key}|{action}"
        self.occurrences[counter_key] += 1
        occurrence = self.occurrences[counter_key]
        instance_key = (f"{parent_key}/{action}#{occurrence}" if parent_key
                        else f"{action}#{occurrence}")

        # --- entry synchronisation -----------------------------------
        yield from self._entry_barrier(action, instance_key, role, participants)

        context = ActionContext(action, participants, definition.graph,
                                parent=parent_frame.action if parent_frame else None)
        transaction = self.system.transaction_for(instance_key, definition)
        frame = ActionFrame(
            action=action, role=role, occurrence=occurrence,
            instance_key=instance_key, definition=definition, context=context,
            transaction=transaction, parent=parent_frame,
            started_at=self.kernel.now,
            resolution_event=self.kernel.event(),
        )
        self.frames.append(frame)
        try:
            effects = self.coordinator.enter_action(context)
            yield from self._execute_effects(effects)
            report = yield from self._run_action_body(frame, definition)
        finally:
            self.frames.remove(frame)
        report.finished_at = self.kernel.now
        self.system.metrics.record_outcome(self._to_outcome(report))
        return report

    def _run_action_body(self, frame: ActionFrame,
                         definition: CAActionDefinition) -> Any:
        role_definition = definition.role(frame.role)
        role_context = RoleContext(self, frame)
        result: Any = None

        # --- primary attempt ------------------------------------------
        if not frame.exception_mode:
            self.status = "primary"
            try:
                if role_definition.body is not None:
                    result = yield from self._call_user(role_definition.body,
                                                        role_context)
            except RaisedException as raised:
                yield from self._local_raise(frame, raised.descriptor)
            except _AbortedByEnclosing:
                frame.exception_mode = True
            except Interrupt:
                self._interrupt_requested = False
                frame.exception_mode = True
            finally:
                if self.status == "primary":
                    self.status = "idle"

        # --- abortion demanded by the enclosing action ----------------
        if self.pending_abort is not None and self.pending_abort.covers(frame.action):
            report = yield from self._run_abortion(frame, role_definition,
                                                   role_context)
            return report

        # --- no exception anywhere: synchronous exit ------------------
        if not frame.exception_mode:
            exited = yield from self._exit_barrier(frame)
            if exited and not frame.exception_mode:
                self._commit_if_designated(frame)
                self.coordinator.leave_action(frame.action, success=True)
                return ActionReport(frame.action, frame.role, self.name,
                                    ActionStatus.SUCCESS, result=result,
                                    started_at=frame.started_at)

        # --- exception path: resolution, handler, signalling ----------
        resolved = yield from self._await_resolution(frame)
        if self.pending_abort is not None and self.pending_abort.covers(frame.action):
            report = yield from self._run_abortion(frame, role_definition,
                                                   role_context)
            return report

        handler_result = yield from self._run_handler(frame, role_definition,
                                                      role_context, resolved)
        decided = yield from self._run_signalling(frame, handler_result)
        return self._conclude(frame, resolved, decided, result)

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def _entry_barrier(self, action: str, instance_key: str, role: str,
                       participants: Tuple[str, ...]):
        others = tuple(p for p in participants if p != self.name)
        message = EnterActionMessage(action, self.name, role, instance_key)
        for other in others:
            self.system.network.send(self.name, other, message)
        if not others:
            return
        key = instance_key
        needed = set(others)
        if needed <= self._entry_seen[key]:
            return
        event = self.kernel.event()
        self._entry_events[key] = (needed, event)
        self.status = "waiting_entry"
        try:
            yield event
        except Interrupt:
            self._interrupt_requested = False
            # An exception in the enclosing action reached us before the
            # nested action assembled; unwind to the enclosing frame.
            raise _AbortedByEnclosing(ActionReport(
                action, role, self.name, ActionStatus.ABORTED_BY_ENCLOSING))
        finally:
            self._entry_events.pop(key, None)
            if self.status == "waiting_entry":
                self.status = "idle"

    def _exit_barrier(self, frame: ActionFrame):
        """Synchronous exit protocol; returns True if the barrier completed."""
        others = frame.context.others(self.name)
        message = ExitReadyMessage(frame.action, self.name, "success",
                                   frame.instance_key)
        for other in others:
            self.system.network.send(self.name, other, message)
        if not others:
            return True
        key = frame.instance_key
        needed = set(others)
        if needed <= self._exit_seen[key]:
            return True
        event = self.kernel.event()
        self._exit_events[key] = (needed, event)
        self.status = "waiting_exit"
        try:
            yield event
            return True
        except Interrupt:
            self._interrupt_requested = False
            frame.exception_mode = True
            return False
        finally:
            self._exit_events.pop(key, None)
            if self.status == "waiting_exit":
                self.status = "idle"

    def _local_raise(self, frame: ActionFrame,
                     exception: ExceptionDescriptor):
        frame.exception_mode = True
        self.system.metrics.record_raise(self.name, frame.action,
                                         exception.name, self.kernel.now)
        effects = self.coordinator.raise_exception(exception)
        yield from self._execute_effects(effects)

    def _await_resolution(self, frame: ActionFrame) -> Any:
        self.status = "awaiting_resolution"
        try:
            while frame.resolved is None:
                if frame.resolution_event is None or \
                        frame.resolution_event.triggered:
                    frame.resolution_event = self.kernel.event()
                    if frame.resolved is not None:
                        break
                try:
                    yield frame.resolution_event
                except Interrupt:
                    self._interrupt_requested = False
                    if self.pending_abort is not None and \
                            self.pending_abort.covers(frame.action):
                        return frame.resolved
                    # Stale interrupt: keep waiting for the resolution.
                    frame.resolution_event = self.kernel.event()
        finally:
            if self.status == "awaiting_resolution":
                self.status = "idle"
        return frame.resolved

    def _run_handler(self, frame: ActionFrame, role_definition,
                     role_context, resolved: ExceptionDescriptor):
        self.status = "handling"
        self.system.metrics.record_handler(self.name, frame.action,
                                           resolved.name, self.kernel.now)
        handler = role_definition.handlers.lookup(resolved)
        try:
            value = yield from self._call_user(handler, role_context)
            handler_result = normalise_result(value)
        except RaisedException as raised:
            # A handler raising a declared interface exception means SIGNAL;
            # anything else is a handler failure (ƒ).
            descriptor = raised.descriptor
            if frame.definition.declares_interface(descriptor):
                handler_result = HandlerResult.signal(descriptor)
            else:
                handler_result = HandlerResult.failed(
                    f"handler raised undeclared {descriptor.name}")
        except Interrupt:
            self._interrupt_requested = False
            handler_result = HandlerResult.failed("handler interrupted")
        finally:
            if self.status == "handling":
                self.status = "idle"
        return handler_result

    def _run_abortion(self, frame: ActionFrame, role_definition, role_context):
        """Abort this frame because an enclosing action raised an exception."""
        assert self.pending_abort is not None
        self.status = "aborting"
        self.system.metrics.record_abortion(self.name, frame.action,
                                            self.kernel.now)
        if self.config.abort_time > 0:
            yield self.kernel.timeout(self.config.abort_time)

        abortion_handler = role_definition.handlers.abortion_handler
        signalled: Optional[ExceptionDescriptor] = None
        if abortion_handler is not None:
            try:
                value = yield from self._call_user(abortion_handler, role_context)
                outcome = normalise_result(value)
                if outcome.status in (HandlerStatus.SIGNAL, HandlerStatus.FAILED):
                    signalled = outcome.exception
            except RaisedException as raised:
                signalled = raised.descriptor
            except Interrupt:
                self._interrupt_requested = False

        # Roll back the aborted action's effects on external objects.
        if frame.transaction.status is TransactionStatus.ACTIVE:
            frame.transaction.abort()

        is_outermost = frame.action == self.pending_abort.outermost
        if is_outermost:
            resume = self.pending_abort.resume_action
            self.pending_abort = None
            # Only the exception of the outermost aborted action's handler is
            # allowed to be raised in the containing action.
            effects = self.coordinator.abortion_completed(resume, signalled)
            yield from self._execute_effects(effects)
        self.status = "idle"
        return ActionReport(frame.action, frame.role, self.name,
                            ActionStatus.ABORTED_BY_ENCLOSING,
                            started_at=frame.started_at)

    def _run_signalling(self, frame: ActionFrame,
                        handler_result: HandlerResult) -> Any:
        self.status = "signalling"
        proposal = self._proposal_from(handler_result)
        frame.signal_event = self.kernel.event()
        frame.signal_coordinator = SignalCoordinator(self.name, frame.context)
        # Replay signalling messages that arrived before this phase started.
        pending = self._pending_signals.pop(frame.action, [])
        try:
            effects = frame.signal_coordinator.propose(proposal)
            yield from self._execute_effects(effects)
            for message in pending:
                effects = frame.signal_coordinator.receive(message)
                yield from self._execute_effects(effects)
            if frame.signal_coordinator.decided is None:
                decided = yield frame.signal_event
            else:
                decided = frame.signal_coordinator.decided
        finally:
            self.status = "idle"
        return decided

    def _proposal_from(self, handler_result: HandlerResult) -> ExceptionDescriptor:
        if handler_result.status is HandlerStatus.SUCCESS:
            return NO_EXCEPTION
        if handler_result.status is HandlerStatus.SIGNAL:
            return handler_result.exception or FAILURE
        if handler_result.status is HandlerStatus.ABORT:
            return UNDO
        return FAILURE

    def _conclude(self, frame: ActionFrame, resolved: ExceptionDescriptor,
                  decided: ExceptionDescriptor, result: Any) -> ActionReport:
        if decided == NO_EXCEPTION:
            self._commit_if_designated(frame)
            status = ActionStatus.RECOVERED
        elif decided == UNDO:
            self._ensure_rolled_back(frame)
            status = ActionStatus.UNDONE
        elif decided == FAILURE:
            self._ensure_rolled_back(frame)
            status = ActionStatus.FAILED
        else:
            # A "plain" interface exception: the handlers repaired what they
            # could; deliver the (possibly partial) results.
            self._commit_if_designated(frame)
            status = ActionStatus.SIGNALLED
        if decided != NO_EXCEPTION:
            self.system.metrics.record_signal(self.name, frame.action,
                                              decided.name, self.kernel.now)
        self.coordinator.leave_action(frame.action,
                                      success=(decided == NO_EXCEPTION))
        return ActionReport(frame.action, frame.role, self.name, status,
                            signalled=decided, resolved=resolved,
                            result=result, started_at=frame.started_at)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _commit_if_designated(self, frame: ActionFrame) -> None:
        if frame.transaction.status is not TransactionStatus.ACTIVE:
            return
        designated = min(frame.context.participants)
        if self.name == designated:
            frame.transaction.commit()

    def _ensure_rolled_back(self, frame: ActionFrame) -> None:
        if frame.transaction.status is TransactionStatus.ACTIVE:
            frame.transaction.abort()

    def _to_outcome(self, report: ActionReport):
        from ..analysis.metrics import ActionOutcome
        return ActionOutcome(
            action=report.action,
            outcome=report.status.value,
            signalled=(report.signalled.name
                       if report.signalled != NO_EXCEPTION else None),
            started_at=report.started_at,
            finished_at=report.finished_at,
        )

    @staticmethod
    def _call_user(function, context):
        """Run a user callable that may or may not be a generator function."""
        if function is None:
            return None
        if is_generator_handler(function):
            result = yield from function(context)
            return result
        return function(context)

    def __repr__(self) -> str:
        return f"<Partition {self.name} status={self.status}>"
