"""The partition executive: per-thread runtime for distributed CA actions.

Each participating thread runs on its own node (its own Ada 95 *partition*
in the paper's prototype, Figure 8).  :class:`Partition` is the composition
root of the per-node runtime; the actual behaviour lives in three layered
subsystems:

* :class:`~repro.runtime.dispatcher.Dispatcher` — drains the node's cyclic
  receive buffer and routes protocol messages to the resolution and
  signalling coordinators;
* :class:`~repro.runtime.effects.PartitionEffectInterpreter` — executes the
  effects those coordinators emit (sending messages, informing external
  objects, charging resolution time, interrupting the role's normal
  computation — the ATC analogue — and aborting nested actions);
* :class:`~repro.runtime.lifecycle.ActionLifecycle` — the action life-cycle
  run by the thread itself: entry synchronisation, the primary attempt,
  waiting for resolution, handler invocation, the signalling phase,
  transaction commit/abort and the synchronous exit protocol.

The partition itself only owns the shared per-thread state (status, frame
stack, pending abort) and wires the subsystems together.
"""

from __future__ import annotations

from typing import Any, List, Optional, TYPE_CHECKING

from ..core.messages import ApplicationMessage
from ..core.resolution import CoordinatorBase
from ..simkernel.process import Process
from .context import ProgramContext
from .dispatcher import Dispatcher
from .effects import PartitionEffectInterpreter
from .frames import ActionFrame, FrameStack, PendingAbort
from .lifecycle import ActionLifecycle, call_user

if TYPE_CHECKING:  # pragma: no cover
    from .system import DistributedCASystem

__all__ = ["ActionFrame", "Partition", "PendingAbort"]


class Partition:
    """The per-thread (per-node) runtime executive."""

    #: Thread statuses during which an exception notification may interrupt
    #: the thread's current activity (the ATC analogue).
    INTERRUPTIBLE = ("primary", "waiting_entry", "waiting_exit")
    #: Statuses additionally interruptible when a nested-action abort is
    #: required (an enclosing exception stops resolution and handlers too).
    ABORT_INTERRUPTIBLE = INTERRUPTIBLE + ("awaiting_resolution", "handling")

    def __init__(self, system: "DistributedCASystem", name: str) -> None:
        self.system = system
        self.name = name
        self.kernel = system.kernel
        self.config = system.config
        self.node = system.network.add_node(
            name, buffer_capacity=system.config.buffer_capacity)
        self.node.services["partition"] = self
        self.coordinator: CoordinatorBase = system.config.make_coordinator(name)

        #: Shared per-thread state, mutated by all three subsystems.
        self.status = "idle"
        self.thread_process: Optional[Process] = None
        self.pending_abort: Optional[PendingAbort] = None
        self.interrupt_requested = False
        self.frames = FrameStack()
        self.log: List[str] = []

        #: The layered subsystems (see the module docstring).
        self.interpreter = PartitionEffectInterpreter(self)
        self.dispatcher = Dispatcher(self)
        self.lifecycle = ActionLifecycle(self)

        self._dispatcher_process = self.kernel.process(
            self.dispatcher.loop(), name=f"dispatch:{name}")

    # ------------------------------------------------------------------
    # Program execution entry point
    # ------------------------------------------------------------------
    def run_program(self, program) -> Process:
        """Start ``program`` (a generator function taking a ProgramContext)."""
        if self.thread_process is not None:
            raise RuntimeError(f"{self.name} already runs a program")
        self.thread_process = self.kernel.process(
            self._program_wrapper(program), name=f"thread:{self.name}")
        return self.thread_process

    def _program_wrapper(self, program):
        context = ProgramContext(self)
        result = yield from call_user(program, context)
        self.status = "idle"
        return result

    # ------------------------------------------------------------------
    # Delegation to the subsystems
    # ------------------------------------------------------------------
    def execute_effects(self, effects):
        """Interpret coordinator effects (generator, used via ``yield from``)."""
        return self.interpreter.execute(effects)

    def execute_action(self, action: str, role: str,
                       instance: Optional[str] = None):
        """Perform a top-level action (generator, used via ``yield from``).

        ``instance`` optionally names the action instance explicitly (the
        workload driver allocates one key per dispatched job so that every
        participant of the instance — wherever it runs in the pool — agrees
        on the same key without counting local occurrences).
        """
        return self.lifecycle.execute_action(action, role, instance=instance)

    def execute_nested(self, parent_frame: ActionFrame, action: str, role: str):
        """Perform a nested action from within ``parent_frame``."""
        return self.lifecycle.execute_nested(parent_frame, action, role)

    def find_frame(self, action: str) -> Optional[ActionFrame]:
        """The innermost frame executing ``action`` (by name or instance key)."""
        return self.frames.find(action)

    # ------------------------------------------------------------------
    # Application messaging used by RoleContext
    # ------------------------------------------------------------------
    def send_application_message(self, frame: ActionFrame, role: str,
                                 tag: str, body: Any) -> None:
        binding = self.system.binding(frame.action, frame.instance_key)
        if role not in binding:
            raise ValueError(f"action {frame.action} has no role {role!r}")
        destination = binding[role]
        self.system.network.send(self.name, destination, ApplicationMessage(
            action=frame.instance_key, sender=self.name, recipient=destination,
            tag=tag, body=body))

    def receive_application_message(self, frame: ActionFrame, tag: str):
        return self.dispatcher.mailbox(frame.instance_key, tag).get()

    def __repr__(self) -> str:
        return f"<Partition {self.name} status={self.status}>"
