"""Outcome reports returned by action execution."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..core.exceptions import ExceptionDescriptor, NO_EXCEPTION


class ActionStatus(Enum):
    """How one thread's participation in an action instance ended."""

    SUCCESS = "success"                # normal exit, no exception handled
    RECOVERED = "recovered"            # exception handled, exited normally
    SIGNALLED = "signalled"            # an interface exception ε was signalled
    UNDONE = "undone"                  # the action aborted and signalled µ
    FAILED = "failed"                  # the action aborted and signalled ƒ
    ABORTED_BY_ENCLOSING = "aborted"   # aborted because of the enclosing action


@dataclass(slots=True)
class ActionReport:
    """Per-thread summary of one executed action instance.

    ``signalled`` is the interface exception this thread signalled to the
    enclosing context (φ when nothing was signalled).
    """

    action: str
    role: str
    thread: str
    status: ActionStatus
    signalled: ExceptionDescriptor = NO_EXCEPTION
    resolved: Optional[ExceptionDescriptor] = None
    started_at: float = 0.0
    finished_at: float = 0.0
    result: object = None

    @property
    def ok(self) -> bool:
        """True if the action completed without signalling anything."""
        return self.status in (ActionStatus.SUCCESS, ActionStatus.RECOVERED)

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    def __repr__(self) -> str:
        extra = f" signalled={self.signalled.name}" \
            if self.signalled != NO_EXCEPTION else ""
        return (f"<ActionReport {self.action}/{self.role}@{self.thread} "
                f"{self.status.value}{extra}>")
