"""Distributed CA-action runtime (the paper's prototype architecture, Figure 8).

Each participating thread runs on its own node with a copy of the run-time
system; the runtime provides nested action entry/exit, raising and
signalling of exceptions, abortion of nested actions, handler dispatch, and
the coordination protocols of :mod:`repro.core` executed over the simulated
network of :mod:`repro.net`.
"""

from .config import ALGORITHMS, RuntimeConfig
from .context import ProgramContext, RoleContext
from .dispatcher import Dispatcher
from .effects import PartitionEffectInterpreter
from .frames import ActionFrame, FrameStack, PendingAbort
from .lifecycle import ActionLifecycle
from .partition import Partition
from .report import ActionReport, ActionStatus
from .system import DistributedCASystem, SystemConfigurationError

__all__ = [
    "ActionFrame",
    "ActionLifecycle",
    "ActionReport",
    "ActionStatus",
    "ALGORITHMS",
    "Dispatcher",
    "DistributedCASystem",
    "FrameStack",
    "Partition",
    "PartitionEffectInterpreter",
    "PendingAbort",
    "ProgramContext",
    "RoleContext",
    "RuntimeConfig",
    "SystemConfigurationError",
]
