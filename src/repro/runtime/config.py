"""Configuration of the distributed CA-action runtime.

The experiments of Section 5 are parameterised by three durations: the
message-passing time ``Tmmax`` (a property of the network's latency model),
the abortion time ``Tabo`` charged when a nested action is aborted, and the
resolution time ``Treso`` charged by the thread(s) running the resolution
procedure.  Handler durations (``Δ``) are expressed by the handler bodies
themselves via ``ctx.delay``.

The configuration also selects the resolution algorithm, so the comparison
experiment (Figures 12/13) swaps only this one knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

from ..core.baselines import CampbellRandellCoordinator, Romanovsky96Coordinator
from ..core.resolution import CoordinatorBase, ResolutionCoordinator

#: Registry of resolution algorithms selectable by name.
ALGORITHMS: Dict[str, Callable[[str], CoordinatorBase]] = {
    "ours": ResolutionCoordinator,
    "campbell-randell": CampbellRandellCoordinator,
    "romanovsky96": Romanovsky96Coordinator,
}


@dataclass
class RuntimeConfig:
    """Tunable parameters of the CA-action runtime.

    Attributes
    ----------
    algorithm:
        Name of the resolution algorithm: ``"ours"`` (the paper's new
        algorithm), ``"campbell-randell"`` or ``"romanovsky96"``.
    resolution_time:
        ``Treso`` — virtual time charged per invocation of the resolution
        procedure.
    abort_time:
        ``Tabo`` — virtual time charged per aborted nested action
        (in addition to whatever the abortion handler itself does).
    entry_timeout:
        Safety bound on waiting for the other participants at an action's
        entry point; ``0`` disables the timeout.  Exceeding it raises a
        ``RuntimeError`` — it indicates a mis-structured program, not a
        protocol failure.
    buffer_capacity:
        Capacity of each partition's cyclic receive buffer.
    deliver_self_messages:
        If True, protocol messages a thread would send to itself are
        delivered locally (the algorithms never need this; kept for
        experimentation).
    """

    algorithm: str = "ours"
    resolution_time: float = 0.0
    abort_time: float = 0.0
    entry_timeout: float = 0.0
    buffer_capacity: int = 4096
    deliver_self_messages: bool = False

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; "
                f"choose from {sorted(ALGORITHMS)}")
        if self.resolution_time < 0 or self.abort_time < 0:
            raise ValueError("times must be non-negative")
        if self.buffer_capacity < 1:
            raise ValueError("buffer_capacity must be at least 1")

    def make_coordinator(self, thread_id: str) -> CoordinatorBase:
        """Instantiate the configured resolution algorithm for one thread."""
        return ALGORITHMS[self.algorithm](thread_id)

    def charge_duration(self, kind: str, count: int = 1) -> float:
        """Map a :class:`~repro.core.effects.ChargeTime` effect to a duration."""
        if kind == "resolution":
            return self.resolution_time * count
        if kind == "abort":
            return self.abort_time * count
        raise ValueError(f"unknown charge kind {kind!r}")
