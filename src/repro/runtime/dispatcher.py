"""Message dispatch for the partition executive.

The dispatcher is the per-node process that drains the node's cyclic
receive buffer and routes each payload to the right consumer:

* entry/exit announcements update the barrier bookkeeping that the
  life-cycle waits on;
* application messages go to per-``(instance, tag)`` cooperation mailboxes;
* signalling messages go to the frame's signal coordinator (or are parked
  until the local signalling phase starts);
* every other protocol message feeds the resolution coordinator, whose
  resulting effects are executed in-line.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple, TYPE_CHECKING

from ..core.exceptions import FAILURE
from ..core.messages import (
    ApplicationMessage,
    EnterActionMessage,
    ExitReadyMessage,
    ProtocolMessage,
    ToBeSignalledMessage,
)
from ..simkernel.channels import Mailbox
from ..simkernel.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .partition import Partition


class Dispatcher:
    """Drains one node's inbox and routes payloads to their consumers."""

    def __init__(self, partition: "Partition") -> None:
        self.partition = partition
        #: Barrier bookkeeping: action instance key -> set of announced threads.
        self._entry_seen: Dict[str, Set[str]] = defaultdict(set)
        self._entry_events: Dict[str, Tuple[Set[str], Event]] = {}
        self._exit_seen: Dict[str, Set[str]] = defaultdict(set)
        self._exit_events: Dict[str, Tuple[Set[str], Event]] = {}
        #: Application cooperation mailboxes: (instance_key, tag) -> Mailbox.
        self._app_mailboxes: Dict[Tuple[str, str], Mailbox] = {}
        #: Signalling messages that arrived before the local phase started.
        self._pending_signals: Dict[str, List[ToBeSignalledMessage]] = \
            defaultdict(list)
        #: The instance-keyed registries swept by :meth:`release_instance`
        #: (bound once; the sweep runs per concluded instance).
        self._instance_registries = (
            self._entry_seen, self._entry_events,
            self._exit_seen, self._exit_events, self._pending_signals)
        #: Top-level scopes this dispatcher holds *any* state for.  Lets
        #: :meth:`release_instance` — called on every dispatcher of the
        #: system for every concluded instance — return after one set
        #: lookup on the (pool_size - width) dispatchers that never saw
        #: the instance, instead of scanning six registries each.
        self._active_scopes: Set[str] = set()

    # ------------------------------------------------------------------
    # The dispatch process
    # ------------------------------------------------------------------
    def loop(self):
        """The dispatcher process body: drain the inbox forever."""
        inbox = self.partition.node.inbox
        dispatch_sync = self.dispatch_sync
        while True:
            envelope = yield inbox.get()
            pending = dispatch_sync(envelope.payload, envelope.corrupted)
            if pending is not None:
                yield from pending

    def dispatch(self, payload, corrupted: bool = False):
        """Route one received payload (generator, used via ``yield from``).

        Compatibility wrapper over :meth:`dispatch_sync` for callers that
        drive dispatching as a generator.
        """
        pending = self.dispatch_sync(payload, corrupted)
        if pending is not None:
            yield from pending

    def dispatch_sync(self, payload, corrupted: bool = False):
        """Route one received payload without generator overhead.

        Barrier announcements and application messages — the bulk of all
        traffic — are handled synchronously and return ``None``; the
        protocol paths return a generator the caller must drive (their
        effects can consume virtual time).  Splitting the two spares the
        dispatcher a generator allocation per routed message.

        A corrupted signalling message is not trusted: per Section 3.4 "the
        corrupted message … can be simply treated as a failure exception",
        so the sender is recorded as proposing ƒ, which forces the whole
        group to signal ƒ.  (The resolution algorithm itself assumes
        dependable communication — Assumption 1 — so corruption of its
        messages is outside the protocol's fault model and they are
        delivered as-is.)
        """
        partition = self.partition
        if isinstance(payload, EnterActionMessage):
            self._note_entry(payload)
            return None
        if isinstance(payload, ExitReadyMessage):
            self._note_exit(payload)
            return None
        if isinstance(payload, ApplicationMessage):
            self.mailbox(payload.action, payload.tag).deliver(payload.body)
            return None
        if isinstance(payload, ToBeSignalledMessage):
            if corrupted:
                partition.log.append(
                    f"corrupted toBeSignalled from {payload.thread} "
                    f"for {payload.action}: treated as ƒ")
                payload = ToBeSignalledMessage(payload.action, payload.thread,
                                               FAILURE, payload.round_number,
                                               instance=payload.instance)
            return self._route_signalling(payload)
        if isinstance(payload, ProtocolMessage):
            effects = partition.coordinator.receive(payload)
            if not effects:
                return None
            return partition.execute_effects(effects)
        # RPC traffic for an endpoint co-located on this node (external
        # atomic objects, transport-backend services).  The endpoint is
        # constructed with ``drain=False`` so it does not compete with
        # this dispatcher for the inbox.
        rpc = partition.node.services.get("rpc")
        if rpc is not None and rpc.handle_payload(payload):
            return None
        partition.log.append(f"unhandled payload {payload!r}")
        return None

    # ------------------------------------------------------------------
    # Barrier bookkeeping (consumed by the life-cycle's entry/exit waits)
    # ------------------------------------------------------------------
    def entry_complete(self, key: str, needed: Set[str]) -> bool:
        """True if every thread in ``needed`` announced entry of ``key``."""
        seen = self._entry_seen.get(key)
        return seen is not None and needed <= seen

    def exit_complete(self, key: str, needed: Set[str]) -> bool:
        """True if every thread in ``needed`` announced exit of ``key``."""
        seen = self._exit_seen.get(key)
        return seen is not None and needed <= seen

    def _touch_scope(self, key: str) -> None:
        """Record that instance-keyed state exists for ``key``'s scope.

        The first touch of a scope also registers this dispatcher in the
        system-wide scope index, so releasing an instance visits exactly
        the dispatchers that hold state for it (not the whole pool).
        """
        # find() instead of split(): almost every key is a bare top-level
        # scope, and this runs once per routed announcement.
        cut = key.find("/")
        scope = key if cut < 0 else key[:cut]
        if scope not in self._active_scopes:
            self._active_scopes.add(scope)
            self.partition.system.note_scope_dispatcher(scope, self)

    def register_entry_wait(self, key: str, needed: Set[str]) -> Event:
        """Create the event triggered when the entry barrier completes."""
        event = self.partition.kernel.event()
        self._entry_events[key] = (needed, event)
        self._touch_scope(key)
        return event

    def register_exit_wait(self, key: str, needed: Set[str]) -> Event:
        """Create the event triggered when the exit barrier completes."""
        event = self.partition.kernel.event()
        self._exit_events[key] = (needed, event)
        self._touch_scope(key)
        return event

    def clear_entry_wait(self, key: str) -> None:
        self._entry_events.pop(key, None)

    def clear_exit_wait(self, key: str) -> None:
        self._exit_events.pop(key, None)

    def _note_entry(self, message: EnterActionMessage) -> None:
        key = message.instance
        self._touch_scope(key)
        self._entry_seen[key].add(message.thread)
        waiting = self._entry_events.get(key)
        if waiting is not None:
            needed, event = waiting
            if needed <= self._entry_seen[key] and not event.triggered:
                event.succeed()

    def _note_exit(self, message: ExitReadyMessage) -> None:
        key = message.instance
        self._touch_scope(key)
        self._exit_seen[key].add(message.thread)
        waiting = self._exit_events.get(key)
        if waiting is not None:
            needed, event = waiting
            if needed <= self._exit_seen[key] and not event.triggered:
                event.succeed()

    # ------------------------------------------------------------------
    # Application cooperation mailboxes
    # ------------------------------------------------------------------
    def mailbox(self, instance_key: str, tag: str) -> Mailbox:
        """The cooperation mailbox for ``(instance_key, tag)`` (create lazily)."""
        key = (instance_key, tag)
        box = self._app_mailboxes.get(key)
        if box is None:
            box = self._app_mailboxes[key] = Mailbox(self.partition.kernel)
            self._touch_scope(instance_key)
        return box

    # ------------------------------------------------------------------
    # Per-instance bookkeeping release
    # ------------------------------------------------------------------
    def release_instance(self, instance: str) -> None:
        """Drop barrier/mailbox/parked-signal state of a concluded instance.

        Called (via :meth:`DistributedCASystem.release_instance`) when the
        workload driver retires an instance scope: a long-lived run would
        otherwise accumulate one entry/exit set, cooperation mailbox and
        pending-signal slot per instance ever served.  Keys are the
        instance key itself and any nested ``instance/...`` keys.
        """
        cut = instance.find("/")
        scope = instance if cut < 0 else instance[:cut]
        if scope not in self._active_scopes:
            # This dispatcher never saw the instance (the usual case on a
            # wide pool): nothing to sweep.
            return
        if instance == scope:
            self._active_scopes.discard(scope)
        prefix = instance + "/"
        for registry in self._instance_registries:
            if not registry:
                continue
            stale = [k for k in registry
                     if k == instance or k.startswith(prefix)]
            for key in stale:
                del registry[key]
        mailboxes = self._app_mailboxes
        if mailboxes:
            stale = [k for k in mailboxes
                     if k[0] == instance or k[0].startswith(prefix)]
            for key in stale:
                del mailboxes[key]

    # ------------------------------------------------------------------
    # Signalling messages
    # ------------------------------------------------------------------
    def take_pending_signals(self, *keys: str) -> List[ToBeSignalledMessage]:
        """Remove and return signalling messages parked under any of ``keys``.

        The life-cycle passes both the frame's instance key and its action
        name: instance-stamped proposals park under the instance key while
        unstamped (legacy) ones park under the name.
        """
        pending: List[ToBeSignalledMessage] = []
        for key in keys:
            pending.extend(self._pending_signals.pop(key, []))
        return pending

    def _route_signalling(self, message: ToBeSignalledMessage):
        partition = self.partition
        key = message.instance or message.action
        frame = partition.find_frame(key)
        if frame is None or frame.signal_coordinator is None:
            if message.instance and \
                    message.instance in partition.coordinator.finished_instances:
                # The instance already ended here; parking the proposal
                # would keep it (and its key) forever.
                partition.log.append(
                    f"dropped stale toBeSignalled for {message.instance}")
                if partition.system.probes:
                    partition.system.probe(
                        "signal_stale_dropped", thread=partition.name,
                        action=message.action, instance=message.instance)
                return
            self._touch_scope(key)
            self._pending_signals[key].append(message)
            if partition.system.probes:
                partition.system.probe(
                    "signal_parked", thread=partition.name,
                    action=message.action, instance=message.instance)
            return
        effects = frame.signal_coordinator.receive(message)
        yield from partition.execute_effects(effects)
